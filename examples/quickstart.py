#!/usr/bin/env python3
"""Quickstart: build a stack, run a tiny workload, read the counters.

This is the five-minute tour of the public API:

* ``make_stack(kind)`` wires a complete simulated testbed — client and
  server hosts, a Gigabit link, a RAID-5 array, and the chosen protocol
  stack ("nfsv2" | "nfsv3" | "nfsv4" | "iscsi" | "nfs-enhanced");
* ``stack.client`` exposes POSIX-style syscalls as coroutines — the same
  surface on every stack, so a workload is written once;
* ``stack.run(coro)`` drives the simulation; ``stack.snapshot()`` /
  ``stack.delta(snap)`` bracket an experiment the way the paper's authors
  bracketed theirs with a packet capture.

Run:  python examples/quickstart.py
"""

from repro import STACK_KINDS, make_stack


def workload(client):
    """A little filesystem session: build a tree, write, read it back."""
    yield from client.mkdir("/projects")
    yield from client.mkdir("/projects/repro")
    fd = yield from client.creat("/projects/repro/notes.txt")
    yield from client.write(fd, 24_000)
    yield from client.close(fd)

    fd = yield from client.open("/projects/repro/notes.txt")
    got = yield from client.read(fd, 64_000)
    yield from client.close(fd)

    names = yield from client.readdir("/projects/repro")
    st = yield from client.stat("/projects/repro/notes.txt")
    return got, names, st.size


def main():
    print("%-14s %10s %10s %12s %10s" % (
        "stack", "messages", "bytes", "sim time", "read back"))
    print("-" * 62)
    for kind in STACK_KINDS:
        stack = make_stack(kind)
        snap = stack.snapshot()
        start = stack.now
        got, names, size = stack.run(workload(stack.client))
        stack.quiesce()            # let async write-back/journal settle
        delta = stack.delta(snap)
        assert names == ["notes.txt"] and size == 24_000
        print("%-14s %10d %10d %10.2fms %9dB" % (
            kind, delta.messages, delta.total_bytes,
            (stack.now - start) * 1000, got))

    print()
    print("Things to notice (the paper's Section 4 in miniature):")
    print(" * iSCSI moves more bytes (whole 4 KB blocks) but needs far")
    print("   fewer messages once its cache is warm;")
    print(" * NFS v4 sends more messages than v2/v3 (per-directory ACCESS")
    print("   checks and the OPEN/CLOSE ceremony);")
    print(" * nfs-enhanced (Section 7) batches its meta-data updates the")
    print("   way ext3's journal does.")


if __name__ == "__main__":
    main()
