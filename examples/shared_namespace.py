#!/usr/bin/env python3
"""Scenario: two workstations sharing one NFS export.

The paper studies the *unshared* case and observes that NFS's overheads —
consistency checks, synchronous meta-data updates — are the price of its
sharing semantics.  This example shows that machinery doing its job: two
live clients on one export, with plain NFS v3 (weak, timeout-based
consistency) and with the Section-7 enhanced NFS (strong, callback-based
consistency).

Run:  python examples/shared_namespace.py
"""

from repro.core.multiclient import SharedNfsTestbed


def collaborate(bed):
    """Client A edits; client B watches.  Returns what B observed."""
    a, b = bed.clients

    def work():
        observations = []
        fd = yield from a.creat("/paper.tex")
        yield from a.write(fd, 10_000)
        yield from a.close(fd)
        yield from a.quiesce()

        st = yield from b.stat("/paper.tex")
        observations.append(("B first stat", st.size))

        # A keeps appending; B polls every few seconds.
        for round_number in range(1, 4):
            fd = yield from a.open("/paper.tex", 1)
            yield from a.pwrite(fd, 5_000, 10_000 + (round_number - 1) * 5_000)
            yield from a.close(fd)
            yield from a.quiesce()
            yield bed.sim.timeout(4.0)
            st = yield from b.stat("/paper.tex")
            observations.append(("B poll %d" % round_number, st.size))
        return observations

    return bed.run(work())


def main():
    for kind in ("nfsv3", "nfs-enhanced"):
        bed = SharedNfsTestbed(nclients=2, kind=kind)
        observations = collaborate(bed)
        bed.quiesce()
        print("== %s ==" % kind)
        for label, size in observations:
            print("   %-12s sees %6d bytes" % (label, size))
        print("   messages: A=%d B=%d   server callbacks: %d" % (
            bed.counters[0].messages, bed.counters[1].messages,
            bed.callbacks_sent))
        print()

    print("Both protocols keep the clients coherent.  Plain NFS v3 does it")
    print("by re-checking attributes after its 3 s validity window — cost")
    print("paid by every client on every path, shared or not.  Enhanced")
    print("NFS does it with server callbacks: B's cache stays hot until A")
    print("actually changes something — which is why its message counts")
    print("are lower even while sharing.")


if __name__ == "__main__":
    main()
