#!/usr/bin/env python3
"""Scenario: where does the time go for random writes, NFS v3 vs iSCSI?

The paper's sharpest asymmetry (Table 4) is RANDOM WRITE: NFS v3 pays a
synchronous meta-data and commit chain the block protocol never sees.
This example answers the "why" with the profiler instead of prose: it
runs the same random-write workload on both stacks, then prints, side by
side,

* per-layer time attribution (exclusive = time on the blocking chain, so
  each column sums to 100% of the accounted time),
* the top critical-path segments for the op that actually blocks on I/O
  (``fsync`` — NFS v3 absorbs ``pwrite`` into the client cache), and
* the queueing picture (utilization, waits, queue depth) per resource.

Run:  python examples/where_does_time_go.py [file_mb]
"""

import random
import sys

from repro.core import make_stack
from repro.obs import (
    Profile,
    format_attribution,
    format_critical_path,
    format_resource_report,
)

KINDS = ("nfsv3", "iscsi")


def random_writes(client, file_mb):
    """Write a file, then rewrite it in 64 KB requests in random order."""
    request = 64 * 1024
    size = file_mb * 1024 * 1024
    offsets = list(range(0, size, request))
    random.Random(7).shuffle(offsets)
    fd = yield from client.creat("/io")
    yield from client.pwrite(fd, size, 0)
    yield from client.fsync(fd)
    for offset in offsets:
        yield from client.pwrite(fd, request, offset)
    yield from client.fsync(fd)
    yield from client.close(fd)


def profile_random_writes(kind: str, file_mb: int):
    """Run the random-write workload traced; return (stack, Profile)."""
    stack = make_stack(kind, trace=True)
    stack.run(random_writes(stack.client, file_mb), name="randwrite")
    stack.quiesce()
    return stack, Profile(stack.tracer)


def main():
    file_mb = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    print("Random 64 KB writes over a %d MB file — per-layer attribution"
          % file_mb)
    for kind in KINDS:
        stack, profile = profile_random_writes(kind, file_mb)
        print()
        print("== %s: %.3f s simulated, %.3f s accounted to syscalls =="
              % (kind, stack.now, profile.accounted))
        print()
        print(format_attribution(profile))
        print()
        print(format_critical_path(profile, "syscall:fsync", limit=8))
        print()
        print(format_resource_report(stack.resources()))


if __name__ == "__main__":
    main()
