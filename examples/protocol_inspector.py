#!/usr/bin/env python3
"""Scenario: protocol forensics — watch what each syscall puts on the wire.

The paper's micro-benchmarking method, interactive: run one system call on
a cold or warm stack and print the exact protocol exchange (op mix, bytes),
the simulated Ethereal.  Useful for building intuition about *why* the
tables look the way they do.

Run:  python examples/protocol_inspector.py [syscall] [depth]
      e.g. python examples/protocol_inspector.py mkdir 3
"""

import sys

from repro.workloads import SYSCALL_OPS
from repro.workloads.microbench import SyscallMicrobench
from repro.core import make_stack

KINDS = ("nfsv2", "nfsv3", "nfsv4", "iscsi", "nfs-enhanced")


def inspect(op: str, depth: int):
    print("Syscall %r at directory depth %d" % (op, depth))
    for label, warm in (("cold cache", False), ("warm cache", True)):
        print()
        print("== %s ==" % label)
        print("%-14s %6s   %s" % ("stack", "msgs", "protocol exchange"))
        print("-" * 70)
        for kind in KINDS:
            bench = SyscallMicrobench(kind, depth)
            # Re-run with a visible per-op breakdown.
            stack = bench._fresh_stack()
            stack.make_cold()
            if warm:
                stack.run(bench._op(stack.client, op, 0), name="prime")
                stack.run(bench._make_consumables(stack.client, 1),
                          name="prep")
                stack.quiesce()
                stack.run(_sleep(stack, 4.0), name="age")
                stack.quiesce()
            snap = stack.snapshot()
            stack.run(bench._op(stack.client, op, 1 if warm else 0),
                      name=op)
            stack.quiesce()
            delta = stack.delta(snap)
            mix = ", ".join(
                "%s x%d" % (name, count) if count > 1 else name
                for name, count in sorted(delta.by_op.items())
            )
            print("%-14s %6d   %s" % (kind, delta.messages, mix or "(none)"))


def _sleep(stack, seconds):
    yield stack.sim.timeout(seconds)


def main():
    op = sys.argv[1] if len(sys.argv) > 1 else "mkdir"
    depth = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    if op not in SYSCALL_OPS:
        print("unknown syscall %r; choose from: %s" % (op, ", ".join(SYSCALL_OPS)))
        raise SystemExit(1)
    inspect(op, depth)


if __name__ == "__main__":
    main()
