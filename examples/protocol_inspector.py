#!/usr/bin/env python3
"""Scenario: protocol forensics — watch what each syscall puts on the wire.

The paper's micro-benchmarking method, interactive: run one system call on
a cold or warm stack and print the exact protocol exchange plus the causal
span tree recorded by ``repro.obs`` — the simulated Ethereal.  Useful for
building intuition about *why* the tables look the way they do.

Run:  python examples/protocol_inspector.py [syscall] [depth]
      e.g. python examples/protocol_inspector.py mkdir 3
"""

import sys

from repro.workloads import SYSCALL_OPS
from repro.workloads.microbench import SyscallMicrobench
from repro.core import make_stack
from repro.obs import render_span_tree

KINDS = ("nfsv2", "nfsv3", "nfsv4", "iscsi", "nfs-enhanced")


def _traced_stack(bench):
    """A mounted, set-up stack of the bench's kind with tracing attached."""
    stack = make_stack(bench.kind, bench.params, trace=True)
    stack.run(bench._setup(stack.client), name="setup")
    stack.quiesce()
    return stack


def inspect(op: str, depth: int):
    print("Syscall %r at directory depth %d" % (op, depth))
    for label, warm in (("cold cache", False), ("warm cache", True)):
        print()
        print("== %s ==" % label)
        trees = []
        print("%-14s %6s   %s" % ("stack", "msgs", "protocol exchange"))
        print("-" * 70)
        for kind in KINDS:
            bench = SyscallMicrobench(kind, depth)
            stack = _traced_stack(bench)
            stack.make_cold()
            if warm:
                stack.run(bench._op(stack.client, op, 0), name="prime")
                stack.run(bench._make_consumables(stack.client, 1),
                          name="prep")
                stack.quiesce()
                stack.run(_sleep(stack, 4.0), name="age")
                stack.quiesce()
            tracer = stack.tracer
            first_msg = len(tracer.messages)
            started = stack.now
            stack.run(bench._op(stack.client, op, 1 if warm else 0),
                      name=op)
            stack.quiesce()
            messages = tracer.messages[first_msg:]
            requests = [m for m in messages if m.kind == "request"]
            mix = {}
            for msg in requests:
                mix[msg.op] = mix.get(msg.op, 0) + 1
            text = ", ".join(
                "%s x%d" % (name, count) if count > 1 else name
                for name, count in sorted(mix.items())
            )
            print("%-14s %6d   %s" % (kind, len(messages), text or "(none)"))
            # The syscall spans the op opened — the causal trees to print.
            roots = [span for span in tracer.spans
                     if span.cat == "syscall" and span.start >= started]
            roots.sort(key=lambda span: (span.start, span.id))
            trees.append((kind, render_span_tree(tracer, roots=roots,
                                                 include_args=False)))
        for kind, tree in trees:
            print()
            print("-- %s span tree --" % kind)
            print(tree if tree else "(no syscall spans)")


def _sleep(stack, seconds):
    yield stack.sim.timeout(seconds)


def main():
    op = sys.argv[1] if len(sys.argv) > 1 else "mkdir"
    depth = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    if op not in SYSCALL_OPS:
        print("unknown syscall %r; choose from: %s" % (op, ", ".join(SYSCALL_OPS)))
        raise SystemExit(1)
    inspect(op, depth)


if __name__ == "__main__":
    main()
