#!/usr/bin/env python3
"""Scenario: remote office over a WAN (the Figure 6 latency sweep).

IP-networked storage's promise is distance: what happens to each protocol
when the server moves from the machine room (sub-millisecond RTT) to a
remote site tens of milliseconds away?  This reruns the paper's NISTNet
experiment: streaming a file sequentially, reading and writing, as the
round-trip time grows from LAN to 90 ms.

Run:  python examples/wan_latency_sweep.py [file_mb]
"""

import sys

from repro.workloads import SeqRandWorkload

RTTS = (0.0002, 0.010, 0.030, 0.050, 0.070, 0.090)


def sweep(mode: str, file_mb: int):
    print("%s a %d MB file, 4 KB at a time" % (mode.capitalize(), file_mb))
    print("%-10s" % "RTT", "".join("%12s" % k for k in ("nfsv3", "iscsi")))
    print("-" * 36)
    for rtt in RTTS:
        row = ["%8.1fms" % (rtt * 1000)]
        for kind in ("nfsv3", "iscsi"):
            workload = SeqRandWorkload(kind, file_mb=file_mb, rtt=rtt)
            if mode == "reading":
                result = workload.run_read(sequential=True)
            else:
                result = workload.run_write(sequential=True)
            row.append("%11.2fs" % result.completion_time)
        print("".join(row))
    print()


def main():
    file_mb = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    sweep("reading", file_mb)
    sweep("writing", file_mb)
    print("What the paper found, reproduced:")
    print(" * reads degrade with RTT for both stacks, NFS faster (its")
    print("   read-ahead pipeline is shallower and RPC timeouts bite);")
    print(" * iSCSI writes barely notice the WAN — they complete into the")
    print("   client's cache — while NFS writes are paced by the bounded")
    print("   async-write window and grow roughly linearly with RTT.")


if __name__ == "__main__":
    main()
