#!/usr/bin/env python3
"""Scenario: choosing storage for a mail server (PostMark head-to-head).

The paper's motivating question — file-access or block-access protocol? —
is sharpest for Internet-service workloads: mail spools, news, web
caches: huge numbers of short-lived small files.  PostMark models exactly
that, and Table 5 is where iSCSI's lead is widest.

This example runs PostMark on all of NFS v3, iSCSI, and the Section-7
enhanced NFS, and prints a small capacity-planning summary: how many
transactions per second each stack sustains, what the network and the
server CPU would see.

Run:  python examples/mailserver_postmark.py [transactions]
"""

import sys

from repro.workloads import PostMark


def main():
    transactions = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    print("PostMark: %d transactions over a 1000-file mail spool" % transactions)
    print()
    print("%-14s %9s %9s %11s %9s %9s" % (
        "stack", "time", "txn/s", "messages", "srv CPU", "cli CPU"))
    print("-" * 66)
    results = {}
    for kind in ("nfsv3", "nfs-enhanced", "iscsi"):
        result = PostMark(kind, file_count=1000,
                          transactions=transactions).run()
        results[kind] = result
        print("%-14s %8.1fs %9.0f %11d %8.0f%% %8.0f%%" % (
            kind,
            result.completion_time,
            transactions / result.completion_time,
            result.messages,
            result.server_cpu * 100,
            result.client_cpu * 100,
        ))

    nfs, iscsi = results["nfsv3"], results["iscsi"]
    print()
    print("iSCSI finishes %.0fx faster with %.0fx fewer messages —" % (
        nfs.completion_time / iscsi.completion_time,
        nfs.messages / max(1, iscsi.messages)))
    print("asynchronous, aggregated meta-data updates (ext3's journal) vs")
    print("one synchronous RPC per meta-data update (NFS v2/v3).")
    print()
    enhanced = results["nfs-enhanced"]
    print("The Section-7 enhancements (directory delegation + consistent")
    print("meta-data cache) recover most of that: %.1fs vs plain NFS %.1fs." % (
        enhanced.completion_time, nfs.completion_time))


if __name__ == "__main__":
    main()
