"""Tests for the Section-7 NFS enhancements (the paper's proposal)."""

import pytest

from repro.core import make_stack
from repro.nfs import protocol as p
from repro.workloads import PostMark


@pytest.fixture
def enhanced():
    return make_stack("nfs-enhanced")


def test_delegation_acquired_on_first_mutation(enhanced):
    c = enhanced.client

    def work():
        yield from c.mkdir("/d")

    enhanced.run(work())
    assert enhanced.counters.by_op.get(p.DELEGDIR, 0) == 1
    assert enhanced.server.state.delegations_granted >= 1


def test_delegated_creates_are_local(enhanced):
    c = enhanced.client

    def setup():
        yield from c.mkdir("/d")   # acquires the delegation

    enhanced.run(setup())
    snap = enhanced.snapshot()

    def burst():
        for i in range(20):
            fd = yield from c.creat("/d/f%d" % i)
            yield from c.close(fd)

    enhanced.run(burst())
    # No per-create round trips — everything is a local record.
    assert enhanced.delta(snap).messages == 0


def test_deleg_flush_replays_batch(enhanced):
    c = enhanced.client

    def work():
        yield from c.mkdir("/d")
        for i in range(10):
            fd = yield from c.creat("/d/f%d" % i)
            yield from c.close(fd)

    enhanced.run(work())
    enhanced.quiesce()
    assert enhanced.counters.by_op.get(p.DELEGUPDATE, 0) >= 1
    # The server now holds all ten files under their reserved inos.
    root = enhanced.fs.inodes[1]
    d_ino = root.entries["d"]
    assert len(enhanced.fs.inodes[d_ino].entries) == 10


def test_create_delete_pairs_cancel(enhanced):
    """The ext3-absorption effect: short-lived files cost nothing."""
    c = enhanced.client

    def setup():
        yield from c.mkdir("/d")

    enhanced.run(setup())
    enhanced.quiesce()
    snap = enhanced.snapshot()

    def churn():
        for i in range(25):
            fd = yield from c.creat("/d/tmp%d" % i)
            yield from c.write(fd, 8192)
            yield from c.close(fd)
            yield from c.unlink("/d/tmp%d" % i)

    enhanced.run(churn())
    enhanced.quiesce()
    delta = enhanced.delta(snap)
    assert delta.messages <= 3   # at most a stray batch/grant, no data


def test_namespace_correct_after_replay(enhanced):
    c = enhanced.client

    def work():
        yield from c.mkdir("/d")
        fd = yield from c.creat("/d/keep")
        yield from c.write(fd, 5000)
        yield from c.close(fd)
        fd = yield from c.creat("/d/doomed")
        yield from c.close(fd)
        yield from c.unlink("/d/doomed")
        names = yield from c.readdir("/d")
        st = yield from c.stat("/d/keep")
        return names, st.size

    names, size = enhanced.run(work())
    enhanced.quiesce()
    assert names == ["keep"]
    assert size == 5000


def test_consistent_cache_skips_revalidation(enhanced):
    c = enhanced.client

    def setup():
        fd = yield from c.creat("/f")
        yield from c.close(fd)
        yield from c.stat("/f")

    enhanced.run(setup())
    enhanced.quiesce()   # settle the delegation replay first
    snap = enhanced.snapshot()

    def later():
        yield enhanced.sim.timeout(30.0)   # far past any validity window
        yield from c.stat("/f")

    enhanced.run(later())
    assert enhanced.delta(snap).messages == 0


def test_server_callback_invalidates_other_client():
    """Multi-peer behavior is exercised through the server registry."""
    stack = make_stack("nfs-enhanced")
    state = stack.server.state
    state.cache_registry[99] = {"clientA", "clientB"}

    def invalidate():
        yield from stack.server._invalidate(99, mutating_client="clientA")

    # clientB must be called back; clientA (the mutator) must not.
    stack.run(invalidate())
    assert state.callbacks_sent == 1


def test_enhanced_beats_plain_nfs_on_postmark():
    """The paper's bottom line for Section 7."""
    plain = PostMark("nfsv3", file_count=150, transactions=1000).run()
    enhanced = PostMark("nfs-enhanced", file_count=150, transactions=1000).run()
    assert enhanced.completion_time < plain.completion_time / 3
    assert enhanced.messages < plain.messages / 2
