"""The server-farm storm: partition invariance, queueing laws, CLI, schema."""

import io
import json
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro import cli
from repro.obs.bench import (SCALE_SCHEMA_VERSION, compare_scale_documents,
                             load_bench)
from repro.sim.farm import FARM_PROTOCOLS, run_farm


def _invariant(result):
    trimmed = dict(result)
    trimmed.pop("report")
    return trimmed


# -- the storm itself ----------------------------------------------------------


def test_farm_validates_parameters():
    with pytest.raises(ValueError):
        run_farm(protocol="smb")
    with pytest.raises(ValueError):
        run_farm(nclients=0)
    with pytest.raises(ValueError):
        run_farm(nservers=0)
    with pytest.raises(ValueError):
        run_farm(connections=0)
    with pytest.raises(ValueError):
        run_farm(sharing=-0.1)
    with pytest.raises(ValueError):
        run_farm(sharing=1.5)
    with pytest.raises(ValueError):
        run_farm(requests=0)
    assert FARM_PROTOCOLS == ("nfs", "iscsi")


@pytest.mark.parametrize("protocol", FARM_PROTOCOLS)
def test_farm_outcome_is_partition_invariant(protocol):
    """The byte-identity contract: flat reference, one shard, and a
    parallel partitioning all produce the identical simulated outcome."""
    kwargs = dict(protocol=protocol, nclients=10, nservers=3, connections=2,
                  sharing=0.3, requests=5)
    reference = _invariant(run_farm(nshards=0, **kwargs))
    assert _invariant(run_farm(nshards=1, executor="sequential",
                               **kwargs)) == reference
    assert _invariant(run_farm(nshards=2, executor="thread",
                               **kwargs)) == reference
    assert _invariant(run_farm(nshards=3, executor="thread", jobs=2,
                               **kwargs)) == reference


def test_farm_nfs_pays_layout_round_trips_and_iscsi_does_not():
    nfs = run_farm(protocol="nfs", nclients=8, nservers=2, requests=6,
                   nshards=0)
    block = run_farm(protocol="iscsi", nclients=8, nservers=2, requests=6,
                     nshards=0)
    assert nfs["layout_gets"] > 0
    assert block["layout_gets"] == 0
    # Same I/O count, but NFS additionally pays the metadata messages.
    assert nfs["completed"] == block["completed"]
    assert nfs["messages"] > block["messages"]


def test_farm_littles_law_holds_at_saturation():
    """At a saturated server the queue builds, and the queue-length
    integral equals the summed waits (Little's law, exact in the DES)."""
    result = run_farm(protocol="nfs", nclients=64, nservers=1,
                      connections=1, requests=4, nshards=0, think=0.0005)
    row = result["per_server"][0]
    assert row["utilization"] > 0.9
    assert row["mean_queue"] > 5.0
    assert row["littles_residual"] < 1e-6
    assert row["mean_wait"] > 0.0


def test_farm_mcs_connections_raise_throughput():
    """More channels per client -> more overlap -> higher throughput,
    the effect MC/S exists for."""
    one = run_farm(protocol="iscsi", nclients=16, nservers=4,
                   connections=1, requests=8, nshards=0)
    four = run_farm(protocol="iscsi", nclients=16, nservers=4,
                    connections=4, requests=8, nshards=0)
    assert four["makespan"] < one["makespan"]
    assert four["throughput"] > one["throughput"]


def test_farm_striping_spreads_load():
    result = run_farm(protocol="nfs", nclients=12, nservers=4, requests=6,
                      nshards=0)
    assert len(result["per_server"]) == 4
    assert all(row["io_served"] > 0 for row in result["per_server"])
    # Only the MDS (server 0) answers LAYOUTGET.
    assert result["per_server"][0]["layout_served"] == result["layout_gets"]
    assert all(row["layout_served"] == 0
               for row in result["per_server"][1:])


# -- the CLI -------------------------------------------------------------------


def _run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = cli.main(argv)
    return code, out.getvalue(), err.getvalue()


FARM_ARGS = ["scale", "--farm", "--protocol", "nfs", "--nclients", "6",
             "--servers", "2", "--connections", "2", "--requests", "4"]


def test_cli_farm_validation_exit_codes():
    cases = [
        ["scale", "--farm", "--nclients", "0"],
        ["scale", "--farm", "--servers", "0"],
        ["scale", "--farm", "--connections", "-1"],
        ["scale", "--farm", "--sharing", "1.5"],
        ["scale", "--farm", "--shards", "0"],
    ]
    for argv in cases:
        code, _out, err = _run_cli(argv)
        assert code == 2, argv
        assert "must be" in err, argv


def test_cli_farm_reference_matches_shards_1(tmp_path):
    """The CI gate: --reference stdout is byte-identical to --shards 1."""
    code, ref_out, _ = _run_cli(FARM_ARGS + ["--reference"])
    assert code == 0
    out_file = str(tmp_path / "farm.json")
    code, sweep_out, _ = _run_cli(FARM_ARGS + ["--shards", "1",
                                               "--out", out_file])
    assert code == 0
    assert ref_out == sweep_out
    document = load_bench(out_file)
    assert document["schema"] == SCALE_SCHEMA_VERSION
    assert document["kind"] == "farm"
    assert len(document["points"]) == 1
    assert document["points"][0]["id"] == "nfs/s2/x2/n6"


def test_cli_farm_document_compares_exactly(tmp_path):
    first = str(tmp_path / "a.json")
    second = str(tmp_path / "b.json")
    assert _run_cli(FARM_ARGS + ["--out", first])[0] == 0
    assert _run_cli(FARM_ARGS + ["--out", second])[0] == 0
    code, out, _ = _run_cli(["scale", "--compare", first, second])
    assert code == 0
    assert "identical" in out

    document = load_bench(second)
    document["points"][0]["messages"] += 1
    with open(second, "w") as handle:
        json.dump(document, handle)
    code, out, _ = _run_cli(["scale", "--compare", first, second])
    assert code == 1
    assert "messages" in out

    code, _out, err = _run_cli(["scale", "--compare", first,
                                str(tmp_path / "missing.json")])
    assert code == 2
    assert "cannot read" in err


def test_cli_farm_series_reports_scaling_laws(tmp_path):
    out_file = str(tmp_path / "farm.json")
    code, _out, _err = _run_cli(
        ["scale", "--farm", "--protocol", "nfs", "--nclients", "4", "16",
         "--servers", "2", "--connections", "1", "--requests", "4",
         "--out", out_file])
    assert code == 0
    series = load_bench(out_file)["series"]["nfs/s2/x1"]
    assert len(series["efficiency"]) == 2
    assert series["efficiency"][0] == [4, 1.0]
    assert series["message_exponent"] is not None
    # Message counts grow roughly linearly with clients here.
    assert 0.5 < series["message_exponent"] < 1.5


# -- the schema comparator -----------------------------------------------------


def _document(points, series=None, schema=SCALE_SCHEMA_VERSION):
    return {"schema": schema, "points": points, "series": series or {}}


def test_compare_scale_documents_is_exact():
    point = {"id": "nfs/s1/x1/n4", "messages": 32, "makespan": 0.5}
    base = _document([point])
    assert compare_scale_documents(base, _document([dict(point)])) == []

    drifted = dict(point, messages=34)
    problems = compare_scale_documents(base, _document([drifted]))
    assert problems and "messages" in problems[0]

    assert compare_scale_documents(base, _document([]))  # missing point
    extra = _document([point, {"id": "nfs/s1/x1/n8", "messages": 64}])
    assert any("not in baseline" in problem
               for problem in compare_scale_documents(base, extra))

    mismatch = compare_scale_documents(base, _document([point], schema=1))
    assert mismatch == ["schema: %r -> 1" % SCALE_SCHEMA_VERSION]

    series_drift = compare_scale_documents(
        _document([point], series={"nfs/s1/x1": {"saturation_clients": None}}),
        _document([point], series={"nfs/s1/x1": {"saturation_clients": 8}}))
    assert any("series" in problem for problem in series_drift)
