"""Tests for the synthetic traces and the Section-7 simulations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.traces import (
    CAMPUS_PROFILE,
    EECS_PROFILE,
    TraceGenerator,
    analyze_sharing,
    simulate_metadata_cache,
    sweep_cache_sizes,
)


@pytest.fixture(scope="module")
def eecs_events():
    return list(TraceGenerator(EECS_PROFILE).events(limit=40_000))


@pytest.fixture(scope="module")
def campus_events():
    return list(TraceGenerator(CAMPUS_PROFILE).events(limit=40_000))


def test_events_are_time_ordered(eecs_events):
    times = [e.time for e in eecs_events]
    assert times == sorted(times)


def test_events_within_population(eecs_events):
    p = EECS_PROFILE
    assert all(0 <= e.directory < p.directories for e in eecs_events)
    assert all(0 <= e.client < p.clients for e in eecs_events)


def test_generator_deterministic():
    a = list(TraceGenerator(EECS_PROFILE, seed=5).events(limit=500))
    b = list(TraceGenerator(EECS_PROFILE, seed=5).events(limit=500))
    assert a == b
    c = list(TraceGenerator(EECS_PROFILE, seed=6).events(limit=500))
    assert a != c


def test_sharing_single_client_dominates(eecs_events):
    point = analyze_sharing(eecs_events, intervals=(600,))[0]
    assert point.read_by_one > point.read_by_multiple
    assert point.written_by_one > point.written_by_multiple


def test_sharing_read_write_shared_is_rare(eecs_events, campus_events):
    """The paper: ~4% (EECS) and ~3.5% (Campus) at T=1000 s."""
    for events in (eecs_events, campus_events):
        point = analyze_sharing(events, intervals=(1000,))[0]
        assert point.read_write_shared < 0.08


def test_sharing_grows_with_interval(eecs_events):
    points = analyze_sharing(eecs_events, intervals=(60, 1200))
    assert points[1].read_by_multiple >= points[0].read_by_multiple


def test_metadata_cache_reduction(eecs_events):
    """Section 7: > 70% fewer meta-data messages at cache size ~2^10."""
    result = simulate_metadata_cache(eecs_events, cache_size=1024)
    assert result.reduction > 0.70


def test_metadata_cache_callbacks_are_rare(eecs_events):
    result = simulate_metadata_cache(eecs_events, cache_size=1024)
    assert result.callback_ratio < 0.05


def test_reduction_grows_with_cache_size(eecs_events):
    sweep = sweep_cache_sizes(eecs_events, sizes=(16, 1024))
    assert sweep[1024].reduction > sweep[16].reduction


def test_consistent_cache_never_worse(campus_events):
    result = simulate_metadata_cache(campus_events, cache_size=1024)
    assert result.consistent_messages <= result.baseline_messages


@settings(max_examples=10, deadline=None)
@given(size=st.integers(min_value=1, max_value=2048))
def test_metadata_cache_counts_are_sane(size):
    events = list(TraceGenerator(EECS_PROFILE, seed=1).events(limit=2000))
    result = simulate_metadata_cache(events, cache_size=size)
    assert 0 <= result.consistent_messages <= result.events
    assert 0 <= result.baseline_messages <= result.events
    assert result.callbacks >= 0
