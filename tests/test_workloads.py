"""Workload-level tests: small-scale runs asserting the paper's *shapes*."""

import pytest

from repro.workloads import (
    KernelTreeOps,
    PostMark,
    SeqRandWorkload,
    SyscallMicrobench,
    TpccWorkload,
    TpchWorkload,
    TreeSpec,
    run_batching_sweep,
    run_depth_sweep,
    run_io_size_sweep,
)


# ---------------------------------------------------------------- micro

def test_cold_mkdir_matches_paper_exactly():
    # Table 2, depth 0: the anchor cells.
    assert SyscallMicrobench("nfsv2").measure_cold("mkdir") == 2
    assert SyscallMicrobench("nfsv3").measure_cold("mkdir") == 2
    assert SyscallMicrobench("nfsv4").measure_cold("mkdir") == 4


def test_cold_chdir_matches_paper_exactly():
    assert SyscallMicrobench("nfsv3").measure_cold("chdir") == 1
    assert SyscallMicrobench("iscsi").measure_cold("chdir") == 2


def test_cold_iscsi_exceeds_nfs():
    """Table 2's headline: iSCSI pays more cold (path resolution in blocks)."""
    for op in ("mkdir", "rmdir", "unlink", "readdir"):
        nfs = SyscallMicrobench("nfsv3").measure_cold(op)
        iscsi = SyscallMicrobench("iscsi").measure_cold(op)
        assert iscsi > nfs, op


def test_warm_iscsi_beats_or_ties_nfs():
    """Table 3's headline: warm iSCSI <= warm NFS for read-only meta-data
    (true caching beats consistency checks); readdir is the exception in
    the paper too (iSCSI pays the atime update)."""
    for op in ("chdir", "stat", "access"):
        nfs = SyscallMicrobench("nfsv3").measure_warm(op)
        iscsi = SyscallMicrobench("iscsi").measure_warm(op)
        assert iscsi <= nfs, op
    assert SyscallMicrobench("iscsi").measure_warm("readdir") == 2  # atime


def test_depth_scaling_slopes():
    """Figure 4: cold cost grows ~1/level for NFS v3, ~2/level for iSCSI,
    and the warm cost is flat for both."""
    nfs = run_depth_sweep("mkdir", "nfsv3", depths=(0, 4, 8))
    iscsi = run_depth_sweep("mkdir", "iscsi", depths=(0, 4, 8))
    assert nfs[8] - nfs[0] == 8
    assert 14 <= iscsi[8] - iscsi[0] <= 18
    warm = run_depth_sweep("mkdir", "iscsi", depths=(0, 8), warm=True)
    assert abs(warm[8] - warm[0]) <= 1


def test_batching_amortizes_iscsi_updates():
    """Figure 3: amortized messages per op fall with batch size."""
    sweep = run_batching_sweep("mkdir", batch_sizes=(1, 16, 128))
    assert sweep[1] > sweep[16] > sweep[128]
    assert sweep[128] < 1.5


def test_io_size_sweep_shapes():
    """Figure 5: v2 cold reads grow past the 8 KB transfer limit; iSCSI
    stays flat (one command regardless of size)."""
    sizes = (4096, 65536)
    v2 = run_io_size_sweep("nfsv2", "cold-read", sizes=sizes)
    iscsi = run_io_size_sweep("iscsi", "cold-read", sizes=sizes)
    assert v2[65536] >= v2[4096] + 6
    assert iscsi[65536] - iscsi[4096] <= 2


def test_cold_write_async_escape():
    """Figure 5c: v3 async writes leave the capture; v2 sync writes do not."""
    sizes = (4096, 65536)
    v2 = run_io_size_sweep("nfsv2", "cold-write", sizes=sizes)
    v3 = run_io_size_sweep("nfsv3", "cold-write", sizes=sizes)
    assert v2[65536] > v2[4096]
    assert v3[65536] - v3[4096] <= 1


# ---------------------------------------------------------------- table 4

@pytest.fixture(scope="module")
def seqrand_results():
    results = {}
    for kind in ("nfsv3", "iscsi"):
        workload = SeqRandWorkload(kind, file_mb=8)
        results[kind, "seq-write"] = workload.run_write(True)
        results[kind, "seq-read"] = workload.run_read(True)
        results[kind, "rand-read"] = workload.run_read(False)
    return results


def test_iscsi_writes_much_faster(seqrand_results):
    nfs = seqrand_results["nfsv3", "seq-write"]
    iscsi = seqrand_results["iscsi", "seq-write"]
    assert iscsi.completion_time < nfs.completion_time / 4


def test_iscsi_write_messages_coalesced(seqrand_results):
    nfs = seqrand_results["nfsv3", "seq-write"]
    iscsi = seqrand_results["iscsi", "seq-write"]
    assert nfs.messages > 10 * iscsi.messages


def test_read_messages_comparable(seqrand_results):
    nfs = seqrand_results["nfsv3", "seq-read"]
    iscsi = seqrand_results["iscsi", "seq-read"]
    assert abs(nfs.messages - iscsi.messages) < 0.1 * nfs.messages


def test_random_reads_slower_than_sequential(seqrand_results):
    for kind in ("nfsv3", "iscsi"):
        seq = seqrand_results[kind, "seq-read"]
        rand = seqrand_results[kind, "rand-read"]
        assert rand.completion_time > seq.completion_time


def test_bytes_track_payload(seqrand_results):
    for result in seqrand_results.values():
        assert result.bytes > 8 * 1024 * 1024   # at least the file itself


# ---------------------------------------------------------------- macro

def test_postmark_headline():
    """Table 5: iSCSI beats NFS by a wide margin on meta-data workloads."""
    nfs = PostMark("nfsv3", file_count=200, transactions=1500).run()
    iscsi = PostMark("iscsi", file_count=200, transactions=1500).run()
    assert iscsi.completion_time < nfs.completion_time / 5
    assert iscsi.messages < nfs.messages / 20


def test_postmark_cpu_profile():
    """Tables 9-10: NFS burns the server; iSCSI burns the client."""
    nfs = PostMark("nfsv3", file_count=200, transactions=1500).run()
    iscsi = PostMark("iscsi", file_count=200, transactions=1500).run()
    assert nfs.server_cpu > iscsi.server_cpu
    assert iscsi.client_cpu > nfs.client_cpu


def test_tpcc_comparable():
    """Table 6: OLTP throughput comparable between the stacks."""
    nfs = TpccWorkload("nfsv3", transactions=300, table_mb=32).run()
    iscsi = TpccWorkload("iscsi", transactions=300, table_mb=32).run()
    ratio = iscsi.throughput / nfs.throughput
    assert 0.7 < ratio < 1.5


def test_tpch_message_gap():
    """Table 7: NFS needs several times more messages for the same scans."""
    nfs = TpchWorkload("nfsv3", queries=2, database_mb=32).run()
    iscsi = TpchWorkload("iscsi", queries=2, database_mb=32).run()
    assert nfs.messages > 3 * iscsi.messages
    assert 0.7 < (iscsi.throughput / nfs.throughput) < 1.6


def test_kernel_tree_shape():
    """Table 8: iSCSI wins the meta-data phases; compile is comparable."""
    spec = TreeSpec(top_dirs=3, subdirs_per_dir=2, files_per_dir=8)
    nfs = KernelTreeOps("nfsv3", spec).run_all()
    iscsi = KernelTreeOps("iscsi", spec).run_all()
    assert iscsi.tar_seconds < nfs.tar_seconds
    assert iscsi.rm_seconds < nfs.rm_seconds
    assert iscsi.make_seconds < nfs.make_seconds
    assert iscsi.make_seconds > 0.5 * nfs.make_seconds  # CPU-bound parity
