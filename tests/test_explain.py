"""repro.obs.explain: diff-engine invariants, flight recorder, renderers.

The engine's contracts, each asserted here:

* determinism — re-explaining the same pair is byte-identical in every
  output format;
* exact attribution — per-layer ``delta_ns`` values (including the
  ``(unattributed)`` remainder) sum exactly to the completion-time
  delta, on live and bench-derived sides alike;
* anti-symmetry — B-vs-A is the exact negation of A-vs-B, and the blame
  ranking is invariant under the swap;
* the paper's Table 4 story — explaining random writes on NFS vs iSCSI
  names message traffic (and its meta-data/journal component) as the top
  blame term;
* the flight recorder — bounded rings, evidence dumps on forced S403
  and T501 findings, and byte-identical runs when attached.
"""
# simlint: disable-file=O302,O303,D104 -- tests drive recorder/telemetry hooks directly and assert exact sim times

from __future__ import annotations

import json
import warnings
from types import SimpleNamespace

import pytest

from repro.core.comparison import make_stack
from repro.obs import bench
from repro.obs.bench import relative_change
from repro.obs.explain import (
    FlightRecorder,
    explain_runs,
    format_explain,
    format_explain_json,
    render_explain_html,
    render_timeline_diff,
    run_side,
    side_from_bench,
)
from repro.sim.stats import LatencyHistogram


@pytest.fixture(scope="module")
def randwrite_sides():
    return run_side("randwrite", "nfsv3"), run_side("randwrite", "iscsi")


@pytest.fixture(scope="module")
def randwrite_report(randwrite_sides):
    side_a, side_b = randwrite_sides
    return explain_runs(side_a, side_b)


# ------------------------------------------------------------ diff engine


def _layer_sum(report):
    return sum(entry["delta_ns"] for entry in report["layers"])


@pytest.mark.parametrize("kinds", [("nfsv3", "iscsi"), ("nfsv2", "nfsv4")])
def test_layer_deltas_sum_exactly_live(kinds):
    report = explain_runs(run_side("smoke", kinds[0]),
                          run_side("smoke", kinds[1]))
    assert _layer_sum(report) == report["delta"]["completion_time_ns"]


def test_layer_deltas_sum_exactly_randwrite(randwrite_report):
    delta = randwrite_report["delta"]["completion_time_ns"]
    assert _layer_sum(randwrite_report) == delta
    assert delta != 0  # the Table 4 gap is real, not a vacuous 0 == 0


def test_reexplain_is_byte_identical():
    reports = [explain_runs(run_side("smoke", "nfsv3"),
                            run_side("smoke", "iscsi"))
               for _ in range(2)]
    assert format_explain_json(reports[0]) == format_explain_json(reports[1])
    assert format_explain(reports[0]) == format_explain(reports[1])
    assert render_explain_html(reports[0]) == render_explain_html(reports[1])


def test_swap_negates_every_delta(randwrite_sides):
    side_a, side_b = randwrite_sides
    ab = explain_runs(side_a, side_b)
    ba = explain_runs(side_b, side_a)
    for key in ("completion_time_ns", "messages", "bytes",
                "retransmissions"):
        assert ba["delta"][key] == -ab["delta"][key]
    forward = {entry["layer"]: entry["delta_ns"] for entry in ab["layers"]}
    backward = {entry["layer"]: entry["delta_ns"] for entry in ba["layers"]}
    assert backward == {name: -delta for name, delta in forward.items()}
    # Symmetric scores: the ranking survives the swap bit-for-bit.
    assert ([(e["kind"], e["name"], e["score"]) for e in ba["blame"]]
            == [(e["kind"], e["name"], e["score"]) for e in ab["blame"]])


def test_table4_randwrite_blames_message_traffic(randwrite_report):
    top = randwrite_report["blame"][0]
    assert top["kind"] == "messages"
    assert "meta-data/journal" in top["verdict"]
    # The same verdict leads the report's plain-English summary (after
    # the headline line).
    assert top["verdict"] in randwrite_report["verdicts"]


def test_randwrite_op_drift_shape(randwrite_report):
    ops = {entry["op"]: entry for entry in randwrite_report["ops"]}
    # NFS pays per-page synchronous WRITEs; iSCSI batches into few
    # SCSI_WRITEs — the drift the paper's explanation turns on.
    assert ops["WRITE"]["family"] == "data"
    assert ops["WRITE"]["delta"]["requests"] < 0
    assert ops["SCSI_WRITE"]["delta"]["requests"] > 0
    meta = randwrite_report["meta_messages"]
    assert meta["delta"] == meta["b"] - meta["a"]
    assert meta["a"] > 0  # CREATE/LOOKUP/GETATTR/COMMIT traffic on NFS


def test_bench_mode_sides():
    record_a = bench.run_case("smoke", "nfsv3")
    record_b = bench.run_case("smoke", "iscsi")
    report = explain_runs(side_from_bench(record_a),
                          side_from_bench(record_b))
    # Bench documents carry totals only: no per-op drift section.
    assert report["ops"] is None
    assert report["meta_messages"] is None
    assert report["a"]["label"] == "nfsv3"
    assert report["b"]["label"] == "iscsi"
    assert _layer_sum(report) == report["delta"]["completion_time_ns"]
    labeled = side_from_bench(record_a, label="baseline:smoke/nfsv3")
    assert labeled["label"] == "baseline:smoke/nfsv3"


def test_telemetry_deltas_present_when_both_sides_carry():
    report = explain_runs(run_side("smoke", "nfsv3", telemetry=True),
                          run_side("smoke", "iscsi", telemetry=True))
    assert report["telemetry"] is not None
    assert report["telemetry"]  # at least one series on either side
    names = [entry["series"] for entry in report["telemetry"]]
    assert names == sorted(names)
    mixed = explain_runs(run_side("smoke", "nfsv3", telemetry=True),
                         run_side("smoke", "iscsi"))
    assert mixed["telemetry"] is None


def test_json_report_round_trips():
    report = explain_runs(run_side("smoke", "nfsv3"),
                          run_side("smoke", "iscsi"))
    assert json.loads(format_explain_json(report)) == report
    assert report["version"] == 1
    assert report["workload"] == "smoke"


# --------------------------------------------------------- flight recorder


def test_flight_recorder_rings_are_bounded():
    sim = SimpleNamespace(now=0.25)
    with pytest.raises(ValueError):
        FlightRecorder(sim, capacity=0)
    recorder = FlightRecorder(sim, capacity=4)
    for i in range(10):
        recorder.note_event((float(i), i, 0,
                             SimpleNamespace(name="proc%d" % i)))
    assert len(recorder.events) == 4
    context = recorder.context()
    assert [e["target"] for e in context["events"]] \
        == ["proc6", "proc7", "proc8", "proc9"]
    assert all(e["kind"] == "event" for e in context["events"])
    dump = recorder.dump("S999", "test", "forced")
    assert recorder.dumps == [dump]
    assert dump["code"] == "S999" and dump["context"]["events"]


def test_flight_recorder_names_fallbacks():
    recorder = FlightRecorder(SimpleNamespace(now=0.0))
    recorder.note_event((0.0, 0, 4, lambda: None, None))
    recorder.note_event((0.0, 1, 2, 1234, None))
    targets = [entry[3] for entry in recorder.events]
    assert "lambda" in targets[0]
    assert targets[1] == "int"


def test_forced_s403_ships_recorder_evidence():
    import heapq

    stack = make_stack("nfsv3", san=True, recorder=True)

    def tiny(client):
        fd = yield from client.creat("/f")
        yield from client.write(fd, 8192)
        yield from client.close(fd)

    stack.run(tiny(stack.client), name="tiny")
    assert stack.sim.now > 0
    # Corrupt the calendar: a record stamped before the current clock.
    heapq.heappush(stack.sim._calendar, (0.0, -1, 4, lambda: None, None))
    stack.sim.run(until=stack.sim.now + 1.0)
    findings = stack.check(strict=False)
    assert any(f.code == "S403" for f in findings)
    dumps = [d for d in stack.recorder.dumps if d["code"] == "S403"]
    assert dumps
    assert dumps[0]["source"] == "simsan"
    assert dumps[0]["context"]["events"]  # non-empty evidence window


def test_forced_t501_ships_recorder_evidence():
    from repro.obs.telemetry import Telemetry
    from repro.sim import Simulator

    sim = Simulator()
    telemetry = Telemetry(sim)
    recorder = FlightRecorder(sim)
    telemetry.recorder = recorder
    recorder.note_event((0.0, 0, 0, SimpleNamespace(name="seed")))
    telemetry.observe("disk.queue", 10.0)
    telemetry.tags["disk.queue"] = "queue"
    rollup = telemetry.series["disk.queue"]
    for i in range(1, 9):   # strictly growing windows, past alarm depth
        rollup.record(i * telemetry.window, 10.0 + i)
    telemetry._run_watchers(9 * telemetry.window)
    assert any(f.code == "T501" for f in telemetry.findings)
    dumps = [d for d in recorder.dumps if d["code"] == "T501"]
    assert dumps
    assert dumps[0]["source"] == "disk.queue"
    assert dumps[0]["context"]["events"]


def test_recorder_attached_run_is_identical():
    def run(kind, **kwargs):
        stack = make_stack(kind, **kwargs)
        stack.run(bench.WORKLOADS["smoke"](stack.client), name="smoke")
        stack.quiesce()
        return stack

    plain = run("nfsv3")
    recorded = run("nfsv3", recorder=True)
    assert plain.recorder is None
    assert recorded.recorder is not None
    # Observe-only: same simulated clock, same event sequence length.
    assert recorded.now == plain.now
    assert recorded.sim._sequence == plain.sim._sequence
    # But the rings saw the run: kernel events and both wire directions.
    assert recorded.recorder.events
    directions = {entry[1] for entry in recorded.recorder.messages}
    assert directions == {"c2s", "s2c"}
    assert recorded.recorder.dumps == []  # clean run: no findings


# ---------------------------------------------------- renderers + folding


def test_format_explain_sections(randwrite_report):
    text = format_explain(randwrite_report)
    assert text.startswith("== repro explain: randwrite  a=nfsv3  b=iscsi")
    for section in ("-- totals", "-- layer attribution",
                    "-- message drift per op", "-- blame", "-- verdict"):
        assert section in text
    assert text.endswith("\n")
    html = render_explain_html(randwrite_report)
    assert html.startswith("<!DOCTYPE html>") and html.endswith("</html>\n")
    assert "blame" in html and "(unattributed)" in html


def test_export_render_timeline_diff_is_deprecated_wrapper():
    from repro.obs import export

    def run(kind):
        stack = make_stack(kind, trace=True)
        stack.run(bench.WORKLOADS["smoke"](stack.client), name="smoke")
        stack.quiesce()
        return stack.tracer

    tracer_a = run("nfsv3")
    tracer_b = run("iscsi")
    with pytest.warns(DeprecationWarning, match="repro.obs.explain"):
        legacy = export.render_timeline_diff(tracer_a, "a", tracer_b, "b",
                                             limit=10)
    with warnings.catch_warnings():
        warnings.simplefilter("error")   # the canonical name must not warn
        canonical = render_timeline_diff(tracer_a, "a", tracer_b, "b",
                                         limit=10)
    assert legacy == canonical


# ------------------------------------------- satellite: histogram + ratios


def test_histogram_percentile_empty_and_single_sample():
    hist = LatencyHistogram()
    assert hist.percentile(0.5) == 0.0
    assert hist.percentile(0.0) == 0.0
    hist.record(0.003)
    for fraction in (0.0, 0.5, 0.95, 1.0):
        assert hist.percentile(fraction) == 0.003


def test_histogram_percentile_partial_restore_stays_defined():
    hist = LatencyHistogram()
    hist.record(0.001)
    hist.record(0.004)
    document = hist.as_dict()
    document.pop("min")
    document.pop("max")
    restored = LatencyHistogram.from_dict(document)
    assert restored.min is None and restored.max is None
    low = restored.percentile(0.0)
    high = restored.percentile(1.0)
    assert 0.0 < low <= 0.001          # bucket floor, not a bogus 0.0
    assert high >= 0.004               # bucket edge above the true max


def test_relative_change_zero_baselines():
    assert relative_change(0, 0) == 0.0
    assert relative_change(0, 5) == "new"
    assert relative_change(4, 6) == 0.5
    assert relative_change(4, 2) == -0.5
