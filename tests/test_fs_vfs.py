"""Unit tests for the VFS path layer (and property tests on namespaces)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs import (
    Ext3Fs,
    FileNotFound,
    InvalidArgument,
    NotADirectory,
    Vfs,
)
from repro.sim import Simulator
from repro.storage import Raid5Volume


@pytest.fixture
def vfs(sim):
    raid = Raid5Volume(sim)
    fs = Ext3Fs(sim, raid, cache_bytes=64 * 1024 * 1024)
    sim.run_process(fs.mount())
    return Vfs(fs)


def run(sim, gen):
    return sim.run_process(gen)


def test_nested_paths(sim, vfs):
    def work():
        yield from vfs.mkdir("/a")
        yield from vfs.mkdir("/a/b")
        yield from vfs.mkdir("/a/b/c")
        names = yield from vfs.readdir("/a/b")
        return names

    assert run(sim, work()) == ["c"]


def test_relative_paths_via_chdir(sim, vfs):
    def work():
        yield from vfs.mkdir("/a")
        yield from vfs.chdir("/a")
        yield from vfs.mkdir("rel")
        names = yield from vfs.readdir("/a")
        return names

    assert run(sim, work()) == ["rel"]


def test_chdir_to_file_rejected(sim, vfs):
    def work():
        fd = yield from vfs.creat("/f")
        yield from vfs.close(fd)
        yield from vfs.chdir("/f")

    with pytest.raises(NotADirectory):
        run(sim, work())


def test_symlink_following(sim, vfs):
    def work():
        yield from vfs.mkdir("/real")
        fd = yield from vfs.creat("/real/file")
        yield from vfs.close(fd)
        yield from vfs.symlink("/real", "/alias")
        st = yield from vfs.stat("/alias/file")
        return st.itype

    assert run(sim, work()) == "file"


def test_symlink_loop_detected(sim, vfs):
    def work():
        yield from vfs.symlink("/b", "/a")
        yield from vfs.symlink("/a", "/b")
        yield from vfs.stat("/a")

    with pytest.raises(InvalidArgument):
        run(sim, work())


def test_readlink_does_not_follow(sim, vfs):
    def work():
        yield from vfs.symlink("/somewhere", "/sl")
        value = yield from vfs.readlink("/sl")
        return value

    assert run(sim, work()) == "/somewhere"


def test_open_o_creat_and_o_trunc(sim, vfs):
    from repro.fs.vfs import O_CREAT, O_TRUNC, O_WRONLY

    def work():
        fd = yield from vfs.open("/f", O_WRONLY | O_CREAT)
        yield from vfs.write(fd, 8192)
        yield from vfs.close(fd)
        fd = yield from vfs.open("/f", O_WRONLY | O_CREAT | O_TRUNC)
        st = yield from vfs.fstat(fd)
        yield from vfs.close(fd)
        return st.size

    assert run(sim, work()) == 0


def test_open_missing_without_creat(sim, vfs):
    def work():
        yield from vfs.open("/ghost")

    with pytest.raises(FileNotFound):
        run(sim, work())


def test_fd_lifecycle(sim, vfs):
    def work():
        fd = yield from vfs.creat("/f")
        yield from vfs.close(fd)
        yield from vfs.write(fd, 10)

    with pytest.raises(InvalidArgument):
        run(sim, work())


def test_read_write_offsets_advance(sim, vfs):
    def work():
        fd = yield from vfs.creat("/f")
        yield from vfs.write(fd, 5000)
        yield from vfs.write(fd, 5000)
        st = yield from vfs.fstat(fd)
        vfs.lseek(fd, 0)
        first = yield from vfs.read(fd, 6000)
        second = yield from vfs.read(fd, 6000)
        return st.size, first, second

    assert run(sim, work()) == (10_000, 6000, 4000)


def test_utime_changes_times(sim, vfs):
    def work():
        fd = yield from vfs.creat("/f")
        yield from vfs.close(fd)
        yield vfs.fs.sim.timeout(10)
        yield from vfs.utime("/f")
        st = yield from vfs.stat("/f")
        return st.mtime

    assert run(sim, work()) >= 10


def test_chmod_chown_access(sim, vfs):
    def work():
        fd = yield from vfs.creat("/f")
        yield from vfs.close(fd)
        yield from vfs.chmod("/f", 0o640)
        yield from vfs.chown("/f", 7, 7)
        st = yield from vfs.stat("/f")
        ok = yield from vfs.access("/f")
        return st.mode, st.uid, ok

    assert run(sim, work()) == (0o640, 7, True)


_name = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["mkdir", "creat", "unlink", "rmdir"]),
                              _name), max_size=30))
def test_namespace_model_equivalence(ops):
    """The simulated FS namespace always matches a plain dict model."""
    sim = Simulator()
    raid = Raid5Volume(sim)
    fs = Ext3Fs(sim, raid, cache_bytes=64 * 1024 * 1024)
    sim.run_process(fs.mount())
    vfs = Vfs(fs)
    model = {}   # name -> "dir" | "file"

    def apply(op, name):
        path = "/" + name
        if op == "mkdir":
            if name in model:
                return
            yield from vfs.mkdir(path)
            model[name] = "dir"
        elif op == "creat":
            if model.get(name) == "dir":
                return
            fd = yield from vfs.creat(path)
            yield from vfs.close(fd)
            model[name] = "file"
        elif op == "unlink":
            if model.get(name) != "file":
                return
            yield from vfs.unlink(path)
            del model[name]
        elif op == "rmdir":
            if model.get(name) != "dir":
                return
            yield from vfs.rmdir(path)
            del model[name]

    def work():
        for op, name in ops:
            yield from apply(op, name)
        names = yield from vfs.readdir("/")
        return names

    names = sim.run_process(work())
    assert sorted(names) == sorted(model)
