"""Failure injection: lossy transport, timeouts, races with removal."""

import random

import pytest

from repro.core import make_stack
from repro.core.counters import MessageCounters
from repro.fs import FileNotFound
from repro.net import (
    DuplexTransport,
    Link,
    RetransmitPolicy,
    RpcPeer,
    RpcTimeoutError,
)


def _lossy_rpc_pair(sim, loss_rate, seed=1, timeout=0.02, retries=8):
    link = Link(sim, rtt=0.002)
    transport = DuplexTransport(
        sim, link, counters=MessageCounters(), reliable=False,
        loss_rate=loss_rate, rng=random.Random(seed),
    )
    client = RpcPeer(
        sim, transport.client, transport.send_from_client,
        retransmit=RetransmitPolicy(timeout=timeout, max_retries=retries),
        name="client",
    )
    server = RpcPeer(sim, transport.server, transport.send_from_server,
                     name="server")

    def handler(message):
        return 32, {"status": "ok", "seq": message.body.get("seq")}
        yield  # pragma: no cover

    server.set_handler(handler)
    return transport, client, server


def test_udp_loss_recovered_by_retransmission(sim):
    """NFS v2's regime: a lossy datagram transport under an RPC timer."""
    transport, client, server = _lossy_rpc_pair(sim, loss_rate=0.3)

    def calls():
        answers = []
        for seq in range(30):
            reply = yield from client.call("PING", seq=seq)
            answers.append(reply.body["seq"])
        return answers

    answers = sim.run_process(calls())
    assert answers == list(range(30))
    assert transport.counters.retransmissions > 0


def test_total_loss_exhausts_retries(sim):
    transport, client, _server = _lossy_rpc_pair(
        sim, loss_rate=1.0, retries=2,
    )

    def call():
        yield from client.call("VOID")

    with pytest.raises(RpcTimeoutError):
        sim.run_process(call())
    # initial send + (max_retries + 1) timer-driven resends, all counted
    assert transport.counters.requests == 4


def test_duplicate_replies_are_dropped(sim):
    """A late original reply after a same-xid retransmission must not
    confuse the pending-call table."""
    transport, client, server = _lossy_rpc_pair(
        sim, loss_rate=0.0, timeout=0.001,
    )

    def slow_handler(message):
        yield server.sim.timeout(0.01)    # slower than many timeouts
        return 8, {"status": "ok"}

    server.set_handler(slow_handler)

    def call():
        reply = yield from client.call("SLOW")
        return reply.body["status"]

    assert sim.run_process(call()) == "ok"
    sim.run()   # drain any stragglers; must not raise


def test_nfs_write_racing_unlink_is_harmless():
    """Async write-back may still be in flight when the file is removed;
    the client must absorb the server's ENOENT quietly."""
    stack = make_stack("nfsv3")
    c = stack.client

    def work():
        fd = yield from c.creat("/victim")
        yield from c.write(fd, 16 * 4096)
        # no close (which would force the flush): delete immediately
        yield from c.unlink("/victim")

    stack.run(work())
    stack.quiesce()   # must not raise


def test_commit_racing_unlink_is_harmless():
    stack = make_stack("nfsv3")
    c = stack.client

    def work():
        fd = yield from c.creat("/victim")
        yield from c.write(fd, 4 * 4096)
        yield from c.close(fd)
        yield from c.unlink("/victim")

    stack.run(work())
    stack.quiesce()


def test_stale_fd_operations_fail_cleanly():
    stack = make_stack("nfsv3")
    c = stack.client

    def work():
        fd = yield from c.creat("/f")
        yield from c.close(fd)
        yield from c.unlink("/f")
        try:
            yield from c.stat("/f")
        except FileNotFound:
            return "gone"
        return "still there"

    assert stack.run(work()) == "gone"


def test_high_rtt_with_retransmission_still_correct():
    """At 200 ms RTT the v3 client's 1.1 s timer may fire under load;
    results must stay correct regardless."""
    stack = make_stack("nfsv3")
    stack.set_rtt(0.200)
    c = stack.client

    def work():
        yield from c.mkdir("/d")
        fd = yield from c.creat("/d/f")
        yield from c.write(fd, 64 * 4096)
        yield from c.close(fd)
        st = yield from c.stat("/d/f")
        return st.size

    assert stack.run(work()) == 64 * 4096
    stack.quiesce()


def test_retransmissions_counted_separately(sim):
    transport, client, server = _lossy_rpc_pair(sim, loss_rate=0.3, seed=7,
                                                retries=14)

    def calls():
        for seq in range(10):
            yield from client.call("PING", seq=seq)

    sim.run_process(calls())
    counters = transport.counters
    assert counters.requests >= 10
    assert counters.retransmissions == counters.requests - 10


# -- the retransmission timer itself ---------------------------------------------


def test_retransmit_schedule_is_exponential():
    policy = RetransmitPolicy(timeout=1.0, backoff=2.0, max_retries=3)
    assert list(policy.schedule()) == [1.0, 2.0, 4.0, 8.0]


def test_retransmit_schedule_fixed_timer():
    policy = RetransmitPolicy(timeout=0.5, backoff=1.0, max_retries=2)
    assert list(policy.schedule()) == [0.5, 0.5, 0.5]


def test_retransmit_schedule_caps_at_max_timeout():
    policy = RetransmitPolicy(
        timeout=1.0, backoff=3.0, max_retries=4, max_timeout=5.0,
    )
    assert list(policy.schedule()) == [1.0, 3.0, 5.0, 5.0, 5.0]


def test_retransmit_policy_validates_parameters():
    with pytest.raises(ValueError):
        RetransmitPolicy(timeout=0.0)
    with pytest.raises(ValueError):
        RetransmitPolicy(timeout=1.0, backoff=0.5)
    with pytest.raises(ValueError):
        RetransmitPolicy(timeout=1.0, max_retries=-1)
    with pytest.raises(ValueError):
        RetransmitPolicy(timeout=2.0, max_timeout=1.0)


def test_transport_rejects_out_of_range_loss_rate(sim):
    link = Link(sim, rtt=0.002)
    with pytest.raises(ValueError):
        DuplexTransport(sim, link, counters=MessageCounters(), loss_rate=1.5)
    with pytest.raises(ValueError):
        DuplexTransport(sim, link, counters=MessageCounters(), loss_rate=-0.1)


# -- duplicate-request cache under injected message faults -----------------------


def _injected_rpc_pair(sim, events, seed=3):
    from repro.faults import FaultPlan
    from repro.faults.injector import FaultInjector

    transport, client, server = _lossy_rpc_pair(sim, loss_rate=0.0)
    executions = []

    def handler(message):
        executions.append(message.body.get("seq"))
        return 16, {"status": "ok", "seq": message.body.get("seq")}
        yield  # pragma: no cover

    server.set_handler(handler)
    plan = FaultPlan(events=tuple(events), seed=seed)
    injector = FaultInjector(sim, plan, transport=transport)
    injector.start()
    return transport, client, server, injector, executions


def test_duplicate_faults_are_absorbed_by_duplicate_request_cache(sim):
    from repro.faults import DuplicateWindow

    transport, client, server, injector, executions = _injected_rpc_pair(
        sim, [DuplicateWindow(start=0.0, duration=10.0, probability=1.0)],
    )

    def calls():
        for seq in range(10):
            reply = yield from client.call("PING", seq=seq)
            assert reply.body["seq"] == seq

    sim.run_process(calls())
    sim.run()                       # let the duplicate copies arrive
    assert injector.counts.get("msg.duplicate", 0) > 0
    # Every request executed exactly once, in order; the duplicates were
    # answered from the cache (or dropped while the original executed).
    assert executions == list(range(10))
    assert server.retransmissions_seen > 0


def test_reordered_messages_still_match_by_xid(sim):
    from repro.faults import ReorderWindow

    transport, client, server, injector, executions = _injected_rpc_pair(
        sim,
        [ReorderWindow(start=0.0, duration=10.0, probability=0.5,
                       max_extra_delay=0.004)],
    )

    def calls():
        answers = []
        for seq in range(20):
            reply = yield from client.call("PING", seq=seq)
            answers.append(reply.body["seq"])
        return answers

    answers = sim.run_process(calls())
    sim.run()
    assert answers == list(range(20))
    assert injector.counts.get("msg.reorder", 0) > 0
    # Any timer-driven resend of a delayed request must have been served
    # from the duplicate-request cache, never re-executed.
    assert executions == list(range(20))
