"""pNFS-style export striping: layout determinism and the striped client."""

import pytest

from repro.core.multiclient import SharedNfsTestbed
from repro.core.runner import Cell, ExperimentRunner
from repro.nfs.pnfs import StripeLayout, StripedNfsClient


# -- the layout function -------------------------------------------------------


def test_layout_rejects_zero_servers():
    with pytest.raises(ValueError):
        StripeLayout(0)


def test_layout_is_deterministic_across_instances():
    paths = ["/a/b", "/a/c", "/pm/f%03d" % 7, "shared/f00", "/x" * 40]
    first = [StripeLayout(5).server_for(path) for path in paths]
    second = [StripeLayout(5).server_for(path) for path in paths]
    assert first == second
    assert all(0 <= server < 5 for server in first)


def test_layout_spreads_files_over_servers():
    layout = StripeLayout(4)
    homes = {layout.server_for("/d/f%d" % index) for index in range(64)}
    assert homes == {0, 1, 2, 3}


def test_layout_is_stable_across_worker_processes():
    """The same farm cell must produce identical results whether its
    layout hashing runs in-process or in ``--jobs`` worker processes —
    the crc32 layout must not depend on PYTHONHASHSEED."""
    cell = Cell("farm", "farm_point", {
        "protocol": "nfs", "nclients": 6, "nservers": 3, "connections": 1,
        "sharing": 0.25, "requests": 4, "nshards": 0})
    serial = ExperimentRunner(jobs=None, use_cache=False).run([cell])
    forked = ExperimentRunner(jobs=2, use_cache=False).run([cell])
    assert serial == forked


# -- the striped client --------------------------------------------------------


def test_striped_client_validates_wiring():
    with pytest.raises(ValueError):
        StripedNfsClient(None, [])
    bed = SharedNfsTestbed(nclients=2, nservers=2, striped=True)
    with pytest.raises(ValueError):
        StripedNfsClient(bed.sim, bed.clients[0].clients,
                         layout=StripeLayout(3))
    bed.close()


def _striped_workload(client, tag, files=8):
    def run():
        yield from client.mkdir("/%s" % tag)
        for index in range(files):
            path = "/%s/f%d" % (tag, index)
            fd = yield from client.creat(path)
            yield from client.write(fd, 16_384)
            yield from client.fsync(fd)
            yield from client.close(fd)
        names = yield from client.readdir("/%s" % tag)
        return names
    return run


def test_striped_bed_routes_files_to_layout_homes():
    bed = SharedNfsTestbed(nclients=2, nservers=3, striped=True)
    client = bed.clients[0]
    bed.add_workload(0, _striped_workload(client, "d"))
    bed.run_phase()
    bed.quiesce()
    # readdir unions the per-server views back into one namespace.
    names = bed.run(client.readdir("/d"))
    assert names == sorted("f%d" % index for index in range(8))
    # Every file lives only on its layout home.
    layout = bed.layout
    for index in range(8):
        path = "/d/f%d" % index
        assert client._layouts[path] == layout.server_for(path)
    # mkdir fanned out: the directory skeleton exists on every server.
    for inner in client.clients:
        assert bed.run(inner.readdir("/")) == ["d"]
    # First touches cost LAYOUTGET grants, answered by the MDS.
    assert client.layout_gets == 8
    assert client.layouts_cached == 8
    assert bed.layouts_granted == 8
    bed.close()


def test_striped_messages_split_across_servers():
    bed = SharedNfsTestbed(nclients=2, nservers=3, striped=True)
    for index, client in enumerate(bed.clients):
        bed.add_workload(index, _striped_workload(client, "c%d" % index))
    bed.run_phase()
    bed.quiesce()
    per_server = bed.messages_by_server
    assert len(per_server) == 3
    assert all(count > 0 for count in per_server)
    assert sum(per_server) == bed.total_messages
    bed.close()


def test_striped_flat_and_sharded_agree():
    def outcome(shards):
        bed = SharedNfsTestbed(nclients=3, nservers=2, striped=True,
                               shards=shards, executor="thread")
        for index, client in enumerate(bed.clients):
            bed.add_workload(index, _striped_workload(client, "c%d" % index,
                                                      files=4))
        bed.run_phase()
        bed.quiesce()
        result = (bed.messages_by_server, bed.total_messages,
                  bed.layouts_granted)
        bed.close()
        return result

    assert outcome(1) == outcome(2)


def test_striped_rename_stays_on_home_server():
    bed = SharedNfsTestbed(nclients=2, nservers=4, striped=True)
    client = bed.clients[0]
    layout = bed.layout

    # Find two names with the same home and one with a different home.
    home0 = layout.server_for("/r/a")
    same = next("/r/s%d" % index for index in range(64)
                if layout.server_for("/r/s%d" % index) == home0)
    other = next("/r/o%d" % index for index in range(64)
                 if layout.server_for("/r/o%d" % index) != home0)

    def work():
        yield from client.mkdir("/r")
        fd = yield from client.creat("/r/a")
        yield from client.close(fd)
        yield from client.rename("/r/a", same)
        return True

    assert bed.run(work())

    def crossing():
        yield from client.rename(same, other)

    with pytest.raises(ValueError):
        bed.run(crossing())
    bed.close()


def test_unstriped_bed_is_untouched():
    """striped=False keeps the classic one-mount wiring: no layout, no
    LAYOUTGET traffic, plain NfsClient front ends."""
    bed = SharedNfsTestbed(nclients=2, nservers=2)
    assert bed.layout is None
    assert all(state.layout is None for state in bed.states)
    a, _b = bed.clients

    def work():
        yield from a.mkdir("/p")
        fd = yield from a.creat("/p/f")
        yield from a.close(fd)
        return True

    assert bed.run(work())
    assert bed.layouts_granted == 0
    bed.close()
