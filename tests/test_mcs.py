"""MC/S: per-connection PDU scheduling and in-order command completion."""

import dataclasses

import pytest

from repro.core import make_stack
from repro.core.params import TestbedParams
from repro.faults.plan import resolve_plan
from repro.iscsi.mcs import MCS_POLICIES, McsSession
from repro.sim import Simulator


class _StubRpc:
    """A fake connection: replies after a fixed per-connection delay."""

    def __init__(self, sim, delay):
        self.sim = sim
        self.delay = delay
        self.calls = 0

    def call(self, op, payload_bytes=0, header_bytes=48, **body):
        self.calls += 1
        yield self.sim.timeout(self.delay)
        return ("reply", op, body.get("cmdsn"))


class _FlakyRpc:
    """A connection that loses its first command, then recovers —
    the shape of a TCP connection that died and was reinstated."""

    def __init__(self, sim):
        self.sim = sim
        self.calls = 0

    def call(self, op, payload_bytes=0, header_bytes=48, **body):
        self.calls += 1
        if self.calls == 1:
            yield self.sim.event()   # lost forever: never triggered
        yield self.sim.timeout(0.001)
        return ("reply", op, body.get("cmdsn"))


# -- construction --------------------------------------------------------------


def test_session_validates_inputs():
    sim = Simulator()
    with pytest.raises(ValueError):
        McsSession(sim, [])
    with pytest.raises(ValueError):
        McsSession(sim, [_StubRpc(sim, 0.001)], policy="weighted")
    assert MCS_POLICIES == ("rr", "qdepth")


def test_stack_rejects_zero_connections():
    params = TestbedParams()
    params = dataclasses.replace(
        params, iscsi=dataclasses.replace(params.iscsi, connections=0))
    with pytest.raises(ValueError):
        make_stack("iscsi", params=params)


# -- scheduling ----------------------------------------------------------------


def test_rr_policy_round_robins_by_cmdsn():
    sim = Simulator()
    rpcs = [_StubRpc(sim, 0.001) for _ in range(3)]
    session = McsSession(sim, rpcs, policy="rr")

    def driver():
        for _ in range(9):
            yield from session.call("READ")

    sim.run_process(driver(), name="driver")
    assert session.pdus_by_connection == [3, 3, 3]
    assert [rpc.calls for rpc in rpcs] == [3, 3, 3]


def test_qdepth_policy_picks_least_loaded_connection():
    sim = Simulator()
    # Connection 0 is slow: queue-depth scheduling must steer follow-up
    # commands to the idle fast connection instead of blind round-robin.
    rpcs = [_StubRpc(sim, 0.030), _StubRpc(sim, 0.001)]
    session = McsSession(sim, rpcs, policy="qdepth")

    def one(op):
        yield from session.call(op)

    def feeder():
        # Staggered arrivals: each command sees the live queue depths.
        for index in range(6):
            sim.spawn(one("CMD%d" % index), name="cmd%d" % index)
            yield sim.timeout(0.002)

    sim.run_process(feeder(), name="feeder")
    sim.run()
    # The first command ties to connection 0 (lowest index) and sticks
    # there; every later arrival finds connection 1 less loaded.
    assert session.pdus_by_connection == [1, 5]


# -- in-order completion -------------------------------------------------------


def test_out_of_order_responses_complete_in_cmdsn_order():
    sim = Simulator()
    # cmd 0 -> slow connection, cmd 1 -> fast one: the fast reply beats
    # the slow one and must be *held* until cmd 0 retires.
    rpcs = [_StubRpc(sim, 0.010), _StubRpc(sim, 0.001)]
    session = McsSession(sim, rpcs, policy="rr")
    order = []

    def one(tag):
        yield from session.call(tag)
        order.append((tag, sim.now))

    sim.spawn(one("first"), name="first")
    sim.spawn(one("second"), name="second")
    sim.run()
    assert session.arrival_order == [1, 0]       # responses out of order
    assert session.release_order == [0, 1]       # completions in order
    assert [tag for tag, _ in order] == ["first", "second"]
    assert order[0][1] == order[1][1]            # both released together
    assert session.completions_held == 1
    assert session.max_held == 1
    assert session.held_now == 0


def test_reset_releases_parked_completions_and_jumps_cursor():
    sim = Simulator()
    flaky = _FlakyRpc(sim)
    fast = _StubRpc(sim, 0.001)
    session = McsSession(sim, [flaky, fast], policy="rr")
    done = []

    def one(tag):
        yield from session.call(tag)
        done.append(tag)

    def supervisor():
        yield sim.timeout(0.050)
        # cmd 0 is abandoned on the dark wire, cmd 1 is parked behind
        # it: session reinstatement must release the parked completion.
        session.reset()
        yield sim.timeout(0.010)
        yield from session.call("post-reset")
        done.append("post-reset")

    sim.spawn(one("lost"), name="lost")
    sim.spawn(one("parked"), name="parked")
    sim.run_process(supervisor(), name="supervisor")
    assert done == ["parked", "post-reset"]
    assert session.session_resets == 1
    # The cursor jumped past the abandoned CmdSN: the post-reset command
    # was not held hostage.
    assert session.held_now == 0


# -- the wired stack under fault plans -----------------------------------------


def _mcs_params(connections, policy="rr"):
    params = TestbedParams()
    return dataclasses.replace(
        params, iscsi=dataclasses.replace(
            params.iscsi, connections=connections, mcs_policy=policy))


def _drive_file_work(stack, nbytes=256 * 1024):
    def work():
        fd = yield from stack.client.creat("/mcs")
        yield from stack.client.pwrite(fd, nbytes, 0)
        yield from stack.client.fsync(fd)
        yield from stack.client.pread(fd, nbytes, 0)
        yield from stack.client.close(fd)
        return True

    assert stack.run(work())
    stack.quiesce()


@pytest.mark.parametrize("plan_name", ["reorder10", "loss10"])
def test_mcs_stays_in_order_under_faults(plan_name):
    stack = make_stack("iscsi", params=_mcs_params(4),
                       fault_plan=resolve_plan(plan_name))
    _drive_file_work(stack)
    session = stack.session
    assert session is not None and session.nconnections == 4
    assert session.commands_issued == session.commands_completed
    assert sum(session.pdus_by_connection) == session.commands_issued
    # The protocol guarantee: whatever the wire did, completions left
    # the session in strict CmdSN order.
    assert session.release_order == sorted(session.release_order)
    assert session.held_now == 0
    # Round-robin really used more than one connection.
    assert sum(1 for count in session.pdus_by_connection if count) > 1


def test_mcs_single_connection_path_is_bypassed():
    stack = make_stack("iscsi")
    assert stack.session is None
    assert stack.mcs_transports == []
    assert len(stack.target.connections) == 1


def test_mcs_connections_share_one_target():
    stack = make_stack("iscsi", params=_mcs_params(3, policy="qdepth"))
    assert len(stack.target.connections) == 3
    assert len(stack.mcs_transports) == 2
    _drive_file_work(stack)
    session = stack.session
    assert session.commands_issued == session.commands_completed
    assert session.release_order == sorted(session.release_order)
    # All connections dispatch into the one target (shared volume).
    assert stack.target.commands_served >= session.commands_issued
