"""Unit tests for workload-generator internals and protocol plumbing."""

import pytest

from repro.fs.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    FsError,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
)
from repro.nfs.protocol import NfsStatus
from repro.workloads import PostMark, SeqRandWorkload, TreeSpec
from repro.workloads.microbench import SYSCALL_OPS, SyscallMicrobench, _FRESH_NAME_OPS


# -------------------------------------------------------------- NfsStatus

@pytest.mark.parametrize("error,status", [
    (FileNotFound("x"), NfsStatus.NOENT),
    (FileExists("x"), NfsStatus.EXIST),
    (NotADirectory("x"), NfsStatus.NOTDIR),
    (IsADirectory("x"), NfsStatus.ISDIR),
    (DirectoryNotEmpty("x"), NfsStatus.NOTEMPTY),
    (PermissionDenied("x"), NfsStatus.ACCES),
])
def test_status_roundtrip(error, status):
    assert NfsStatus.from_exception(error) == status
    back = NfsStatus.to_exception(status)
    assert isinstance(back, type(error))


def test_unknown_error_is_reraised():
    with pytest.raises(RuntimeError):
        NfsStatus.from_exception(RuntimeError("not an fs error"))


def test_unknown_status_maps_to_fserror():
    assert isinstance(NfsStatus.to_exception("bizarre"), FsError)


# -------------------------------------------------------------- microbench

def test_every_syscall_has_an_op_implementation():
    bench = SyscallMicrobench("iscsi")
    stack = bench._fresh_stack()
    for op in SYSCALL_OPS:
        stack.run(bench._op(stack.client, op, 0), name=op)
    stack.quiesce()


def test_unknown_op_rejected():
    bench = SyscallMicrobench("iscsi")
    stack = bench._fresh_stack()
    with pytest.raises(ValueError):
        stack.run(bench._op(stack.client, "frobnicate", 0))


def test_fresh_name_ops_are_a_subset():
    assert _FRESH_NAME_OPS <= set(SYSCALL_OPS)


def test_base_path_construction():
    assert SyscallMicrobench("iscsi", 0).base == ""
    assert SyscallMicrobench("iscsi", 2).base == "/dir1/dir2"


def test_cold_measure_is_deterministic():
    a = SyscallMicrobench("nfsv3", 1).measure_cold("stat")
    b = SyscallMicrobench("nfsv3", 1).measure_cold("stat")
    assert a == b


# -------------------------------------------------------------- seqrand

def test_seqrand_chunk_math():
    workload = SeqRandWorkload("iscsi", file_mb=2, chunk=4096)
    assert workload.nchunks == 512
    assert workload.file_bytes == 2 * 1024 * 1024


def test_seqrand_random_permutation_seeded():
    a = SeqRandWorkload("iscsi", file_mb=1, seed=3)
    b = SeqRandWorkload("iscsi", file_mb=1, seed=3)
    order_a = list(range(a.nchunks))
    a.rng.shuffle(order_a)
    order_b = list(range(b.nchunks))
    b.rng.shuffle(order_b)
    assert order_a == order_b


def test_seqrand_result_fields():
    result = SeqRandWorkload("iscsi", file_mb=1).run_write(True)
    assert result.completion_time >= 0
    assert result.messages > 0
    assert result.bytes > 1024 * 1024
    assert "msgs" in str(result)


# -------------------------------------------------------------- postmark

def test_postmark_deterministic_across_runs():
    a = PostMark("iscsi", file_count=100, transactions=400).run()
    b = PostMark("iscsi", file_count=100, transactions=400).run()
    assert (a.messages, a.completion_time) == (b.messages, b.completion_time)


def test_postmark_seed_changes_results():
    a = PostMark("iscsi", file_count=100, transactions=400, seed=1).run()
    b = PostMark("iscsi", file_count=100, transactions=400, seed=2).run()
    assert a.messages != b.messages or a.completion_time != b.completion_time


def test_postmark_result_metadata():
    result = PostMark("iscsi", file_count=60, transactions=150).run()
    assert result.files == 60
    assert result.transactions == 150
    assert 0 <= result.server_cpu <= 1
    assert 0 <= result.client_cpu <= 1


# -------------------------------------------------------------- kernel tree

def test_tree_spec_counts():
    spec = TreeSpec(top_dirs=4, subdirs_per_dir=3, files_per_dir=10)
    assert spec.total_dirs == 16
    assert spec.total_files == 160


def test_tree_paths_unique():
    from repro.workloads.kernel_tree import KernelTreeOps

    ops = KernelTreeOps("iscsi", TreeSpec(top_dirs=3))
    dirs, files = ops._paths()
    assert len(set(dirs)) == len(dirs)
    names = [path for path, _ in files]
    assert len(set(names)) == len(names)
    assert all(size >= 256 for _, size in files)
