"""Unit tests for the iSCSI initiator/target pair."""

import pytest

from repro.core import make_stack
from repro.core.params import IscsiParams
from repro.iscsi import IscsiInitiator, IscsiTarget, scsi
from repro.net import DuplexTransport, Link, RpcPeer
from repro.storage import Raid5Volume


def _pair(sim, **iscsi_kwargs):
    link = Link(sim, rtt=0.001)
    transport = DuplexTransport(sim, link)
    raid = Raid5Volume(sim)
    target_rpc = RpcPeer(sim, transport.server, transport.send_from_server)
    target = IscsiTarget(sim, raid, target_rpc)
    init_rpc = RpcPeer(sim, transport.client, transport.send_from_client)
    initiator = IscsiInitiator(
        sim, init_rpc, nblocks=raid.nblocks,
        params=IscsiParams(**iscsi_kwargs),
    )
    return transport, raid, target, initiator


def test_read_reaches_backing_raid(sim):
    transport, raid, target, initiator = _pair(sim)

    def work():
        yield from initiator.read(0, 4)

    sim.run_process(work())
    assert raid.stats.read_ops == 1
    assert raid.stats.blocks_read == 4
    assert target.commands_served == 1


def test_one_command_per_request(sim):
    transport, raid, target, initiator = _pair(sim)

    def work():
        yield from initiator.read(0, 1)
        yield from initiator.write(100, 1)

    sim.run_process(work())
    assert transport.counters.messages == 2      # one command each
    assert transport.counters.replies == 2


def test_large_write_split_at_coalescing_cap(sim):
    transport, raid, target, initiator = _pair(sim, max_coalesced_write=64 * 1024)

    def work():
        yield from initiator.write(0, 64)        # 256 KB

    sim.run_process(work())
    assert transport.counters.messages == 4      # 64 KB per command


def test_read_split_at_cap(sim):
    transport, raid, target, initiator = _pair(sim, max_coalesced_read=32 * 1024)

    def work():
        yield from initiator.read(0, 32)         # 128 KB

    sim.run_process(work())
    assert transport.counters.messages == 4


def test_bytes_flow_matches_direction(sim):
    transport, raid, target, initiator = _pair(sim)

    def work():
        yield from initiator.read(0, 8)          # 32 KB data-in
        yield from initiator.write(0, 8)         # 32 KB data-out

    sim.run_process(work())
    counters = transport.counters
    assert counters.bytes_received > 32 * 1024   # read data flowed back
    assert counters.bytes_sent > 32 * 1024       # write data flowed out


def test_out_of_range_rejected(sim):
    transport, raid, target, initiator = _pair(sim)

    def work():
        yield from initiator.read(initiator.nblocks, 1)

    with pytest.raises(ValueError):
        sim.run_process(work())


def test_synchronize_cache_command(sim):
    transport, raid, target, initiator = _pair(sim)

    def work():
        yield from initiator.synchronize_cache()

    sim.run_process(work())
    assert transport.counters.by_op.get(scsi.SYNCHRONIZE_CACHE) == 1


def test_stack_wiring_end_to_end():
    stack = make_stack("iscsi")
    c = stack.client
    snap = stack.snapshot()

    def work():
        fd = yield from c.creat("/f")
        yield from c.write(fd, 128 * 1024)
        yield from c.close(fd)

    stack.run(work())
    stack.quiesce()
    delta = stack.delta(snap)
    # 128 KB of data + meta-data, coalesced into few commands
    assert 0 < delta.messages < 20
    assert delta.total_bytes > 128 * 1024
