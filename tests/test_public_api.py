"""Tests on the public API surface and documentation contract."""

import inspect

import pytest

import repro
import repro.cache
import repro.core
import repro.fs
import repro.iscsi
import repro.net
import repro.nfs
import repro.obs
import repro.sim
import repro.storage
import repro.traces
import repro.workloads


ALL_PACKAGES = [
    repro, repro.sim, repro.net, repro.storage, repro.cache, repro.fs,
    repro.nfs, repro.iscsi, repro.core, repro.workloads, repro.traces,
    repro.obs,
]


def test_version_is_exposed():
    assert repro.__version__


@pytest.mark.parametrize("package", ALL_PACKAGES,
                         ids=lambda p: p.__name__)
def test_package_has_docstring(package):
    assert package.__doc__ and package.__doc__.strip()


@pytest.mark.parametrize("package", ALL_PACKAGES,
                         ids=lambda p: p.__name__)
def test_all_exports_resolve(package):
    for name in getattr(package, "__all__", []):
        assert getattr(package, name) is not None, name


def test_public_classes_are_documented():
    """Every class and public function reachable from __all__ carries a
    docstring — the deliverable's doc-comment requirement, enforced."""
    undocumented = []
    for package in ALL_PACKAGES:
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append("%s.%s" % (package.__name__, name))
                if inspect.isclass(obj):
                    for method_name, method in vars(obj).items():
                        if method_name.startswith("_"):
                            continue
                        if inspect.isfunction(method) and not (
                            method.__doc__ and method.__doc__.strip()
                        ):
                            undocumented.append(
                                "%s.%s.%s" % (package.__name__, name,
                                              method_name))
    assert not undocumented, undocumented


def test_cli_enumerates_every_subcommand():
    """``repro list`` must advertise the full CLI surface: every
    registered subcommand, introspected from the parser itself so the
    list can never drift from reality."""
    from repro import cli

    commands = cli.iter_subcommands()
    # The parser is the source of truth; spot-check the fixed core...
    assert {"quick", "table2", "trace", "bench", "list"} <= set(commands)
    # ...and the printed output must contain every registered command.
    import io
    from contextlib import redirect_stdout

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert cli.main(["list"]) == 0
    output = buffer.getvalue()
    for command in commands:
        assert command in output, "repro list omits %r" % command


def test_cli_subcommand_introspection_matches_parser():
    from repro import cli

    parser = cli.build_parser()
    import argparse

    registered = set()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            registered.update(action.choices)
    assert set(cli.iter_subcommands()) == registered


def test_top_level_reexports():
    from repro import (
        STACK_KINDS, Simulator, StorageStack, TestbedParams, make_stack,
    )

    assert "iscsi" in STACK_KINDS
    assert callable(make_stack)
    assert Simulator and StorageStack and TestbedParams


def test_stack_kinds_match_factory():
    from repro import STACK_KINDS, make_stack

    for kind in STACK_KINDS:
        assert make_stack(kind, mounted=False).kind == kind
