"""Tests for the sharded event calendar (repro.sim.shard).

Covers the conservative-window driver's contracts: the lookahead
safety rules (zero-lookahead construction, below-lookahead posts, the
exactly-on-horizon boundary), the deterministic ``(when, src_shard,
src_seq)`` tie-break across every executor, partition invariance of
the storm microbenchmark, the cross-phase watermark barrier, and the
S407 causality sanitizer.
"""
# simlint: disable-file=S502,D104 -- tests pick exact literal delays to probe the lookahead contract and assert exact sim times

import pytest

from repro.sim import SimulationError, Simulator, Store
from repro.sim.shard import (
    EXECUTORS,
    Shard,
    ShardedSimulator,
    ShardMessage,
    default_parallel_executor,
)


# -- construction and safety rules ---------------------------------------------


def test_zero_lookahead_rejected_at_construction():
    """A zero-latency cross-shard link must raise, not deadlock."""
    with pytest.raises(ValueError, match="lookahead must be positive"):
        ShardedSimulator(2, 0.0)


def test_negative_lookahead_rejected():
    with pytest.raises(ValueError, match="lookahead must be positive"):
        ShardedSimulator(2, -0.5)


def test_nshards_below_one_rejected():
    with pytest.raises(ValueError, match="nshards"):
        ShardedSimulator(0, 1.0)


def test_unknown_executor_rejected():
    with pytest.raises(ValueError, match="unknown executor"):
        ShardedSimulator(2, 1.0, executor="gpu")


def test_default_parallel_executor_is_known():
    assert default_parallel_executor() in EXECUTORS


def test_cross_shard_post_below_lookahead_rejected():
    """delay < lookahead would break conservative safety: refuse loudly."""
    sharded = ShardedSimulator(2, 1.0)
    sharded.shard(1).bind("inbox", lambda _payload: None)
    with pytest.raises(SimulationError, match="below the lookahead"):
        sharded.shard(0).post(1, "inbox", "x", 0.25)


def test_colocated_post_may_use_any_delay():
    """dst == self is an ordinary calendar entry, not a shard crossing."""
    sharded = ShardedSimulator(2, 1.0)
    shard = sharded.shard(0)
    seen = []
    shard.bind("inbox", seen.append)
    shard.post(0, "inbox", "now-ish", 0.0)
    shard.sim.run()
    assert seen == ["now-ish"]
    assert shard.outbox == []


def test_post_to_out_of_range_shard_rejected():
    sharded = ShardedSimulator(2, 1.0)
    with pytest.raises(ValueError, match="out of range"):
        sharded.shard(0).post(5, "inbox", "x", 2.0)


def test_duplicate_port_bind_rejected():
    sharded = ShardedSimulator(1, 1.0)
    sharded.shard(0).bind("inbox", lambda _p: None)
    with pytest.raises(ValueError, match="already bound"):
        sharded.shard(0).bind("inbox", lambda _p: None)


# -- the window boundary -------------------------------------------------------


def test_run_window_is_strict_below_horizon():
    """An event exactly on the horizon belongs to the next window."""
    sim = Simulator()
    fired = []
    sim.schedule_at(0.5, fired.append, "below")
    sim.schedule_at(1.0, fired.append, "on-horizon")
    assert sim.run_window(1.0) == 1
    assert fired == ["below"]
    # The clock stays at the last processed event, never the horizon.
    assert sim.now == 0.5
    assert sim.peek() == 1.0
    assert sim.run_window(1.5) == 1
    assert fired == ["below", "on-horizon"]


def test_message_exactly_on_horizon_delivered_next_window():
    """delay == lookahead arrives exactly on the first horizon; the
    conservative loop must park it for the next window, not lose it."""
    sharded = ShardedSimulator(2, 1.0, san=True)
    arrivals = []
    sharded.shard(1).bind("inbox", lambda p: arrivals.append(
        (sharded.shard(1).sim.now, p)))

    def sender():
        sharded.shard(0).post(1, "inbox", "edge", 1.0)
        yield sharded.shard(0).sim.timeout(0.0)

    def receiver():
        yield sharded.shard(1).sim.timeout(2.0)

    sharded.shard(0).add_phase("go", sender)
    sharded.shard(1).add_phase("go", receiver)
    sharded.run_phase("go")
    assert arrivals == [(1.0, "edge")]
    assert sharded.findings == []


# -- the deterministic tie-break (satellite: locked-in ordering) ----------------


def _equal_when_arrival_order(executor, jobs):
    """Three shards each post two messages all arriving at t=5.0; the
    destination logs delivery order.  The contract: injection sorts by
    ``(when, src_shard, src_seq)`` no matter which executor ran the
    windows or how many workers it used."""
    sharded = ShardedSimulator(4, 1.0, executor=executor, jobs=jobs)
    dest = sharded.shard(0)
    arrivals = []
    dest.bind("inbox", arrivals.append)
    dest.set_collector(lambda: list(arrivals))

    def make_sender(shard):
        def sender():
            shard.post(0, "inbox", (shard.id, "a"), 5.0)
            shard.post(0, "inbox", (shard.id, "b"), 5.0)
            yield shard.sim.timeout(0.0)
        return sender

    def receiver():
        yield dest.sim.timeout(10.0)

    for index in (1, 2, 3):
        shard = sharded.shard(index)
        shard.add_phase("go", make_sender(shard))
    dest.add_phase("go", receiver)
    sharded.run_phase("go")
    collected = sharded.collect()
    sharded.close()
    return collected[0]


EXPECTED_TIEBREAK = [(1, "a"), (1, "b"), (2, "a"), (2, "b"),
                     (3, "a"), (3, "b")]


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("jobs", [None, 1, 2])
def test_equal_when_tiebreak_stable_across_executors(executor, jobs):
    order = _equal_when_arrival_order(executor, jobs)
    assert order == EXPECTED_TIEBREAK


# -- partition invariance (the byte-identity contract) --------------------------


def _storm(**kwargs):
    from repro.sim.perf import run_shard_storm

    result = run_shard_storm(groups=4, clients_per_group=4, requests=5,
                             **kwargs)
    return (result["completed"], result["records"], result["makespan"])


def test_storm_partition_invariant_across_shards_and_executors():
    """completed/records/makespan are identical for every partitioning;
    the flat (nshards=0) kernel is the reference."""
    reference = _storm(nshards=0)
    assert reference[0] == 4 * 4 * 5
    for nshards in (1, 2, 4):
        for executor in ("sequential", "thread"):
            assert _storm(nshards=nshards, executor=executor) == reference
    # One fork point (the expensive executor) and one sanitized point.
    assert _storm(nshards=2, executor="fork") == reference
    assert _storm(nshards=2, executor="sequential", san=True) == reference


def test_storm_with_more_shards_than_groups():
    """Degenerate partitioning: empty shards idle through the run but
    the barrier still aligns them and the metrics are unchanged."""
    reference = _storm(nshards=0)
    assert _storm(nshards=8, executor="sequential") == reference


def test_storm_report_fields():
    from repro.sim.perf import run_shard_storm

    result = run_shard_storm(groups=4, clients_per_group=4, requests=5,
                             nshards=2, executor="sequential")
    report = result["report"]
    assert report["shards"] == 2
    assert report["executor"] == "sequential"
    assert report["rounds"] > 0
    assert sum(report["records_by_shard"]) == report["total_records"]
    assert 0.0 < report["cross_fraction"] < 1.0
    assert 1.0 < report["ideal_speedup"] <= 2.0


def test_flat_reference_has_no_report():
    from repro.sim.perf import run_shard_storm

    assert run_shard_storm(groups=2, clients_per_group=2, requests=2,
                           nshards=0)["report"] is None


# -- phases and the watermark barrier ------------------------------------------


def test_phase_barrier_aligns_idle_shard_clocks():
    """A shard that idles through a phase still ends it at the
    watermark, so the next phase may post to it without time-travel."""
    sharded = ShardedSimulator(2, 0.5, executor="sequential")
    s0, s1 = sharded.shards
    log = []
    s0.bind("inbox", log.append)

    def busy():
        yield s0.sim.timeout(3.0)

    s0.add_phase("one", busy)
    sharded.run_phase("one")
    assert s0.sim.now == s1.sim.now
    barrier = s0.sim.now
    assert barrier >= 3.0

    def sender():
        s1.post(0, "inbox", "hello", 0.5)
        yield s1.sim.timeout(1.0)

    def receiver():
        yield s0.sim.timeout(1.0)

    s0.add_phase("two", receiver)
    s1.add_phase("two", sender)
    sharded.run_phase("two")
    assert log == ["hello"]
    assert s0.sim.now == s1.sim.now
    assert s0.sim.now >= barrier


def test_phase_deadlock_detected():
    """Every calendar empty + unfinished phase process = deadlock, and
    the driver says so instead of spinning."""
    sharded = ShardedSimulator(2, 1.0, executor="sequential")
    shard = sharded.shard(0)
    inbox = Store(shard.sim, name="never-fed")

    def starved():
        yield from inbox.get()

    shard.add_phase("go", starved)
    with pytest.raises(SimulationError, match="deadlocked"):
        sharded.run_phase("go")


def test_phase_process_error_propagates():
    sharded = ShardedSimulator(1, 1.0, executor="sequential")
    shard = sharded.shard(0)

    def exploder():
        yield shard.sim.timeout(0.5)
        raise RuntimeError("boom")

    shard.add_phase("go", exploder)
    with pytest.raises(RuntimeError, match="boom"):
        sharded.run_phase("go")


def test_context_manager_closes_executor():
    with ShardedSimulator(2, 1.0, executor="thread") as sharded:
        shard = sharded.shard(0)

        def quick():
            yield shard.sim.timeout(0.1)

        shard.add_phase("go", quick)
        sharded.run_phase("go")
    assert sharded._executor is None


# -- the S407 causality sanitizer ----------------------------------------------


def test_s407_flags_below_lookahead_and_window_floor():
    sharded = ShardedSimulator(2, 1.0, san=True)
    message = ShardMessage(when=0.5, sent=0.0, src_shard=0, src_seq=1,
                           dst_shard=1, port="inbox", payload=None)
    sharded._check_causality(message, t_min=0.6)
    assert [finding.code for finding in sharded.findings] == ["S407", "S407"]
    texts = [finding.message for finding in sharded.findings]
    assert "below the lookahead" in texts[0]
    assert "conservative safety violated" in texts[1]


def test_s407_clean_on_legal_message():
    sharded = ShardedSimulator(2, 1.0, san=True)
    message = ShardMessage(when=2.0, sent=1.0, src_shard=0, src_seq=1,
                           dst_shard=1, port="inbox", payload=None)
    sharded._check_causality(message, t_min=1.0)
    assert sharded.findings == []


def test_sanitized_storm_is_clean_and_identical():
    from repro.sim.perf import run_shard_storm

    plain = run_shard_storm(groups=2, clients_per_group=4, requests=5,
                            nshards=2, executor="sequential")
    checked = run_shard_storm(groups=2, clients_per_group=4, requests=5,
                              nshards=2, executor="sequential", san=True)
    for key in ("completed", "records", "makespan"):
        assert checked[key] == plain[key]


# -- Shard internals used by the executors -------------------------------------


def test_shard_message_sort_key_orders_by_when_then_src():
    messages = [
        ShardMessage(2.0, 1.0, 0, 1, 1, "p", None),
        ShardMessage(1.0, 0.0, 1, 2, 0, "p", None),
        ShardMessage(1.0, 0.0, 0, 9, 1, "p", None),
        ShardMessage(1.0, 0.0, 1, 1, 0, "p", None),
    ]
    from repro.sim.shard import _message_key

    ordered = sorted(messages, key=_message_key)
    assert [(m.when, m.src_shard, m.src_seq) for m in ordered] == [
        (1.0, 0, 9), (1.0, 1, 1), (1.0, 1, 2), (2.0, 0, 1)]


def test_schedule_at_rejects_past():
    sim = Simulator()
    sim.now = 1.0
    with pytest.raises(SimulationError, match="in the past"):
        sim.schedule_at(0.5, lambda _p: None, None)


def test_collect_without_collector_returns_none():
    sharded = ShardedSimulator(2, 1.0, executor="sequential")
    sharded.shard(0).set_collector(lambda: "stats")
    assert sharded.collect() == {0: "stats", 1: None}
