"""repro.faults: plans, the injector, and the recovery machinery it exercises."""

import json

import pytest

from repro.core import make_stack
from repro.core.runner import Cell, ExperimentRunner
from repro.faults import (
    PRESETS,
    DiskFailure,
    DuplicateWindow,
    FaultPlan,
    LinkDegrade,
    LinkFlap,
    LossBurst,
    ServerCrash,
    SlowDisk,
    resolve_plan,
)
from repro.storage import Raid5Volume


def _file_work(c, nbytes=512 * 1024):
    """Create, write, close, and stat one file; returns its size."""

    def work():
        fd = yield from c.creat("/victim")
        yield from c.write(fd, nbytes)
        yield from c.close(fd)
        st = yield from c.stat("/victim")
        return st.size

    return work


def _run_faulted(kind, plan, nbytes=512 * 1024):
    stack = make_stack(kind, fault_plan=plan)
    size = stack.run(_file_work(stack.client, nbytes)())
    stack.quiesce()
    return stack, size


# -- plans ---------------------------------------------------------------------


def test_plan_rejects_out_of_range_probabilities():
    with pytest.raises(ValueError):
        LossBurst(start=0.0, duration=1.0, loss_rate=1.5)
    with pytest.raises(ValueError):
        DuplicateWindow(start=0.0, duration=1.0, probability=-0.1)
    with pytest.raises(ValueError):
        LinkFlap(start=-1.0, duration=1.0)
    with pytest.raises(ValueError):
        SlowDisk(start=0.0, duration=1.0, slowdown=0.0)
    with pytest.raises(ValueError):
        LinkDegrade(start=0.0, duration=1.0, bandwidth_factor=0.0)
    with pytest.raises(TypeError):
        FaultPlan(events=("not-an-event",))


def test_plan_spec_round_trip():
    plan = FaultPlan(
        events=(
            LossBurst(start=0.5, duration=2.0, loss_rate=0.1),
            ServerCrash(start=3.0, duration=1.0),
            DiskFailure(start=1.0, disk=2, rebuild_after=2.0),
        ),
        seed=7,
    )
    spec = plan.to_spec()
    assert json.loads(json.dumps(spec)) == spec      # plain JSON
    assert FaultPlan.from_spec(spec) == plan


def test_from_spec_rejects_unknown_event_type():
    with pytest.raises(ValueError):
        FaultPlan.from_spec({"events": [{"type": "gremlin", "start": 0.0}]})


def test_every_preset_resolves_to_a_nonempty_plan():
    for name in PRESETS:
        assert not resolve_plan(name).is_empty


def test_resolve_plan_rejects_unknown_name():
    with pytest.raises(ValueError):
        resolve_plan("not-a-preset-and-not-a-file")


def test_resolve_plan_seed_override():
    assert resolve_plan("loss2", seed=9).seed == 9


def test_empty_plan_attaches_nothing():
    stack = make_stack("nfsv3", fault_plan=FaultPlan())
    assert stack.fault_injector is None
    assert stack.transport.fault is None


# -- the paper's recovery contrast: UDP timers vs TCP stalls -------------------


def test_udp_loss_recovered_by_rpc_retransmission():
    plan = FaultPlan(
        events=(LossBurst(start=0.0, duration=60.0, loss_rate=0.2),), seed=1
    )
    stack, size = _run_faulted("nfsv2", plan)
    assert size == 512 * 1024                        # correct despite drops
    assert stack.fault_injector.counts.get("msg.drop", 0) > 0
    assert stack.counters.retransmissions > 0


def test_tcp_loss_stalls_below_the_rpc_layer():
    plan = FaultPlan(
        events=(LossBurst(start=0.0, duration=60.0, loss_rate=0.2),), seed=1
    )
    baseline, _ = _run_faulted("nfsv3", FaultPlan())
    stack, size = _run_faulted("nfsv3", plan)
    assert size == 512 * 1024
    assert stack.fault_injector.counts.get("msg.tcp-stall", 0) > 0
    assert stack.fault_injector.counts.get("msg.drop", 0) == 0
    assert stack.counters.retransmissions == 0       # repaired by "TCP"
    assert stack.now > baseline.now                  # but not for free


# -- crash, flap, and session recovery -----------------------------------------


def test_crash_restarts_nfs_server_and_work_completes():
    plan = FaultPlan(events=(ServerCrash(start=0.002, duration=0.05),))
    stack, size = _run_faulted("nfsv3", plan)
    assert size == 512 * 1024
    assert stack.server.restarts == 1


def test_crash_drops_and_relogs_in_iscsi_session():
    plan = FaultPlan(events=(ServerCrash(start=0.002, duration=0.05),))
    stack, size = _run_faulted("iscsi", plan)
    assert size == 512 * 1024
    assert stack.initiator.session_drops == 1
    assert stack.initiator.logins == 1
    assert stack.target.logins_served == 1


def test_flap_relogs_in_iscsi_session():
    plan = FaultPlan(events=(LinkFlap(start=0.002, duration=0.05),))
    stack, size = _run_faulted("iscsi", plan)
    assert size == 512 * 1024
    assert stack.initiator.session_drops == 1
    assert stack.initiator.logins == 1


# -- degraded storage ----------------------------------------------------------


def test_degraded_raid_reads_reconstruct(sim):
    raid = Raid5Volume(sim)

    def work():
        yield from raid.write(0, 64)
        raid.fail_disk(1)
        yield from raid.read(0, 64)

    sim.run_process(work())
    assert raid.disk_failures == 1
    assert raid.degraded_reads > 0


def test_raid_rebuild_leaves_degraded_mode(sim):
    raid = Raid5Volume(sim)

    def work():
        yield from raid.write(0, 64)
        raid.fail_disk(1)
        yield from raid.repair_disk(rebuild_blocks=64)
        before = raid.degraded_reads
        yield from raid.read(0, 64)                  # healthy again
        return before

    before = sim.run_process(work())
    assert raid.rebuild_writes > 0
    assert raid.degraded_reads == before


def test_raid_second_failure_is_rejected(sim):
    raid = Raid5Volume(sim)
    raid.fail_disk(0)
    with pytest.raises(RuntimeError):
        raid.fail_disk(1)
    with pytest.raises(ValueError):
        raid.fail_disk(99)


def test_slow_disk_and_degraded_link_cost_time():
    slow = FaultPlan(
        events=(SlowDisk(start=0.0, duration=600.0, disk=0, slowdown=8.0),)
    )
    thin = FaultPlan(
        events=(
            LinkDegrade(
                start=0.0, duration=600.0, bandwidth_factor=0.05, extra_latency=0.002
            ),
        )
    )
    baseline, _ = _run_faulted("iscsi", FaultPlan())
    slowed, _ = _run_faulted("iscsi", slow)
    thinned, _ = _run_faulted("iscsi", thin)
    assert slowed.now > baseline.now
    assert thinned.now > baseline.now


# -- determinism ---------------------------------------------------------------


def _scenario_cell():
    return Cell(
        "faults_scenario?smoke",
        "faults_scenario",
        {"kind": "nfsv2", "workload": "smoke", "plan": "loss10", "seed": 0},
    )


def test_fault_scenario_cell_is_deterministic():
    first = ExperimentRunner(jobs=None, use_cache=False).run([_scenario_cell()])
    second = ExperimentRunner(jobs=None, use_cache=False).run([_scenario_cell()])
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_fault_scenario_cell_reports_recovery_counters():
    cell = Cell(
        "faults_scenario?crash",
        "faults_scenario",
        {"kind": "nfsv3", "workload": "smoke", "plan": "crash", "seed": 0},
    )
    record = ExperimentRunner(jobs=None, use_cache=False).run([cell])[cell.id]
    assert record["recovery"]["server_restarts"] == 1
    assert record["faults"]["counts"]
