"""repro.check: simlint rule fixtures and simsan injected-failure scenarios.

Each lint rule gets a positive fixture (flags), a negative fixture (does
not flag), and a suppression fixture.  Each sanitizer check gets an
injected scenario that makes it fire, plus the clean-run contract: a
sanitized run reports nothing and produces bit-identical results.
"""

from __future__ import annotations

import heapq
import os

import pytest

from repro.check import simlint
from repro.check.simlint import lint_source
from repro.check.simsan import (
    CheckedSimulator,
    Finding,
    SanitizerError,
)
from repro.core.comparison import make_stack
from repro.net.message import Message
from repro.obs import bench


def codes(source):
    return [v.code for v in lint_source(source)]


# ---------------------------------------------------------------- simlint: D


def test_d101_flags_wall_clock():
    assert codes("import time\nstart = time.perf_counter()\n") == ["D101"]
    assert codes("from datetime import datetime\nd = datetime.now()\n") \
        == ["D101"]


def test_d101_negative_sim_clock():
    assert codes("start = sim.now\n") == []


def test_d101_suppressed_on_line():
    src = ("import time\n"
           "t = time.time()  # simlint: disable=D101 -- host-side timing\n")
    assert codes(src) == []


def test_d102_flags_global_rng_and_unseeded_random():
    assert codes("import random\nx = random.random()\n") == ["D102"]
    assert codes("import random\nrandom.shuffle(items)\n") == ["D102"]
    assert codes("import random\nrng = random.Random()\n") == ["D102"]


def test_d102_negative_seeded_instance():
    src = ("import random\n"
           "rng = random.Random(7)\n"
           "x = rng.random()\n")
    assert codes(src) == []


def test_d102_file_wide_suppression():
    src = ("# simlint: disable-file=D102 -- test fixture wants OS entropy\n"
           "import random\n"
           "a = random.random()\n"
           "b = random.randint(0, 9)\n")
    assert codes(src) == []


def test_d103_flags_set_iteration():
    assert codes("for item in {1, 2, 3}:\n    use(item)\n") == ["D103"]
    assert codes("out = [f(x) for x in set(items)]\n") == ["D103"]
    # Order-preserving wrappers don't launder the set away.
    assert codes("for item in list(set(items)):\n    use(item)\n") \
        == ["D103"]


def test_d103_negative_sorted():
    assert codes("for item in sorted(set(items)):\n    use(item)\n") == []
    assert codes("for item in [1, 2, 3]:\n    use(item)\n") == []


def test_d103_flags_set_laundered_through_local():
    # The v1 false negative: the set hides behind an intermediate name.
    src = ("def go(items):\n"
           "    names = set(items)\n"
           "    for name in names:\n"
           "        use(name)\n")
    assert codes(src) == ["D103"]
    # ...including through an order-preserving copy of the local.
    src = ("def go(items):\n"
           "    names = set(items)\n"
           "    snapshot = list(names)\n"
           "    for name in snapshot:\n"
           "        use(name)\n")
    assert codes(src) == ["D103"]


def test_d103_flags_dict_views_on_dict_built_from_set():
    src = ("def go(items):\n"
           "    index = {name: 0 for name in set(items)}\n"
           "    for name in index.keys():\n"
           "        use(name)\n")
    assert codes(src) == ["D103", "D103"]  # the comprehension + the view
    src = ("def go(names):\n"
           "    index = dict.fromkeys(set(names))\n"
           "    for name in index:\n"
           "        use(name)\n")
    assert codes(src) == ["D103"]


def test_d103_laundering_negatives():
    # Reassignment to an ordered value clears the tracking.
    src = ("def go(items):\n"
           "    names = set(items)\n"
           "    names = sorted(names)\n"
           "    for name in names:\n"
           "        use(name)\n")
    assert codes(src) == []
    # A comprehension feeding an order-insensitive consumer is fine.
    assert codes("def go(s):\n"
                 "    findings = set(s)\n"
                 "    return sorted(list(f) for f in findings)\n") == []
    assert codes("def go(s):\n"
                 "    findings = set(s)\n"
                 "    return max(f for f in findings)\n") == []


def test_d103_laundering_suppressed():
    src = ("def go(items):\n"
           "    names = set(items)\n"
           "    for name in names:"
           "  # simlint: disable=D103 -- order-free side effect\n"
           "        use(name)\n")
    assert codes(src) == []


def test_d104_flags_float_equality_on_now():
    assert codes("if sim.now == deadline:\n    fire()\n") == ["D104"]
    assert codes("done = now != start\n") == ["D104"]


def test_d104_negative_ordering_comparisons():
    assert codes("if sim.now >= deadline:\n    fire()\n") == []
    assert codes("if count == 3:\n    fire()\n") == []


# ---------------------------------------------------------------- simlint: P


def test_p201_flags_non_generator_process():
    src = ("def worker():\n"
           "    return 1\n"
           "sim.spawn(worker())\n")
    assert codes(src) == ["P201"]


def test_p201_negative_generator_and_foreign_run():
    src = ("def worker():\n"
           "    yield sim.timeout(1)\n"
           "sim.spawn(worker())\n")
    assert codes(src) == []
    # `.run` on non-simulator receivers (ExperimentRunner etc.) is fine.
    src = ("def cell():\n"
           "    return 1\n"
           "runner.run(cell())\n")
    assert codes(src) == []


def test_p202_flags_unreleased_acquire():
    src = ("def proc():\n"
           "    yield from resource.acquire()\n"
           "    yield sim.timeout(1)\n")
    assert codes(src) == ["P202"]


def test_p202_negative_try_finally():
    src = ("def proc():\n"
           "    yield from resource.acquire()\n"
           "    try:\n"
           "        yield sim.timeout(1)\n"
           "    finally:\n"
           "        resource.release()\n")
    assert codes(src) == []


def test_p203_flags_dropped_sim_result():
    src = ("def proc():\n"
           "    sim.timeout(5)\n"
           "    yield sim.timeout(1)\n")
    assert codes(src) == ["P203"]


def test_p203_negative_yielded_or_bound():
    src = ("def proc():\n"
           "    yield sim.timeout(5)\n"
           "    evt = sim.event()\n"
           "    yield evt\n")
    assert codes(src) == []


# ---------------------------------------------------------------- simlint: O


def test_o301_flags_unguarded_tracer_hook():
    assert codes("tracer.instant('x', cat='y')\n") == ["O301"]
    assert codes("span = self.tracer.begin_span('op')\n") == ["O301"]


def test_o301_negative_guarded_and_end_span():
    src = ("if tracer.enabled:\n"
           "    tracer.instant('x', cat='y')\n")
    assert codes(src) == []
    # end_span(None) is the documented safe no-op; never flagged.
    assert codes("tracer.end_span(span)\n") == []


def test_o302_flags_unguarded_telemetry_hook():
    assert codes("self.telem.count('net.delivered')\n") == ["O302"]
    assert codes("telem.observe('queue.depth', 4.0)\n") == ["O302"]
    assert codes("self.telemetry.count('ops', 2.0)\n") == ["O302"]


def test_o302_negative_guarded():
    src = ("telem = self.telem\n"
           "if telem is not None:\n"
           "    telem.count('net.delivered')\n")
    assert codes(src) == []
    # Plain truthiness on a telem-ish name is also an accepted guard.
    src = ("if self.telemetry:\n"
           "    self.telemetry.observe('q', 1.0)\n")
    assert codes(src) == []
    # `count`/`observe` on non-telemetry receivers are not our hooks.
    assert codes("stats.count('x')\n") == []
    assert codes("n = items.count(3)\n") == []


def test_o302_suppressed():
    src = "self.telem.count('x')  # simlint: disable=O302\n"
    assert codes(src) == []


def test_o303_flags_unguarded_recorder_hook():
    assert codes("self.recorder.note_event(record)\n") == ["O303"]
    assert codes("recorder.note_message('c2s', msg)\n") == ["O303"]
    assert codes("self.recorder.dump('T501', 'telemetry', 'msg')\n") \
        == ["O303"]


def test_o303_negative_guarded_and_foreign_receivers():
    src = ("recorder = self.recorder\n"
           "if recorder is not None:\n"
           "    recorder.note_event(record)\n")
    assert codes(src) == []
    # Plain truthiness on a recorder-ish name is also an accepted guard.
    src = ("if self.recorder:\n"
           "    self.recorder.note_message('s2c', msg)\n")
    assert codes(src) == []
    # `dump` on non-recorder receivers (json etc.) is not our hook.
    assert codes("import json\njson.dump(doc, handle)\n") == []


def test_o303_suppressed():
    src = "self.recorder.dump('S403', 'simsan', 'x')  # simlint: disable=O303\n"
    assert codes(src) == []


# ------------------------------------------------------------ simlint: misc


def test_rule_catalog_and_hints():
    assert set(simlint.RULES) == {
        "D101", "D102", "D103", "D104", "P201", "P202", "P203",
        "O301", "O302", "O303", "S501", "S502", "S503",
        "M601", "M602", "M603",
    }
    violations = lint_source("import time\nt = time.time()\n")
    assert len(violations) == 1
    assert "sim.now" in violations[0].hint


def test_format_text_and_json():
    violations = lint_source("import time\nt = time.time()\n", path="x.py")
    text = simlint.format_text(violations)
    assert "x.py:2:" in text and "D101" in text
    assert text.endswith("simlint: 1 violation")
    assert simlint.format_text([]) == "simlint: clean"
    import json
    doc = json.loads(simlint.format_json(violations))
    assert doc["tool"] == "simlint"
    assert doc["violations"][0]["code"] == "D101"
    assert "D103" in doc["rules"]


def test_repo_tree_is_lint_clean():
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    assert simlint.lint_paths([package_dir]) == []


# ------------------------------------------------------------------- simsan


ALL_KINDS = ("nfsv2", "nfsv3", "nfsv4", "iscsi", "nfs-enhanced")


@pytest.mark.parametrize("kind", ["nfsv3", "iscsi"])
def test_clean_run_reports_nothing(kind):
    stack = make_stack(kind, san=True)
    stack.run(_tiny_workload(stack.client), name="tiny")
    stack.quiesce()
    assert stack.check() == []


def _tiny_workload(client):
    fd = yield from client.creat("/f")
    yield from client.write(fd, 8192)
    yield from client.fsync(fd)
    yield from client.close(fd)


@pytest.mark.parametrize("kind", ["nfsv3", "iscsi"])
def test_sanitized_run_is_bit_identical(kind):
    plain = bench.run_case("smoke", kind)
    sanitized = bench.run_case("smoke", kind, san=True)
    assert sanitized == plain


class _MiniStack:
    """The smallest object SimSan can wrap: a sim, a transport, no peers.

    Full stacks keep periodic daemons (write-back flush, server sync) on
    the calendar, so their calendar never empties and the S401 deadlock
    check — which requires a fully drained calendar — stays silent by
    design.  Deadlock scenarios therefore run on this bare harness.
    """

    kind = "mini"

    def __init__(self):
        from repro.net.link import Link
        from repro.net.transport import DuplexTransport

        self.sim = CheckedSimulator()
        self.transport = DuplexTransport(self.sim, Link(self.sim))
        self.initiator = None
        self.sanitizer = None

    def rpc_peers(self):
        return []

    def resources(self):
        return []


def test_s401_deadlock_detected():
    from repro.check.simsan import SimSan

    stack = _MiniStack()
    sim = stack.sim
    san = SimSan(stack)

    def waiter():
        yield sim.event()   # never triggered by anyone

    sim.spawn(waiter(), name="stuck")
    sim.run()
    findings = san.verify(strict=False)
    assert any(f.code == "S401" for f in findings)
    assert any("stuck" in f.message for f in findings)


def test_s401_parked_store_getter_is_not_a_deadlock():
    from repro.check.simsan import SimSan
    from repro.sim import Store

    stack = _MiniStack()
    sim = stack.sim
    san = SimSan(stack)
    store = Store(sim, name="inbox")

    def server():
        while True:
            item = yield from store.get()   # parks: an idle server
            del item

    sim.spawn(server(), name="server")
    sim.run()
    assert san.verify(strict=False) == []


def test_s402_resource_leak_detected():
    stack = make_stack("nfsv3", san=True)
    cpu = stack.client_host.cpu

    def leaker():
        yield from cpu.acquire()  # simlint: disable=P202 -- leak on purpose

    stack.sim.run_process(leaker(), name="leaker")
    findings = stack.check(strict=False)
    assert any(f.code == "S402" and "held" in f.message for f in findings)


def test_s403_event_order_violation_detected():
    stack = make_stack("nfsv3", san=True)
    stack.run(_tiny_workload(stack.client), name="tiny")
    assert stack.sim.now > 0
    # Corrupt the calendar: a record stamped before the current clock.
    heapq.heappush(stack.sim._calendar, (0.0, -1, 4, lambda: None, None))
    # Bounded run: the stack's periodic daemons never let the calendar
    # drain, so an unbounded run() would spin forever.
    stack.sim.run(until=stack.sim.now + 1.0)
    findings = stack.check(strict=False)
    assert any(f.code == "S403" for f in findings)


def test_s404_lost_message_detected():
    stack = make_stack("nfsv3", san=True)
    stack.transport.send_from_client(Message("NULL"))
    stack.sim.run(until=0.0)   # truncate before the delivery fires
    findings = stack.check(strict=False)
    assert any(f.code == "S404" and "in flight" in f.message
               for f in findings)


def test_s405_orphan_reply_detected():
    stack = make_stack("nfsv3", san=True)
    stack.run(_tiny_workload(stack.client), name="tiny")
    stack.quiesce()
    peer = stack.rpc_peers()[0]
    peer.san.note_orphan_reply(10 ** 9)   # an xid this peer never issued
    findings = stack.check(strict=False)
    assert any(f.code == "S405" and "never issued" in f.message
               for f in findings)


def test_s405_orphan_reply_to_issued_xid_is_legitimate():
    stack = make_stack("nfsv3", san=True)
    stack.run(_tiny_workload(stack.client), name="tiny")
    stack.quiesce()
    peer = stack.rpc_peers()[0]
    issued = next(iter(peer.san.xids_issued))
    peer.san.note_orphan_reply(issued)   # late reply to a retransmit
    assert stack.check() == []


def test_s406_iscsi_task_set_detected():
    stack = make_stack("iscsi", san=True)
    stack.run(_tiny_workload(stack.client), name="tiny")
    stack.quiesce()
    stack.initiator.commands_issued += 1   # one command "vanishes"
    findings = stack.check(strict=False)
    assert any(f.code == "S406" for f in findings)


def test_strict_check_raises_sanitizer_error():
    from repro.check.simsan import SimSan

    stack = _MiniStack()
    sim = stack.sim
    san = SimSan(stack)

    def waiter():
        yield sim.event()

    sim.spawn(waiter(), name="stuck")
    sim.run()
    with pytest.raises(SanitizerError) as excinfo:
        san.verify()
    assert any(f.code == "S401" for f in excinfo.value.findings)
    assert "S401" in str(excinfo.value)


def test_unsanitized_stack_check_is_noop():
    stack = make_stack("nfsv3")
    stack.run(_tiny_workload(stack.client), name="tiny")
    assert stack.sanitizer is None
    assert stack.check() == []


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_every_stack_kind_runs_sanitized(kind):
    stack = make_stack(kind, san=True)
    stack.run(_tiny_workload(stack.client), name="tiny")
    stack.quiesce()
    assert stack.check() == []


def test_checked_simulator_matches_plain_kernel():
    from repro.sim import Simulator

    def pinger(sim, log, tag):
        for step in range(5):
            yield sim.timeout(0.5)
            log.append((tag, step, sim.now))

    logs = []
    for sim_cls in (Simulator, CheckedSimulator):
        sim = sim_cls()
        log = []
        sim.spawn(pinger(sim, log, "a"), name="a")
        sim.spawn(pinger(sim, log, "b"), name="b")
        sim.run()
        logs.append(log)
    assert logs[0] == logs[1]


def test_finding_equality():
    assert Finding("S401", "x") == Finding("S401", "x")
    assert Finding("S401", "x") != Finding("S402", "x")


def test_checked_run_window_matches_plain_kernel():
    from repro.sim import Simulator

    def pinger(sim, log, tag):
        for step in range(6):
            yield sim.timeout(0.5)
            log.append((tag, step, sim.now))

    logs = []
    for sim_cls in (Simulator, CheckedSimulator):
        sim = sim_cls()
        log = []
        sim.spawn(pinger(sim, log, "a"), name="a")
        sim.spawn(pinger(sim, log, "b"), name="b")
        counts = [sim.run_window(horizon) for horizon in (1.1, 2.1, 9.9)]
        log.append(tuple(counts))
        logs.append(log)
    assert logs[0] == logs[1]
    checked = CheckedSimulator()
    assert checked.order_findings == []


def test_checked_run_window_flags_order_regression():
    """schedule_at below the already-dispatched frontier is an S403."""
    sim = CheckedSimulator()
    sim.schedule_at(1.0, lambda _p: None, None)
    sim.run_window(2.0)
    # Forge a record behind the frontier the checker already saw.
    sim._last_when = 5.0
    sim.schedule_at(3.0, lambda _p: None, None)
    sim.run_window(10.0)
    assert any(f.code == "S403" for f in sim.order_findings)
