"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.comparison import make_stack
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def run(sim, generator, name="test"):
    """Drive a coroutine to completion on ``sim`` and return its value."""
    return sim.run_process(generator, name=name)


@pytest.fixture(params=["nfsv2", "nfsv3", "nfsv4", "iscsi", "nfs-enhanced"])
def any_stack(request):
    """A mounted stack of every kind (parametrized)."""
    return make_stack(request.param)


@pytest.fixture
def nfs_stack():
    return make_stack("nfsv3")


@pytest.fixture
def iscsi_stack():
    return make_stack("iscsi")
