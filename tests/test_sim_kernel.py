"""Unit tests for the discrete-event kernel."""
# simlint: disable-file=D104,P202,P203 -- kernel tests assert exact simulated times and deliberately misuse calls to probe behaviour

import pytest

from repro.sim import Interrupt, SimulationError


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_timeout_advances_clock(sim):
    def proc():
        yield sim.timeout(2.5)
        return sim.now

    assert sim.run_process(proc()) == 2.5


def test_timeouts_fire_in_order(sim):
    fired = []

    def waiter(delay):
        yield sim.timeout(delay)
        fired.append(delay)

    for delay in (3.0, 1.0, 2.0):
        sim.spawn(waiter(delay))
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_simultaneous_events_fifo(sim):
    """Ties break by scheduling order — determinism matters for repro."""
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        sim.spawn(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_process_return_value(sim):
    def inner():
        yield sim.timeout(1)
        return 42

    def outer():
        value = yield from inner()
        return value + 1

    assert sim.run_process(outer()) == 43


def test_event_trigger_wakes_waiter(sim):
    gate = sim.event()

    def waiter():
        value = yield gate
        return value

    def trigger():
        yield sim.timeout(5)
        gate.trigger("hello")

    proc = sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert proc.value == "hello"
    assert sim.now == 5


def test_event_double_trigger_rejected(sim):
    gate = sim.event()
    gate.trigger()
    with pytest.raises(SimulationError):
        gate.trigger()


def test_event_failure_propagates(sim):
    gate = sim.event()

    def waiter():
        yield gate

    proc = sim.spawn(waiter())
    gate.fail(ValueError("boom"))
    with pytest.raises(ValueError):
        sim.run()
    assert proc.ok is False


def test_late_waiter_defuses_already_failed_event(sim):
    # Regression: an event that fails with nobody waiting is recorded as
    # unhandled; a waiter that attaches *after* the failure was processed
    # still defuses it, so the run must not re-raise at the end.
    gate = sim.event()

    def failer():
        yield sim.timeout(1)
        gate.fail(ValueError("boom"))

    def late_waiter():
        yield sim.timeout(2)
        try:
            yield gate
        except ValueError:
            return "handled"
        return "missed"

    sim.spawn(failer())
    proc = sim.spawn(late_waiter())
    sim.run()
    assert proc.value == "handled"
    assert gate.defused


def test_late_non_defusing_callback_keeps_failure_fatal(sim):
    # A late add_callback that merely observes the event must not swallow
    # the failure: nobody defused it, so the run still raises.
    gate = sim.event()
    seen = []

    def failer():
        yield sim.timeout(1)
        gate.fail(ValueError("boom"))

    def observer():
        yield sim.timeout(2)
        gate.add_callback(lambda event: seen.append(event.ok))

    sim.spawn(failer())
    sim.spawn(observer())
    with pytest.raises(ValueError, match="boom"):
        sim.run()
    assert seen == [False]


def test_unhandled_failure_raises(sim):
    def bad():
        yield sim.timeout(1)
        raise RuntimeError("unseen")

    sim.spawn(bad())
    with pytest.raises(RuntimeError):
        sim.run()


def test_process_exception_caught_by_parent(sim):
    def child():
        yield sim.timeout(1)
        raise KeyError("inner")

    def parent():
        proc = sim.spawn(child())
        try:
            yield proc
        except KeyError:
            return "caught"
        return "missed"

    assert sim.run_process(parent()) == "caught"


def test_any_of_returns_first(sim):
    def slow():
        yield sim.timeout(10)
        return "slow"

    def fast():
        yield sim.timeout(1)
        return "fast"

    def main():
        a = sim.spawn(slow())
        b = sim.spawn(fast())
        winner, value = yield sim.any_of([a, b])
        return value

    assert sim.run_process(main()) == "fast"
    assert sim.now == 1


def test_all_of_collects_values(sim):
    def worker(n):
        yield sim.timeout(n)
        return n

    def main():
        jobs = [sim.spawn(worker(n)) for n in (3, 1, 2)]
        values = yield sim.all_of(jobs)
        return values

    assert sim.run_process(main()) == [3, 1, 2]
    assert sim.now == 3


def test_all_of_empty_triggers_immediately(sim):
    def main():
        values = yield sim.all_of([])
        return values

    assert sim.run_process(main()) == []


def test_interrupt_delivers_cause(sim):
    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as stop:
            return (stop.cause, sim.now)
        return None

    proc = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(1)
        proc.interrupt("wake up")

    sim.spawn(interrupter())
    sim.run()
    assert proc.value == ("wake up", 1)


def test_run_until_stops_clock(sim):
    def forever():
        while True:
            yield sim.timeout(1)

    sim.spawn(forever())
    sim.run(until=5.5)
    assert sim.now == 5.5


def test_run_until_advances_clock_on_empty_calendar(sim):
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_run_until_leaves_future_events_pending(sim):
    fired = []

    def waiter():
        yield sim.timeout(10)
        fired.append(sim.now)

    sim.spawn(waiter())
    sim.run(until=4.0)
    assert sim.now == 4.0
    assert fired == []
    # The pending event survives the pause and fires on the next run.
    sim.run()
    assert fired == [10.0]
    assert sim.now == 10.0


def test_run_until_fires_events_at_exactly_until(sim):
    fired = []

    def waiter():
        yield sim.timeout(5.0)
        fired.append(sim.now)

    sim.spawn(waiter())
    sim.run(until=5.0)
    assert fired == [5.0]
    assert sim.now == 5.0


def test_utilization_reset_window_mid_acquisition(sim):
    from repro.sim import Resource

    resource = Resource(sim, capacity=1)

    def worker():
        yield from resource.acquire()
        yield sim.timeout(10.0)
        resource.release()

    def observer():
        yield sim.timeout(4.0)
        resource.tracker.reset_window()
        yield sim.timeout(3.0)
        # The unit has been continuously in service across the reset, so
        # the new window is 100% busy.
        return resource.tracker.utilization()

    sim.spawn(worker())
    utilization = sim.run_process(observer())
    assert utilization == pytest.approx(1.0)


def test_deadlock_detected(sim):
    def stuck():
        gate = sim.event()
        yield gate   # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(stuck())


def test_yielding_non_event_fails(sim):
    def bad():
        yield 42

    with pytest.raises(TypeError):
        sim.run_process(bad())


def test_spawn_requires_generator(sim):
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)


def test_run_process_until_returns_value_when_finished(sim):
    def proc():
        yield sim.timeout(2.0)
        return "done"

    assert sim.run_process(proc(), until=5.0) == "done"
    assert sim.now == 2.0


def test_run_process_until_bounds_unfinished_process(sim):
    progress = []

    def proc():
        for step in range(10):
            yield sim.timeout(1.0)
            progress.append(step)
        return "finished"

    # The clock stops at the bound, the process stays pending on the
    # calendar, and the bounded run reports no value.
    assert sim.run_process(proc(), until=3.5) is None
    assert sim.now == 3.5
    assert progress == [0, 1, 2]
    sim.run()
    assert progress == list(range(10))


def test_run_process_until_skips_deadlock_check(sim):
    def stuck():
        gate = sim.event()
        yield gate   # never triggered

    # Unbounded runs raise on deadlock; bounded runs just stop the clock.
    assert sim.run_process(stuck(), until=1.0) is None
    assert sim.now == 1.0


def test_add_callback_after_processing_fires_next_step(sim):
    seen = []
    event = sim.event()

    def waiter():
        yield event
        seen.append("waiter")

    def late():
        yield sim.timeout(1.0)
        event.add_callback(lambda ev: seen.append(("late", ev.value)))
        yield sim.timeout(0.0)

    event.trigger("v")
    sim.spawn(waiter())
    sim.run_process(late())
    assert seen == ["waiter", ("late", "v")]


def test_hold_matches_timeout_semantics(sim):
    log = []

    def holder():
        yield sim.hold(2.0)
        log.append(("hold", sim.now))

    def timeouter():
        yield sim.timeout(2.0)
        log.append(("timeout", sim.now))

    sim.spawn(holder())
    sim.spawn(timeouter())
    sim.run()
    # Same instant; spawn order decides the tie, exactly as with two
    # timeouts.
    assert log == [("hold", 2.0), ("timeout", 2.0)]


def test_hold_outside_process_rejected(sim):
    with pytest.raises(SimulationError):
        sim.hold(1.0)


def test_hold_negative_delay_rejected(sim):
    def proc():
        yield sim.hold(-0.5)

    with pytest.raises(ValueError):
        sim.run_process(proc())


def test_store_parked_getter_receives_item(sim):
    from repro.sim import Store

    store = Store(sim, name="inbox")
    received = []

    def getter(tag):
        item = yield from store.get()
        received.append((tag, item, sim.now))

    def putter():
        yield sim.timeout(1.0)
        store.put("a")
        store.put("b")

    sim.spawn(getter("g1"))
    sim.spawn(getter("g2"))
    sim.spawn(putter())
    sim.run()
    # FIFO hand-off: oldest parked getter gets the oldest item.
    assert received == [("g1", "a", 1.0), ("g2", "b", 1.0)]


def test_peek_reports_next_when_without_popping(sim):
    assert sim.peek() is None

    def proc():
        yield sim.timeout(2.0)

    sim.spawn(proc())
    assert sim.peek() == 0.0           # the spawn record fires at t=0
    sim.run_window(1.0)
    assert sim.peek() == 2.0           # the parked timeout
    assert sim.peek() == 2.0           # read-only: repeated peeks agree
    sim.run()
    assert sim.peek() is None


def test_schedule_at_lands_on_exact_float(sim):
    """Cross-shard injection path: the absolute `when` must survive
    unchanged (a relative delay could lose low bits to rounding)."""
    fired = []
    when = 0.30000000000000004          # 0.1 + 0.2: not representable
    sim.schedule_at(when, fired.append, "payload")
    sim.run()
    assert fired == ["payload"]
    assert sim.now == when


def test_run_window_counts_dispatched_records(sim):
    ticks = []

    def ticker():
        for _ in range(4):
            yield sim.timeout(1.0)
            ticks.append(sim.now)

    sim.spawn(ticker())
    # Window [0, 2.5): the spawn record plus the ticks at 1.0 and 2.0.
    assert sim.run_window(2.5) == 3
    assert ticks == [1.0, 2.0]
    # The ticks at 3.0 and 4.0 plus the process-completion record.
    assert sim.run_window(10.0) == 3
    assert ticks == [1.0, 2.0, 3.0, 4.0]
    assert sim.run_window(20.0) == 0
