"""repro.obs.telemetry: streaming rollups, watchers, merging, dashboards.

The contracts under test:

* bounded memory — the per-series ring keeps at most ``capacity`` windows
  and accounts for everything it evicts (``dropped_windows``), while the
  run-wide totals and histogram never drop anything;
* associative merging — ``merge_rollups``/``merge_snapshots`` commute
  with how the samples were partitioned across workers, so ``--jobs 1``
  and ``--jobs N`` produce byte-identical aggregates;
* byte-identity — attaching telemetry to a stack never changes the
  simulated outcome: completion times and message counts match the
  uninstrumented run exactly (probes are pure reads);
* watchers — T501/T502/T503 fire on the pathologies they name, once per
  (code, series), and stay quiet on healthy runs.
"""
# simlint: disable-file=O302 -- tests drive the telemetry collector directly

from __future__ import annotations

import io
import json

import pytest

from repro import cli
from repro.core.comparison import make_stack
from repro.core.runner import Cell, ExperimentRunner
from repro.obs.dashboard import render_dashboard, render_html, sparkline
from repro.obs.telemetry import (
    SNAPSHOT_VERSION,
    Heartbeat,
    SeriesRollup,
    Telemetry,
    TelemetryFinding,
    merge_rollups,
    merge_snapshots,
)
from repro.obs.bench import WORKLOADS
from repro.sim.kernel import Simulator


# ------------------------------------------------------------ SeriesRollup


def test_rollup_windows_and_run_totals():
    roll = SeriesRollup(width=1.0, capacity=8)
    for t, v in ((0.1, 2.0), (0.6, 4.0), (1.2, 6.0), (2.9, 1.0)):
        roll.record(t, v)
    assert roll.count == 4
    assert roll.total == pytest.approx(13.0)
    assert roll.min == 1.0 and roll.max == 6.0
    assert roll.mean == pytest.approx(13.0 / 4)
    assert roll.counts == [2, 1, 1]
    assert roll.sums == pytest.approx([6.0, 6.0, 1.0])
    assert roll.window_means() == pytest.approx([3.0, 6.0, 1.0])
    assert roll.dropped_windows == 0


def test_rollup_ring_evicts_oldest_but_keeps_totals():
    roll = SeriesRollup(width=1.0, capacity=4)
    for t in range(10):
        roll.record(t + 0.5, float(t))
    # Only the newest 4 windows survive...
    assert len(roll.counts) == 4
    assert roll.start == 6
    assert roll.dropped_windows == 6
    assert roll.window_means() == pytest.approx([6.0, 7.0, 8.0, 9.0])
    # ...but the run-wide aggregates saw every sample.
    assert roll.count == 10
    assert roll.total == pytest.approx(sum(range(10)))
    assert roll.min == 0.0 and roll.max == 9.0


def test_rollup_straggler_before_ring_clamps_into_oldest_window():
    roll = SeriesRollup(width=1.0, capacity=2)
    for t in (0.5, 1.5, 2.5, 3.5):
        roll.record(t, 1.0)
    assert roll.start == 2
    # A sample from an evicted window lands in the oldest live one.
    roll.record(0.25, 5.0)
    assert roll.counts[0] == 2
    assert roll.maxs[0] == 5.0
    assert roll.count == 5


def test_rollup_as_dict_round_trips_through_json():
    roll = SeriesRollup(width=0.5, capacity=4)
    for t in (0.1, 0.7, 1.9):
        roll.record(t, t * 3.0)
    doc = json.loads(json.dumps(roll.as_dict()))
    assert doc["width"] == 0.5
    assert doc["count"] == 3
    assert len(doc["counts"]) == len(doc["sums"])
    assert doc["hist"]["count"] == 3


# ----------------------------------------------------------------- merging


def _rollup_dict(samples, width=1.0, capacity=8):
    roll = SeriesRollup(width=width, capacity=capacity)
    for t, v in samples:
        roll.record(t, v)
    return roll.as_dict()


def test_merge_rollups_equals_single_stream():
    samples = [(0.1 * i, float(i % 7)) for i in range(1, 60)]
    whole = _rollup_dict(samples)
    left = _rollup_dict(samples[::2])
    right = _rollup_dict(samples[1::2])
    assert merge_rollups(left, right) == whole


def test_merge_rollups_is_associative_and_commutative():
    parts = [
        _rollup_dict([(0.3, 1.0), (1.1, 2.0)]),
        _rollup_dict([(0.9, 5.0), (2.4, 0.5)]),
        _rollup_dict([(1.6, 3.0)]),
    ]
    a, b, c = parts
    left = merge_rollups(merge_rollups(a, b), c)
    right = merge_rollups(a, merge_rollups(b, c))
    assert left == right
    assert merge_rollups(a, b) == merge_rollups(b, a)


def test_merge_rollups_clips_to_capacity_and_counts_drops():
    old = _rollup_dict([(0.5, 1.0)], capacity=2)
    new = _rollup_dict([(5.5, 2.0), (6.5, 3.0)], capacity=2)
    merged = merge_rollups(old, new)
    assert len(merged["counts"]) == 2
    # The union spans windows 0..6; only the newest 2 fit, so 5 windows
    # (one occupied, four empty gaps) fell off the merged ring.
    assert merged["dropped_windows"] == 5
    assert merged["count"] == 3            # totals still see everything
    assert merged["hist"]["count"] == 3


def test_merge_rollups_rejects_width_mismatch():
    with pytest.raises(ValueError):
        merge_rollups(_rollup_dict([], width=1.0),
                      _rollup_dict([], width=2.0))


def test_merge_snapshots_unions_series_and_dedups_findings():
    def snap(series_name, findings):
        return {
            "version": SNAPSHOT_VERSION,
            "samples": 3,
            "series": {series_name: {"tag": "gauge",
                                     "rollup": _rollup_dict([(0.5, 1.0)])}},
            "findings": findings,
        }

    finding = ["T501", "q", "queue grew"]
    merged = merge_snapshots([
        snap("a", [finding]),
        snap("b", [finding, ["T502", "u", "pegged"]]),
    ])
    assert merged["version"] == SNAPSHOT_VERSION
    assert merged["samples"] == 6
    assert sorted(merged["series"]) == ["a", "b"]
    assert merged["findings"] == [finding, ["T502", "u", "pegged"]]


def test_merge_snapshots_does_not_alias_inputs():
    base = {
        "version": SNAPSHOT_VERSION,
        "samples": 1,
        "series": {"s": {"tag": "gauge",
                         "rollup": _rollup_dict([(0.5, 1.0)])}},
        "findings": [],
    }
    other = json.loads(json.dumps(base))
    merged = merge_snapshots([base, other])
    merged["series"]["s"]["rollup"]["counts"][0] = 99
    assert base["series"]["s"]["rollup"]["counts"][0] == 1


def test_merge_snapshots_rejects_empty_and_version_skew():
    with pytest.raises(ValueError):
        merge_snapshots([])
    good = {"version": SNAPSHOT_VERSION, "samples": 0,
            "series": {}, "findings": []}
    bad = dict(good, version=SNAPSHOT_VERSION + 1)
    with pytest.raises(ValueError):
        merge_snapshots([good, bad])


# ----------------------------------------------------- Telemetry collector


def test_telemetry_samples_registered_series():
    sim = Simulator()
    telem = Telemetry(sim, interval=0.5, window=1.0, capacity=16)
    state = {"v": 0.0}
    telem.add_series("g", lambda: state["v"], kind="gauge", tag="gauge")
    telem.add_series("r", lambda: state["v"], kind="rate", tag="rate")
    telem.start()

    def work():
        for _ in range(8):
            state["v"] += 2.0
            yield sim.timeout(0.5)

    sim.run_process(work())
    snap = telem.snapshot()
    assert snap["version"] == SNAPSHOT_VERSION
    assert snap["samples"] >= 7
    gauge = snap["series"]["g"]["rollup"]
    assert gauge["max"] >= 8.0
    # rate = d(value)/dt with value growing 2.0 per 0.5 s -> ~4.0/s.
    rate = snap["series"]["r"]["rollup"]
    assert rate["max"] == pytest.approx(4.0, rel=0.01)


def test_telemetry_push_hooks_autocreate_series():
    sim = Simulator()
    telem = Telemetry(sim)
    telem.count("deliveries")
    telem.observe("depth", 7.0)
    snap = telem.snapshot()
    assert snap["series"]["deliveries"]["tag"] == "progress"
    assert snap["series"]["depth"]["rollup"]["max"] == 7.0


def test_telemetry_rejects_duplicates_and_bad_kind():
    telem = Telemetry(Simulator())
    telem.add_series("x", lambda: 0.0)
    with pytest.raises(ValueError):
        telem.add_series("x", lambda: 0.0)
    with pytest.raises(ValueError):
        telem.add_series("y", lambda: 0.0, kind="bogus")


def _watch_run(setup):
    """Drive a tiny sim long enough for the watcher cadence to engage."""
    sim = Simulator()
    telem = Telemetry(sim, interval=0.1, window=0.1, capacity=64)
    state = setup(telem)
    telem.start()

    def work():
        for step in range(120):
            state(step)
            yield sim.timeout(0.1)

    sim.run_process(work())
    return telem.snapshot()["findings"]


def test_watcher_t501_fires_on_unbounded_queue_growth():
    def setup(telem):
        depth = {"v": 0.0}
        telem.add_series("q", lambda: depth["v"], tag="queue")

        def step(i):
            depth["v"] = float(i)  # strictly growing, past the alarm depth
        return step

    findings = _watch_run(setup)
    assert ["T501", "q"] in [f[:2] for f in findings]
    # Fires once per (code, series), not once per watcher sweep.
    assert [f[:2] for f in findings].count(["T501", "q"]) == 1


def test_watcher_t502_fires_on_pegged_utilization():
    def setup(telem):
        telem.add_series("u", lambda: 1.0, tag="util")
        return lambda i: None

    findings = _watch_run(setup)
    assert ["T502", "u"] in [f[:2] for f in findings]


def test_watcher_t503_fires_on_stalled_progress_with_queued_work():
    def setup(telem):
        telem.add_series("q", lambda: 5.0, tag="queue")

        def step(i):
            if i < 5:
                telem.count("done")  # progress early on, then silence
        return step

    findings = _watch_run(setup)
    # T503 is a cross-series verdict, reported under the synthetic
    # "progress" series id rather than any one counter.
    assert ["T503", "progress"] in [f[:2] for f in findings]


def test_watchers_stay_quiet_on_healthy_series():
    def setup(telem):
        depth = {"v": 0.0}
        telem.add_series("q", lambda: depth["v"], tag="queue")
        telem.add_series("u", lambda: 0.4, tag="util")

        def step(i):
            depth["v"] = float(i % 3)  # bounded queue
            telem.count("done")        # steady progress
        return step

    assert _watch_run(setup) == []


# ------------------------------------------------------- stack integration


def test_stack_telemetry_covers_every_tier():
    stack = make_stack("nfsv3", telemetry=True)
    names = set(stack.telemetry.series)
    assert {"client.cpu.util", "server.cpu.util", "net.link.MBps",
            "server.disk00.util", "server.disk00.queue",
            "server.raid.degraded_s", "client.rpc.calls_s",
            "server.rpc.served_s", "server.cache.hits_s"} <= names
    stack.run(WORKLOADS["smoke"](stack.client), name="smoke")
    snap = stack.telemetry.snapshot()
    assert snap["samples"] > 0
    assert snap["series"]["server.cpu.util"]["rollup"]["count"] > 0
    # Utilization probes are normalized busy fractions.
    assert 0.0 <= snap["series"]["server.cpu.util"]["rollup"]["max"] <= 1.0


def test_iscsi_stack_has_initiator_series():
    stack = make_stack("iscsi", telemetry=True)
    assert "client.iscsi.inflight" in stack.telemetry.series
    assert "client.cache.hits_s" in stack.telemetry.series


@pytest.mark.parametrize("kind", ["nfsv3", "iscsi"])
def test_telemetry_run_is_byte_identical(kind):
    def run(telemetry):
        stack = make_stack(kind, telemetry=telemetry)
        stack.run(WORKLOADS["smoke"](stack.client), name="smoke")
        counters = stack.transport.counters
        return (round(stack.sim.now, 12),
                counters.requests, counters.replies)

    assert run(False) == run(True)


# ---------------------------------------------------- runner + jobs merging


def _dash_cells():
    return [
        Cell("smoke/%s" % kind, "telemetry_run",
             {"kind": kind, "workload": "smoke"})
        for kind in ("nfsv3", "iscsi")
    ]


def test_runner_strips_telemetry_key_and_merges(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path), use_cache=False)
    results = runner.run(_dash_cells())
    for result in results.values():
        assert "__telemetry__" not in result
        assert result["completion_time_s"] > 0
    assert len(runner.telemetry_by_cell) == 2
    assert runner.telemetry is not None
    assert runner.telemetry["samples"] == sum(
        snap["samples"] for snap in runner.telemetry_by_cell.values())


def test_jobs_1_and_jobs_4_rollups_and_dashboards_match(tmp_path):
    def run(jobs, cache):
        runner = ExperimentRunner(jobs=jobs, cache_dir=str(tmp_path / cache),
                                  use_cache=False)
        runner.run(_dash_cells())
        return runner

    serial = run(None, "serial")
    pooled = run(4, "pooled")
    assert serial.telemetry_by_cell == pooled.telemetry_by_cell
    assert serial.telemetry == pooled.telemetry
    # The rendered artifacts are byte-identical too.
    assert (render_dashboard(serial.telemetry, title="t")
            == render_dashboard(pooled.telemetry, title="t"))
    assert (render_html([("t", serial.telemetry)], title="t")
            == render_html([("t", pooled.telemetry)], title="t"))


# -------------------------------------------------------------- dashboards


def test_sparkline_scales_and_pads():
    line = sparkline([0.0, 0.5, 1.0, None], width=4, lo=0.0, hi=1.0)
    assert len(line) == 4
    assert line[0] == " " and line[2] == "@" and line[3] == " "
    assert sparkline([], width=5, lo=0.0, hi=1.0) == " " * 5


def test_render_dashboard_sections_and_findings():
    sim = Simulator()
    telem = Telemetry(sim, interval=0.1, window=0.2)
    telem.add_series("u", lambda: 0.5, tag="util")
    telem.add_series("q", lambda: 2.0, tag="queue")
    telem.start()
    sim.run_process(iter(sim.timeout(1.0) for _ in range(1)))
    snap = telem.snapshot()
    text = render_dashboard(snap, title="unit", width=20)
    assert "dash: unit" in text
    assert "utilization" in text and "queue depth" in text
    assert "watcher findings: none" in text
    assert text.endswith("\n")
    # Pure ASCII so CI `cmp` and log viewers never mangle it.
    text.encode("ascii")

    snap["findings"] = [["T501", "q", "queue grew without bound"]]
    flagged = render_dashboard(snap, title="unit", width=20)
    assert "T501" in flagged and "queue grew" in flagged


def test_render_html_is_self_contained():
    sim = Simulator()
    telem = Telemetry(sim, interval=0.1, window=0.2)
    telem.add_series("u", lambda: 0.5, tag="util")
    telem.start()
    sim.run_process(iter(sim.timeout(0.5) for _ in range(1)))
    html = render_html([("section <one>", telem.snapshot())], title="t&c")
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html and "<style>" in html
    # No external fetches: a single file you can open from an artifact.
    assert "http://" not in html and "https://" not in html
    # Titles are escaped.
    assert "section &lt;one&gt;" in html and "t&amp;c" in html


# --------------------------------------------------------------- heartbeat


def test_heartbeat_rate_limited_beats_and_final():
    stream = io.StringIO()
    hb = Heartbeat("unit", stream=stream, min_interval=0.0)
    hb.maybe_beat(sim_now=1.5, events=1000, calendar=4)
    hb.progress(3, 10, 1)
    hb.final("done")
    out = stream.getvalue()
    assert "[hb unit]" in out
    assert "sim=1.500s" in out and "calendar=4" in out
    assert "cells 3/10 (1 cached)" in out
    assert "done" in out

    # With a high min_interval nothing beats (the limiter is seeded at
    # construction, so a just-started run stays silent)... except final.
    stream = io.StringIO()
    hb = Heartbeat("unit", stream=stream, min_interval=3600.0)
    hb.maybe_beat(sim_now=1.0, events=10, calendar=1)
    hb.progress(1, 4)
    assert stream.getvalue() == ""
    hb.final("wrapped up")
    assert "wrapped up" in stream.getvalue()


# --------------------------------------------------------------------- CLI


def test_cli_quick_stdout_identical_with_telemetry(tmp_path, capsys,
                                                   monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert cli.main(["quick"]) == 0
    plain = capsys.readouterr().out
    assert cli.main(["quick", "--telemetry"]) == 0
    captured = capsys.readouterr()
    assert captured.out == plain
    assert "telemetry:" in captured.err


def test_cli_dash_renders_and_exports_html(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    html_path = tmp_path / "dash.html"
    assert cli.main(["dash", "smoke", "--stack", "nfsv3", "iscsi",
                     "--html", str(html_path)]) == 0
    out = capsys.readouterr().out
    assert "smoke on nfsv3" in out
    assert "smoke on iscsi" in out
    assert "merged across 2 stacks" in out
    html = html_path.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "smoke on nfsv3" in html


def test_finding_equality_and_repr():
    a = TelemetryFinding("T501", "q", "grew")
    b = TelemetryFinding("T501", "q", "grew")
    assert a == b
    assert a != TelemetryFinding("T502", "q", "grew")
    assert "T501" in repr(a)
