"""repro.check.fixer: autofix rewrites, idempotency, output identity.

The acceptance contract for ``repro lint --fix``: on a fixture tree
seeded with fixable violations it produces a lint-clean result, a
second run is a no-op, and the *simulated output* of the fixed program
is byte-identical to the original (the rewrites only impose the
deterministic order on already order-independent results).
"""

from __future__ import annotations

import subprocess
import sys

from repro.check import simlint
from repro.check.fixer import fix_paths, fix_source


def remaining(source):
    return [v.code for v in simlint.lint_source(source)]


# ------------------------------------------------------------ single fixes


def test_fix_wraps_set_iteration_in_sorted():
    fixed, count = fix_source("for name in {'b', 'a'}:\n    print(name)\n")
    assert count == 1
    assert "for name in sorted({'b', 'a'}):" in fixed
    assert remaining(fixed) == []


def test_fix_wraps_laundered_set_iteration():
    src = ("names = set(items)\n"
           "for name in names:\n"
           "    print(name)\n")
    fixed, count = fix_source(src)
    assert count == 1
    assert "for name in sorted(names):" in fixed
    assert remaining(fixed) == []


def test_fix_wraps_dict_view_from_set():
    src = ("d = {k: 0 for k in {'b', 'a'}}\n"
           "for k in d.keys():\n"
           "    print(k)\n")
    fixed, _count = fix_source(src)
    assert "sorted(d.keys())" in fixed
    assert remaining(fixed) == []


def test_fix_seeds_bare_random():
    fixed, count = fix_source("import random\nrng = random.Random()\n")
    assert count == 1
    assert "random.Random(0)" in fixed
    assert remaining(fixed) == []


def test_fix_inserts_tracer_guard():
    src = ("def step(tracer, value):\n"
           "    tracer.instant('v', value)\n")
    fixed, count = fix_source(src)
    assert count == 1
    assert "    if tracer.enabled:\n        tracer.instant" in fixed
    assert remaining(fixed) == []


def test_fix_inserts_telem_and_recorder_guards():
    src = ("def push(self, value):\n"
           "    self.telem.observe('lat', value)\n"
           "    self.recorder.note_event(value)\n")
    fixed, count = fix_source(src)
    assert count == 2
    assert "if self.telem is not None:" in fixed
    assert "if self.recorder is not None:" in fixed
    assert remaining(fixed) == []


def test_fix_respects_suppressions():
    src = ("for name in {'b', 'a'}:"
           "  # simlint: disable=D103 -- order-free side effect\n"
           "    print(name)\n")
    fixed, count = fix_source(src)
    assert count == 0 and fixed == src


def test_fix_leaves_unfixable_rules_alone():
    src = "import time\nt = time.time()\n"
    fixed, count = fix_source(src)
    assert count == 0 and fixed == src
    assert remaining(fixed) == ["D101"]


# --------------------------------------------------------- the fixture tree


_FIXTURE = """\
import random


class NullTracer:
    enabled = False

    def instant(self, name, value):
        pass


def run():
    values = set([3, 1, 2, 40])
    acc = 0
    for value in values:
        acc = acc + value
    rng = random.Random()
    rng.random()
    tracer = NullTracer()
    tracer.instant('acc', acc)
    print(acc)


if __name__ == '__main__':
    run()
"""


def _run(path):
    return subprocess.run([sys.executable, str(path)], capture_output=True,
                          check=True).stdout


def test_fix_tree_becomes_clean_with_byte_identical_output(tmp_path):
    target = tmp_path / "sim_fixture.py"
    target.write_text(_FIXTURE)
    assert simlint.lint_paths([str(tmp_path)]) != []
    before = _run(target)

    fixed = fix_paths([str(tmp_path)])
    assert fixed == {str(target): 3}  # D103 + D102 + O301
    assert simlint.lint_paths([str(tmp_path)]) == []
    assert _run(target) == before


def test_fix_is_idempotent(tmp_path):
    target = tmp_path / "sim_fixture.py"
    target.write_text(_FIXTURE)
    fix_paths([str(tmp_path)])
    first = target.read_text()
    assert fix_paths([str(tmp_path)]) == {}
    assert target.read_text() == first
