"""Tests for repro.obs.bench and the ``repro bench`` CLI."""

import copy
import json

import pytest

from repro import cli
from repro.obs import bench


# -------------------------------------------------------------------- run_case

@pytest.fixture(scope="module")
def smoke_case():
    """One traced smoke run on NFSv3 (module-cached; ~50 ms)."""
    return bench.run_case("smoke", "nfsv3")


def test_run_case_record_shape(smoke_case):
    record = smoke_case
    assert record["workload"] == "smoke"
    assert record["stack"] == "nfsv3"
    assert record["completion_time_s"] > 0
    assert record["total_time_s"] >= record["completion_time_s"]
    assert record["messages"] > 0
    assert record["bytes"] > 0
    assert record["retransmissions"] == 0
    # One syscall entry per distinct op the workload issued.
    assert set(record["syscalls"]) >= {"mkdir", "creat", "fsync", "close"}
    for entry in record["syscalls"].values():
        assert entry["count"] >= 1
        assert entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
    # Attribution covers at least the syscall and disk layers.
    assert "syscall" in record["attribution"]
    assert "disk" in record["attribution"]
    for layer in record["attribution"].values():
        assert layer["exclusive_s"] <= layer["inclusive_s"] + 1e-9
    assert record["critical_path"]
    assert all(seconds >= 0 for _name, seconds in record["critical_path"])
    assert any(name.endswith(".cpu") for name in record["resources"])


def test_run_case_is_deterministic(smoke_case):
    again = bench.run_case("smoke", "nfsv3")
    assert again == smoke_case


def test_run_case_rejects_unknown_workload():
    with pytest.raises(KeyError):
        bench.run_case("no-such-workload", "nfsv3")


def test_run_suite_rejects_unknown_suite():
    with pytest.raises(ValueError):
        bench.run_suite("no-such-suite")


def test_suites_reference_known_workloads():
    for suite, entries in bench.SUITES.items():
        for workload, kinds in entries:
            assert workload in bench.WORKLOADS, (suite, workload)
            assert kinds


# ------------------------------------------------------------------- documents

def _fake_suite():
    """A tiny hand-built suite document (avoids re-running workloads)."""
    return {
        "schema": bench.SCHEMA_VERSION,
        "suite": "fake",
        "cases": {
            "smoke/nfsv3": {"completion_time_s": 1.0, "messages": 100},
            "smoke/iscsi": {"completion_time_s": 2.0, "messages": 80},
        },
    }


def test_write_and_load_round_trip(tmp_path):
    doc = _fake_suite()
    path = tmp_path / "BENCH_fake.json"
    bench.write_bench(doc, str(path))
    assert bench.load_bench(str(path)) == doc
    # Stable output: sorted keys, trailing newline.
    text = path.read_text()
    assert text.endswith("\n")
    assert text == json.dumps(doc, indent=2, sort_keys=True) + "\n"


def test_compare_identical_documents_is_clean():
    doc = _fake_suite()
    regressions, notes = bench.compare(doc, copy.deepcopy(doc))
    assert regressions == []
    assert notes == []
    assert "ok" in bench.format_compare(regressions, notes)


def test_compare_flags_completion_time_regression():
    old = _fake_suite()
    new = copy.deepcopy(old)
    new["cases"]["smoke/nfsv3"]["completion_time_s"] = 1.5
    regressions, _notes = bench.compare(old, new, tolerance=0.15)
    assert [r["metric"] for r in regressions] == ["completion_time_s"]
    assert "REGRESSION" in bench.format_compare(regressions, _notes)


def test_compare_within_tolerance_is_not_a_regression():
    old = _fake_suite()
    new = copy.deepcopy(old)
    new["cases"]["smoke/nfsv3"]["completion_time_s"] = 1.10
    regressions, _notes = bench.compare(old, new, tolerance=0.15)
    assert regressions == []


def test_compare_flags_any_message_count_drift():
    old = _fake_suite()
    new = copy.deepcopy(old)
    new["cases"]["smoke/iscsi"]["messages"] = 81  # off by one is enough
    regressions, _notes = bench.compare(old, new)
    assert [r["metric"] for r in regressions] == ["messages"]


def test_compare_flags_missing_case_and_notes_new_case():
    old = _fake_suite()
    new = copy.deepcopy(old)
    del new["cases"]["smoke/iscsi"]
    new["cases"]["postmark/nfsv3"] = {"completion_time_s": 1.0,
                                      "messages": 10}
    regressions, notes = bench.compare(old, new)
    assert [r["metric"] for r in regressions] == ["presence"]
    assert any("new case" in note for note in notes)


def test_compare_flags_schema_mismatch():
    old = _fake_suite()
    new = copy.deepcopy(old)
    new["schema"] = bench.SCHEMA_VERSION + 1
    regressions, _notes = bench.compare(old, new)
    assert [r["metric"] for r in regressions] == ["schema"]


def test_compare_notes_improvements():
    old = _fake_suite()
    new = copy.deepcopy(old)
    new["cases"]["smoke/nfsv3"]["completion_time_s"] = 0.5
    regressions, notes = bench.compare(old, new)
    assert regressions == []
    assert any("improved" in note for note in notes)


# ------------------------------------------------------------------------- CLI

def test_format_compare_json_shapes():
    doc = _fake_suite()
    regressions, notes = bench.compare(doc, copy.deepcopy(doc))
    clean = json.loads(bench.format_compare_json(regressions, notes))
    assert clean == {"ok": True, "regressions": [], "notes": []}

    new = copy.deepcopy(doc)
    new["cases"]["smoke/nfsv3"]["completion_time_s"] = 9.9
    regressions, notes = bench.compare(doc, new)
    bad = json.loads(bench.format_compare_json(regressions, notes))
    assert bad["ok"] is False
    assert bad["regressions"] == regressions
    # Stable bytes: sorted keys, trailing newline.
    text = bench.format_compare_json(regressions, notes)
    assert text.endswith("\n")
    assert text == json.dumps(json.loads(text), indent=2,
                              sort_keys=True) + "\n"


def test_cli_bench_compare_json_format(tmp_path, capsys):
    old = _fake_suite()
    new = copy.deepcopy(old)
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    bench.write_bench(old, str(old_path))
    bench.write_bench(new, str(new_path))
    assert cli.main(["bench", "--compare", str(old_path), str(new_path),
                     "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True

    # The exit-code contract is unchanged by the output format.
    new["cases"]["smoke/nfsv3"]["completion_time_s"] = 9.9
    bench.write_bench(new, str(new_path))
    assert cli.main(["bench", "--compare", str(old_path), str(new_path),
                     "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is False
    assert doc["regressions"]


def test_cli_bench_compare_exit_codes(tmp_path, capsys):
    old = _fake_suite()
    new = copy.deepcopy(old)
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    bench.write_bench(old, str(old_path))
    bench.write_bench(new, str(new_path))
    assert cli.main(["bench", "--compare", str(old_path),
                     str(new_path)]) == 0
    assert "ok" in capsys.readouterr().out

    new["cases"]["smoke/nfsv3"]["completion_time_s"] = 9.9
    bench.write_bench(new, str(new_path))
    assert cli.main(["bench", "--compare", str(old_path),
                     str(new_path)]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_cli_bench_compare_honors_tolerance(tmp_path, capsys):
    old = _fake_suite()
    new = copy.deepcopy(old)
    new["cases"]["smoke/nfsv3"]["completion_time_s"] = 1.5
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    bench.write_bench(old, str(old_path))
    bench.write_bench(new, str(new_path))
    assert cli.main(["bench", "--compare", str(old_path), str(new_path),
                     "--tolerance", "0.6"]) == 0
    capsys.readouterr()


def test_cli_bench_runs_suite_and_writes_json(tmp_path, capsys, monkeypatch):
    # Patch in a one-case suite so the CLI path stays fast.
    monkeypatch.setitem(bench.SUITES, "tiny", (("smoke", ("iscsi",)),))
    out_path = tmp_path / "BENCH_tiny.json"
    assert cli.main(["bench", "--suite", "tiny",
                     "--out", str(out_path)]) == 0
    captured = capsys.readouterr().out
    assert "smoke/iscsi" in captured
    doc = bench.load_bench(str(out_path))
    assert doc["schema"] == bench.SCHEMA_VERSION
    assert doc["suite"] == "tiny"
    assert set(doc["cases"]) == {"smoke/iscsi"}


def test_committed_baseline_matches_current_schema():
    # The committed gate file must stay loadable and schema-current.
    import os
    baseline = os.path.join(os.path.dirname(__file__), "..",
                            "BENCH_quick.json")
    doc = bench.load_bench(baseline)
    assert doc["schema"] == bench.SCHEMA_VERSION
    assert doc["suite"] == "quick"
    expected = {"%s/%s" % (workload, kind)
                for workload, kinds in bench.SUITES["quick"]
                for kind in kinds}
    assert set(doc["cases"]) == expected
