"""Unit tests for the ext3-like filesystem and its journal."""

import pytest

from repro.fs import (
    DirectoryNotEmpty,
    Ext3Fs,
    FileExists,
    FileNotFound,
    IsADirectory,
    ROOT_INO,
    Vfs,
)
from repro.storage import Raid5Volume


@pytest.fixture
def fs(sim):
    raid = Raid5Volume(sim)
    filesystem = Ext3Fs(sim, raid, cache_bytes=64 * 1024 * 1024)
    sim.run_process(filesystem.mount())
    return filesystem


@pytest.fixture
def vfs(fs):
    return Vfs(fs)


def run(sim, gen):
    return sim.run_process(gen)


# ---------------------------------------------------------------- basics

def test_root_exists(fs):
    assert fs.inodes[ROOT_INO].is_dir


def test_create_and_lookup(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        inode = yield from fs.create(root, "hello")
        found = yield from fs.dir_lookup(root, "hello")
        return inode.ino, found

    ino, found = run(sim, work())
    assert ino == found


def test_create_duplicate_rejected(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        yield from fs.create(root, "x")
        yield from fs.create(root, "x")

    with pytest.raises(FileExists):
        run(sim, work())


def test_lookup_missing_raises(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        yield from fs.dir_lookup(root, "ghost")

    with pytest.raises(FileNotFound):
        run(sim, work())


def test_mkdir_updates_parent_nlink(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        before = root.nlink
        yield from fs.mkdir(root, "sub")
        return before, root.nlink

    before, after = run(sim, work())
    assert after == before + 1


def test_rmdir_refuses_nonempty(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        sub = yield from fs.mkdir(root, "sub")
        yield from fs.create(sub, "f")
        yield from fs.rmdir(root, "sub")

    with pytest.raises(DirectoryNotEmpty):
        run(sim, work())


def test_unlink_frees_inode_and_blocks(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        inode = yield from fs.create(root, "data")
        yield from fs.write_file(inode, 0, 64 * 1024)
        used_blocks = fs.block_alloc.used
        used_inodes = fs.inode_alloc.used
        yield from fs.unlink(root, "data")
        return used_blocks, fs.block_alloc.used, used_inodes, fs.inode_alloc.used

    blocks_before, blocks_after, inodes_before, inodes_after = run(sim, work())
    assert blocks_after < blocks_before
    assert inodes_after == inodes_before - 1


def test_hard_link_shares_inode(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        inode = yield from fs.create(root, "a")
        yield from fs.link(root, "b", inode)
        found = yield from fs.dir_lookup(root, "b")
        return inode.ino, found, inode.nlink

    ino, found, nlink = run(sim, work())
    assert found == ino and nlink == 2


def test_link_then_unlink_keeps_file(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        inode = yield from fs.create(root, "a")
        yield from fs.write_file(inode, 0, 4096)
        yield from fs.link(root, "b", inode)
        yield from fs.unlink(root, "a")
        still = yield from fs.dir_lookup(root, "b")
        return still, inode.nlink

    found, nlink = run(sim, work())
    assert nlink == 1
    assert found in fs.inodes


def test_rename_moves_entry(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        sub = yield from fs.mkdir(root, "sub")
        inode = yield from fs.create(root, "old")
        yield from fs.rename(root, "old", sub, "new")
        found = yield from fs.dir_lookup(sub, "new")
        return inode.ino, found, "old" in root.entries

    ino, found, still_there = run(sim, work())
    assert found == ino and not still_there


def test_rename_replaces_target(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        a = yield from fs.create(root, "a")
        b = yield from fs.create(root, "b")
        yield from fs.rename(root, "a", root, "b")
        found = yield from fs.dir_lookup(root, "b")
        return a.ino, found, b.ino in fs.inodes

    a_ino, found, b_alive = run(sim, work())
    assert found == a_ino and not b_alive


def test_symlink_roundtrip(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        yield from fs.symlink(root, "sl", "/target/path")
        ino = yield from fs.dir_lookup(root, "sl")
        inode = yield from fs.iget(ino)
        target = yield from fs.readlink(inode)
        return target

    assert run(sim, work()) == "/target/path"


def test_truncate_shrinks_and_frees(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        inode = yield from fs.create(root, "big")
        yield from fs.write_file(inode, 0, 100 * 4096)
        used = fs.block_alloc.used
        yield from fs.truncate(inode, 4096)
        return used, fs.block_alloc.used, inode.size

    used_before, used_after, size = run(sim, work())
    assert size == 4096
    assert used_after < used_before


def test_write_then_read_roundtrip_sizes(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        inode = yield from fs.create(root, "f")
        yield from fs.write_file(inode, 0, 10_000)
        got = yield from fs.read_file(inode, 0, 1 << 20)
        short = yield from fs.read_file(inode, 9_000, 5_000)
        return inode.size, got, short

    size, got, short = run(sim, work())
    assert size == 10_000
    assert got == 10_000
    assert short == 1_000


def test_sparse_write_allocates_only_touched_blocks(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        inode = yield from fs.create(root, "sparse")
        used = fs.block_alloc.used
        yield from fs.write_file(inode, 5 * 4096, 4096)
        return inode.size, fs.block_alloc.used - used, inode.block_map

    size, allocated, block_map = run(sim, work())
    assert size == 6 * 4096
    assert allocated == 1
    assert sum(1 for b in block_map if b >= 0) == 1


def test_sequential_writes_physically_contiguous(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        inode = yield from fs.create(root, "seq")
        for i in range(32):
            yield from fs.write_file(inode, i * 4096, 4096)
        return inode.block_map

    block_map = run(sim, work())
    deltas = [block_map[i + 1] - block_map[i] for i in range(31)]
    # At most one discontinuity (where the indirect pointer block was
    # allocated mid-stream); everything else is physically contiguous.
    assert sum(1 for d in deltas if d != 1) <= 1


def test_large_file_uses_pointer_blocks(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        inode = yield from fs.create(root, "huge")
        yield from fs.write_file(inode, 0, 64 * 4096)
        return inode.map_blocks

    map_blocks = run(sim, work())
    assert len(map_blocks) >= 1   # 64 blocks > 12 direct pointers


def test_write_to_directory_rejected(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        yield from fs.write_file(root, 0, 10)

    with pytest.raises(IsADirectory):
        run(sim, work())


def test_directory_spreading_vs_file_clustering(sim, fs):
    """Directories land in fresh inode-table blocks; files cluster."""
    def work():
        root = yield from fs.iget(ROOT_INO)
        d1 = yield from fs.mkdir(root, "d1")
        d2 = yield from fs.mkdir(d1, "d2")
        f1 = yield from fs.create(d1, "f1")
        f2 = yield from fs.create(d1, "f2")
        return d1.ino, d2.ino, f1.ino, f2.ino

    d1, d2, f1, f2 = run(sim, work())
    per_block = fs.params.inodes_per_block
    assert d1 // per_block != d2 // per_block   # spread (different parent)
    assert f1 // per_block == f2 // per_block   # clustering near d1


# ---------------------------------------------------------------- journal

def test_journal_aggregates_repeated_updates(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        inode = yield from fs.create(root, "f")
        for _ in range(50):
            yield from fs.setattr(inode, mode=0o600)
        return fs.journal.pending_metadata

    pending = run(sim, work())
    assert pending <= 8   # 50 updates collapse to a handful of blocks


def test_journal_commit_clears_transaction(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        yield from fs.create(root, "f")
        yield from fs.journal.commit()
        return fs.journal.pending_metadata, fs.journal.commits

    pending, commits = run(sim, work())
    assert pending == 0 and commits == 1


def test_journal_checkpoint_writes_in_place(sim, fs):
    def work():
        root = yield from fs.iget(ROOT_INO)
        yield from fs.create(root, "f")
        yield from fs.journal.commit()
        before = fs.device.stats.write_ops
        yield from fs.journal.checkpoint()
        return before, fs.device.stats.write_ops

    before, after = run(sim, work())
    assert after > before


def test_cold_remount_preserves_namespace(sim, fs):
    vfs = Vfs(fs)

    def work():
        yield from vfs.mkdir("/keep")
        fd = yield from vfs.creat("/keep/file")
        yield from vfs.write(fd, 8192)
        yield from vfs.close(fd)
        yield from vfs.remount_cold()
        st = yield from vfs.stat("/keep/file")
        return st.size

    assert run(sim, work()) == 8192


def test_fsync_flushes_file_data(sim, fs):
    vfs = Vfs(fs)

    def work():
        fd = yield from vfs.creat("/f")
        yield from vfs.write(fd, 16 * 4096)
        before = fs.device.stats.write_ops
        yield from vfs.fsync(fd)
        return before, fs.device.stats.write_ops

    before, after = run(sim, work())
    assert after > before
    assert fs.cache.dirty_blocks == 0 or fs.journal.pending_metadata == 0
