"""Tests for repro.obs — the tracing & metrics layer (simulated Ethereal)."""
# simlint: disable-file=O301 -- tests drive the tracer directly; the guard is the production contract under test

import json

import pytest

from repro.cli import main
from repro.core.comparison import make_stack
from repro.obs import (
    NULL_TRACER,
    LatencyHistogram,
    NullTracer,
    Tracer,
    chrome_trace,
    format_op_summary,
    packet_trace_lines,
    render_span_tree,
    render_timeline_diff,
)
from repro.sim import Simulator


# ---------------------------------------------------------------- unit: tracer

def test_null_tracer_is_disabled_and_inert():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.begin_span("x") is None
    NULL_TRACER.end_span(None)
    NULL_TRACER.instant("x")
    assert NULL_TRACER.current_span_id() is None


def test_null_tracer_wrap_is_passthrough():
    sim = Simulator()

    def inner():
        yield sim.timeout(1.0)
        return 42

    def outer():
        result = yield from NULL_TRACER.wrap("x", inner())
        return result

    assert sim.run_process(outer()) == 42


def test_spans_nest_within_a_process():
    sim = Simulator()
    tracer = Tracer(sim)

    def work():
        outer = tracer.begin_span("outer")
        yield sim.timeout(1.0)
        inner = tracer.begin_span("inner")
        yield sim.timeout(2.0)
        tracer.end_span(inner)
        tracer.end_span(outer)
        return None

    sim.run_process(work())
    by_name = {span.name: span for span in tracer.spans}
    assert by_name["inner"].parent == by_name["outer"].id
    assert by_name["outer"].parent is None
    assert by_name["inner"].duration == pytest.approx(2.0)
    assert by_name["outer"].duration == pytest.approx(3.0)


def test_trace_parent_carries_across_spawned_processes():
    sim = Simulator()
    tracer = Tracer(sim)

    def child():
        span = tracer.begin_span("child")
        yield sim.timeout(1.0)
        tracer.end_span(span)

    def parent():
        span = tracer.begin_span("parent")
        job = sim.spawn(child())
        job.trace_parent = tracer.current_span_id()
        yield job
        tracer.end_span(span)

    sim.run_process(parent())
    by_name = {span.name: span for span in tracer.spans}
    assert by_name["child"].parent == by_name["parent"].id


def test_wrap_records_span_and_returns_value():
    sim = Simulator()
    tracer = Tracer(sim)

    def inner():
        yield sim.timeout(0.5)
        return "done"

    def outer():
        result = yield from tracer.wrap("wrapped", inner(), cat="test")
        return result

    assert sim.run_process(outer()) == "done"
    (span,) = tracer.find_spans("wrapped")
    assert span.cat == "test"
    assert span.duration == pytest.approx(0.5)


def test_end_span_feeds_latency_histogram():
    sim = Simulator()
    tracer = Tracer(sim)

    def work():
        for delay in (0.001, 0.002, 0.004):
            span = tracer.begin_span("op")
            yield sim.timeout(delay)
            tracer.end_span(span)

    sim.run_process(work())
    hist = tracer.histograms["op"]
    assert hist.count == 3
    assert hist.mean == pytest.approx((0.001 + 0.002 + 0.004) / 3)
    assert hist.percentile(0.50) >= 0.001


def test_latency_histogram_percentiles_are_monotone():
    hist = LatencyHistogram()
    for value in (0.0001, 0.001, 0.01, 0.1, 1.0):
        hist.record(value)
    p50 = hist.percentile(0.50)
    p95 = hist.percentile(0.95)
    p99 = hist.percentile(0.99)
    assert p50 <= p95 <= p99
    assert hist.count == 5


def test_latency_histogram_empty_reports_zero():
    hist = LatencyHistogram()
    assert hist.count == 0
    assert hist.mean == 0.0
    for fraction in (0.0, 0.5, 0.95, 1.0):
        assert hist.percentile(fraction) == 0.0


def test_latency_histogram_single_sample_is_exact_at_every_percentile():
    hist = LatencyHistogram()
    hist.record(0.000991536)  # deliberately between bucket edges
    for fraction in (0.01, 0.5, 0.95, 0.99, 1.0):
        assert hist.percentile(fraction) == 0.000991536
    assert hist.min == hist.max == 0.000991536


def test_latency_histogram_overflow_values_report_exact_max():
    hist = LatencyHistogram()
    beyond = LatencyHistogram.EDGES[-1] * 4.0  # above the top bucket
    hist.record(beyond)
    assert hist.overflow == 1
    assert hist.percentile(0.99) == beyond
    hist.record(0.001)
    assert hist.overflow == 1
    assert hist.percentile(0.99) == beyond
    assert hist.max == beyond and hist.min == 0.001


def test_latency_histogram_value_exactly_on_top_edge_is_not_overflow():
    hist = LatencyHistogram()
    hist.record(LatencyHistogram.EDGES[-1])
    assert hist.overflow == 0
    assert hist.percentile(0.5) == LatencyHistogram.EDGES[-1]


def test_latency_histogram_percentiles_clamped_into_observed_range():
    # Bucket upper edges can overshoot the true max and undershoot the
    # true min; the answer must stay inside [min, max] regardless.
    hist = LatencyHistogram()
    for value in (0.0015, 0.0017, 0.0019):  # all in the (1.024, 2.048] ms bucket
        hist.record(value)
    for fraction in (0.1, 0.5, 0.99):
        answer = hist.percentile(fraction)
        assert hist.min <= answer <= hist.max


def test_latency_histogram_fraction_zero_returns_min():
    hist = LatencyHistogram()
    hist.record(0.002)
    hist.record(0.010)
    assert hist.percentile(0.0) == 0.002


def test_probe_sampling_records_counter_samples():
    sim = Simulator()
    tracer = Tracer(sim)
    ticks = {"n": 0.0}
    tracer.add_probe("gauge.x", lambda: ticks["n"], kind="gauge")
    tracer.start_sampling(interval=1.0)

    def work():
        for _ in range(5):
            ticks["n"] += 1.0
            yield sim.timeout(1.0)

    sim.run_process(work())
    samples = [s for s in tracer.samples if s.name == "gauge.x"]
    assert len(samples) >= 4
    assert samples[-1].value > samples[0].value


def test_probe_added_after_start_sampling_is_sampled():
    # Regression: probes registered after start_sampling() used to be
    # silently dropped (the sampler only saw the snapshot at start).
    sim = Simulator()
    tracer = Tracer(sim)
    ticks = {"n": 0.0}
    tracer.start_sampling(interval=1.0)
    tracer.add_probe("late.gauge", lambda: ticks["n"], kind="gauge")
    tracer.add_probe("late.rate", lambda: ticks["n"], kind="rate")

    def work():
        for _ in range(5):
            ticks["n"] += 1.0
            yield sim.timeout(1.0)

    sim.run_process(work())
    gauge = [s for s in tracer.samples if s.name == "late.gauge"]
    rate = [s for s in tracer.samples if s.name == "late.rate"]
    assert len(gauge) >= 4, "late-registered probe was never sampled"
    assert gauge[-1].value > gauge[0].value
    # The rate probe's baseline was seeded at registration, so the first
    # sample reflects only growth since then (~1 tick/s), not a spike.
    assert rate and max(s.value for s in rate) <= 2.0


def test_start_sampling_before_any_probe_still_samples():
    # start_sampling() with zero probes must remember the request and
    # begin sampling once the first probe arrives.
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.start_sampling(interval=0.5)
    assert tracer._sampler is None  # nothing to sample yet
    ticks = {"n": 0.0}
    tracer.add_probe("g", lambda: ticks["n"], kind="gauge")

    def work():
        for _ in range(4):
            ticks["n"] += 1.0
            yield sim.timeout(0.5)

    sim.run_process(work())
    assert [s for s in tracer.samples if s.name == "g"]


# ------------------------------------------------------- stack-level tracing

def _age(stack, seconds):
    yield stack.sim.timeout(seconds)


def _warm_read_stack(kind):
    """Prime a 1-block file, age past attr validity, then re-read it."""
    stack = make_stack(kind, trace=True)
    client = stack.client
    fd = stack.run(client.creat("/f"))
    stack.run(client.pwrite(fd, 4096, 0))
    stack.run(client.fsync(fd))
    stack.run(client.pread(fd, 4096, 0))
    stack.quiesce()
    stack.run(_age(stack, 4.0))
    first_msg = len(stack.tracer.messages)
    stack.run(client.pread(fd, 4096, 0))
    return stack, stack.tracer.messages[first_msg:]


def test_nfsv3_warm_read_is_one_rpc_pair():
    # Paper, Table 3 methodology: a warm 1-block read on NFS v3 costs one
    # GETATTR round trip (attr revalidation) and no READ — the data is
    # served from the client page cache.
    stack, messages = _warm_read_stack("nfsv3")
    assert len(messages) == 2
    assert [m.kind for m in messages] == ["request", "reply"]
    assert {m.op for m in messages} == {"GETATTR"}
    # The span tree agrees: the last pread has exactly one RPC child.
    pread = stack.tracer.find_spans("syscall:pread")[-1]
    rpcs = [span for span in stack.tracer.subtree(pread)
            if span.cat == "rpc" and span.track == "client"]
    assert [span.name for span in rpcs] == ["rpc:GETATTR"]


def test_iscsi_warm_read_is_network_silent():
    # Paper, Table 3: iSCSI satisfies a warm read entirely from the
    # client-side ext3 buffer cache — zero network messages.
    stack, messages = _warm_read_stack("iscsi")
    assert messages == []
    pread = stack.tracer.find_spans("syscall:pread")[-1]
    rpcs = [span for span in stack.tracer.subtree(pread)
            if span.cat == "rpc"]
    assert rpcs == []


def test_serve_span_parents_to_client_call_span():
    stack, _messages = _warm_read_stack("nfsv3")
    call = stack.tracer.find_spans("rpc:GETATTR")[-1]
    serves = [span for span in stack.tracer.spans
              if span.name == "serve:GETATTR" and span.parent == call.id]
    assert serves, "server-side serve span must parent to the client call"


def test_tracing_does_not_change_message_counts():
    def workload(client):
        yield from client.mkdir("/d")
        fd = yield from client.creat("/d/f")
        yield from client.write(fd, 16_384)
        yield from client.fsync(fd)
        yield from client.pread(fd, 4096, 0)
        yield from client.close(fd)
        yield from client.stat("/d/f")

    for kind in ("nfsv3", "iscsi"):
        deltas = []
        for trace in (False, True):
            stack = make_stack(kind, trace=trace)
            snap = stack.snapshot()
            stack.run(workload(stack.client))
            stack.quiesce()
            deltas.append(stack.delta(snap))
        untraced, traced = deltas
        assert traced.messages == untraced.messages
        assert traced.total_bytes == untraced.total_bytes
        assert traced.by_op == untraced.by_op


def test_traced_message_count_matches_transport_counters():
    stack, _messages = _warm_read_stack("nfsv3")
    # The tracer logs both directions; counters report request/reply pairs.
    assert len(stack.tracer.messages) == (
        stack.counters.requests + stack.counters.replies)


def test_untraced_stack_exposes_raw_client_and_null_tracer():
    stack = make_stack("nfsv3")
    assert isinstance(stack.tracer, NullTracer)
    assert not stack.tracer.enabled
    assert stack.client is stack.raw_client


# ---------------------------------------------------------------- exporters

def test_packet_trace_lines_are_valid_json():
    stack, _messages = _warm_read_stack("nfsv3")
    lines = packet_trace_lines(stack.tracer)
    assert lines
    for line in lines:
        record = json.loads(line)
        assert {"t", "dir", "op", "kind", "hdr", "pay"} <= set(record)
        assert record["dir"] in ("c2s", "s2c")


def test_chrome_trace_structure():
    stack, _messages = _warm_read_stack("nfsv3")
    data = chrome_trace(stack.tracer)
    events = data["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == len(stack.tracer.spans)
    for event in spans:
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)
        assert event["dur"] >= 0
    assert {e["pid"] for e in events} <= {1, 2, 3}
    assert any(e["ph"] == "M" for e in events)


def test_write_chrome_trace_round_trips_through_json(tmp_path):
    from repro.obs import write_chrome_trace

    stack, _messages = _warm_read_stack("nfsv3")
    path = tmp_path / "trace.json"
    write_chrome_trace(stack.tracer, str(path))
    assert json.loads(path.read_text()) == chrome_trace(stack.tracer)


def test_write_packet_trace_round_trips_through_jsonl(tmp_path):
    from repro.obs import write_packet_trace

    stack, _messages = _warm_read_stack("nfsv3")
    path = tmp_path / "trace.jsonl"
    write_packet_trace(stack.tracer, str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == len(stack.tracer.messages)
    parsed = [json.loads(line) for line in lines]
    for record, message in zip(parsed, stack.tracer.messages):
        assert record["op"] == message.op
        assert record["t"] == pytest.approx(message.t)
        assert record["hdr"] == message.header_bytes
        assert record["pay"] == message.payload_bytes


def test_chrome_trace_pids_and_tids_stable_across_identical_runs():
    # Exporter determinism: the same workload twice must yield identical
    # lane assignments (pid/tid), so exports are diffable artifacts.
    first, _m1 = _warm_read_stack("nfsv3")
    second, _m2 = _warm_read_stack("nfsv3")
    events_a = chrome_trace(first.tracer)["traceEvents"]
    events_b = chrome_trace(second.tracer)["traceEvents"]
    lanes_a = [(e["name"], e["pid"], e["tid"]) for e in events_a
               if e["ph"] == "X"]
    lanes_b = [(e["name"], e["pid"], e["tid"]) for e in events_b
               if e["ph"] == "X"]
    assert lanes_a == lanes_b

    # Beyond lanes, the full event streams agree too — except xids,
    # which come from a process-global counter and keep climbing
    # across stacks built in the same interpreter.
    def masked(events):
        out = []
        for event in events:
            event = dict(event)
            if "args" in event:
                event["args"] = {k: v for k, v in event["args"].items()
                                 if k != "xid"}
            out.append(event)
        return out

    assert masked(events_a) == masked(events_b)


def test_op_summary_lists_each_rpc_op_once():
    stack, _messages = _warm_read_stack("nfsv3")
    text = format_op_summary(stack.tracer)
    rows = [line.split()[0] for line in text.splitlines()[2:]]
    assert "GETATTR" in rows
    assert len(rows) == len(set(rows))


def test_render_span_tree_indents_children():
    stack, _messages = _warm_read_stack("nfsv3")
    pread = stack.tracer.find_spans("syscall:pread")[-1]
    text = render_span_tree(stack.tracer, roots=[pread])
    lines = text.splitlines()
    assert "syscall:pread" in lines[0]
    assert any("rpc:GETATTR" in line for line in lines[1:])


def test_render_timeline_diff_has_both_columns():
    nfs, _m1 = _warm_read_stack("nfsv3")
    iscsi, _m2 = _warm_read_stack("iscsi")
    text = render_timeline_diff(nfs.tracer, "nfsv3", iscsi.tracer, "iscsi")
    assert "nfsv3" in text.splitlines()[0]
    assert "iscsi" in text.splitlines()[0]
    assert any("GETATTR" in line for line in text.splitlines())
    assert any("SCSI_READ" in line for line in text.splitlines())


# ---------------------------------------------------------------- CLI

def test_cli_trace_writes_valid_chrome_trace(tmp_path, capsys):
    out = tmp_path / "t.json"
    assert main(["trace", "postmark", "--stack", "nfsv3",
                 "--out", str(out)]) == 0
    data = json.loads(out.read_text())
    events = data["traceEvents"]
    assert [e for e in events if e["ph"] == "X"]
    assert [e for e in events if e["ph"] == "i"]
    assert "op " in capsys.readouterr().out


def test_cli_trace_jsonl_and_tree(tmp_path, capsys):
    jsonl = tmp_path / "t.jsonl"
    assert main(["trace", "smoke", "--stack", "iscsi",
                 "--jsonl", str(jsonl), "--tree"]) == 0
    for line in jsonl.read_text().splitlines():
        json.loads(line)
    assert "syscall:" in capsys.readouterr().out


def test_cli_trace_diff_mode(capsys):
    assert main(["trace", "smoke", "--stack", "nfsv3",
                 "--diff", "iscsi", "--limit", "10"]) == 0
    output = capsys.readouterr().out
    assert "nfsv3" in output
    assert "iscsi" in output
