"""Unit and property tests for the disk layout and allocators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs import DiskLayout, ExtentAllocator, IdAllocator, NoSpace


# ---------------------------------------------------------------- layout

def test_layout_regions_do_not_overlap():
    layout = DiskLayout(total_blocks=1_000_000)
    boundaries = [
        layout.superblock,
        layout.group_desc,
        layout.inode_bitmap_start,
        layout.block_bitmap_start,
        layout.inode_table_start,
        layout.journal_start,
        layout.data_start,
    ]
    assert boundaries == sorted(boundaries)
    assert len(set(boundaries)) == len(boundaries)
    assert layout.data_start < layout.total_blocks


def test_layout_inode_table_mapping():
    layout = DiskLayout(total_blocks=1_000_000)
    per_block = layout.params.inodes_per_block
    assert layout.inode_table_block(1) == layout.inode_table_start
    assert layout.inode_table_block(per_block) == layout.inode_table_start
    assert layout.inode_table_block(per_block + 1) == layout.inode_table_start + 1


def test_layout_rejects_bad_inodes():
    layout = DiskLayout(total_blocks=1_000_000)
    with pytest.raises(ValueError):
        layout.inode_table_block(0)
    with pytest.raises(ValueError):
        layout.inode_table_block(layout.max_inodes + 1)


def test_layout_journal_wraps():
    layout = DiskLayout(total_blocks=1_000_000, journal_blocks=100)
    assert layout.journal_block(0) == layout.journal_start
    assert layout.journal_block(100) == layout.journal_start
    assert layout.journal_block(105) == layout.journal_start + 5


def test_layout_too_small_rejected():
    with pytest.raises(ValueError):
        DiskLayout(total_blocks=100)


# ---------------------------------------------------------------- IdAllocator

def test_id_allocator_sequential():
    alloc = IdAllocator(10)
    assert [alloc.allocate() for _ in range(3)] == [1, 2, 3]


def test_id_allocator_reuses_freed():
    alloc = IdAllocator(10)
    first = alloc.allocate()
    alloc.allocate()
    alloc.free(first)
    assert alloc.allocate() == first


def test_id_allocator_goal():
    alloc = IdAllocator(1000)
    assert alloc.allocate(goal=500) == 500
    assert alloc.allocate(goal=500) == 501


def test_id_allocator_exhaustion():
    alloc = IdAllocator(2)
    alloc.allocate()
    alloc.allocate()
    with pytest.raises(NoSpace):
        alloc.allocate()


def test_id_allocator_reserve_range():
    alloc = IdAllocator(1000)
    reserved = alloc.reserve_range(10)
    assert len(reserved) == 10
    fresh = alloc.allocate()
    assert fresh not in reserved


def test_id_allocator_specific():
    alloc = IdAllocator(100)
    alloc.allocate_specific(42)
    with pytest.raises(ValueError):
        alloc.allocate_specific(42)


def test_id_allocator_double_free_rejected():
    alloc = IdAllocator(10)
    ident = alloc.allocate()
    alloc.free(ident)
    with pytest.raises(ValueError):
        alloc.free(ident)


# ---------------------------------------------------------------- ExtentAllocator

def test_extent_goal_gives_contiguity():
    alloc = ExtentAllocator(start=100, capacity=1000)
    first = alloc.allocate()
    second = alloc.allocate(goal=first + 1)
    assert second == first + 1


def test_extent_run_contiguous():
    alloc = ExtentAllocator(start=0, capacity=1000)
    run = alloc.allocate_run(10)
    assert run == list(range(run[0], run[0] + 10))


def test_extent_free_and_reuse():
    alloc = ExtentAllocator(start=0, capacity=10)
    blocks = [alloc.allocate() for _ in range(10)]
    with pytest.raises(NoSpace):
        alloc.allocate()
    alloc.free(blocks[3])
    assert alloc.allocate() == blocks[3]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.sampled_from(["alloc", "free"]), max_size=100),
       st.integers(min_value=1, max_value=64))
def test_extent_allocator_never_double_allocates(ops, capacity):
    alloc = ExtentAllocator(start=10, capacity=capacity)
    live = []
    for op in ops:
        if op == "alloc":
            try:
                block = alloc.allocate()
            except NoSpace:
                assert len(live) == capacity
                continue
            assert block not in live
            assert 10 <= block < 10 + capacity
            live.append(block)
        elif live:
            alloc.free(live.pop())
    assert alloc.used == len(live)


@settings(max_examples=50, deadline=None)
@given(goals=st.lists(st.integers(min_value=0, max_value=99), min_size=1,
                      max_size=80))
def test_id_allocator_goal_never_collides(goals):
    alloc = IdAllocator(200)
    seen = set()
    for goal in goals:
        ident = alloc.allocate(goal=goal + 1)
        assert ident not in seen
        seen.add(ident)
