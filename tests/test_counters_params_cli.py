"""Tests for counters arithmetic, parameter helpers, and the CLI."""

import pytest

from repro.core.counters import MessageCounters
from repro.core.params import NfsParams, TestbedParams
from repro.cli import build_parser, main


# ---------------------------------------------------------------- counters

def test_counter_request_reply_accounting():
    counters = MessageCounters()
    counters.count_request("LOOKUP", 128)
    counters.count_reply("LOOKUP", 256)
    assert counters.messages == 1
    assert counters.replies == 1
    assert counters.bytes_sent == 128
    assert counters.bytes_received == 256


def test_counter_retransmission_is_also_a_request():
    counters = MessageCounters()
    counters.count_request("WRITE", 100)
    counters.count_retransmission("WRITE", 100)
    assert counters.requests == 2
    assert counters.retransmissions == 1
    assert counters.by_op["WRITE"] == 2


def test_snapshot_delta_arithmetic():
    counters = MessageCounters()
    counters.count_request("A", 10)
    snap = counters.snapshot()
    counters.count_request("A", 10)
    counters.count_request("B", 20)
    counters.count_reply("B", 5)
    delta = counters.delta(snap)
    assert delta.messages == 2
    assert delta.by_op == {"A": 1, "B": 1}
    assert delta.bytes_sent == 30
    assert delta.bytes_received == 5


def test_snapshot_is_immutable_record():
    counters = MessageCounters()
    counters.count_request("X", 1)
    snap = counters.snapshot()
    counters.count_request("X", 1)
    assert snap.requests == 1
    # Frozen dataclass: assignment raises FrozenInstanceError
    # (an AttributeError subclass).
    with pytest.raises(AttributeError):
        snap.requests = 5


def test_counter_reset():
    counters = MessageCounters()
    counters.count_request("A", 10)
    counters.reset()
    assert counters.messages == 0
    assert not counters.by_op


def test_retransmits_by_op_tracked_per_op():
    counters = MessageCounters()
    counters.count_request("WRITE", 100)
    counters.count_retransmission("WRITE", 100)
    counters.count_retransmission("WRITE", 100)
    counters.count_retransmission("READ", 50)
    snap = counters.snapshot()
    assert snap.retransmits_by_op == {"WRITE": 2, "READ": 1}
    assert snap.retransmissions == 3


def test_reply_bytes_by_op_tracked_per_op():
    counters = MessageCounters()
    counters.count_request("READ", 128)
    counters.count_reply("READ", 4096)
    counters.count_reply("READ", 4096)
    counters.count_reply("GETATTR", 224)
    snap = counters.snapshot()
    assert snap.reply_bytes_by_op == {"READ": 8192, "GETATTR": 224}
    assert snap.bytes_received == 8416


def test_delta_subtracts_new_per_op_dicts():
    counters = MessageCounters()
    counters.count_reply("READ", 100)
    counters.count_retransmission("WRITE", 10)
    snap = counters.snapshot()
    counters.count_reply("READ", 50)
    counters.count_reply("WRITE", 25)
    counters.count_retransmission("WRITE", 10)
    delta = counters.delta(snap)
    assert delta.reply_bytes_by_op == {"READ": 50, "WRITE": 25}
    assert delta.retransmits_by_op == {"WRITE": 1}
    # A second snapshot minus the first must agree with the delta.
    again = counters.snapshot() - snap
    assert again.reply_bytes_by_op == delta.reply_bytes_by_op
    assert again.retransmits_by_op == delta.retransmits_by_op


def test_delta_drops_zero_entries_in_per_op_dicts():
    counters = MessageCounters()
    counters.count_reply("READ", 100)
    counters.count_retransmission("READ", 100)
    snap = counters.snapshot()
    counters.count_reply("WRITE", 5)
    delta = counters.delta(snap)
    assert "READ" not in delta.reply_bytes_by_op
    assert "READ" not in delta.retransmits_by_op
    assert delta.reply_bytes_by_op == {"WRITE": 5}


def test_reset_clears_new_per_op_dicts():
    counters = MessageCounters()
    counters.count_reply("READ", 100)
    counters.count_retransmission("READ", 100)
    counters.reset()
    assert not counters.reply_bytes_by_op
    assert not counters.retransmits_by_op


# ---------------------------------------------------------------- params

def test_params_for_version_defaults():
    v2 = NfsParams.for_version(2)
    assert v2.transport == "udp" and not v2.async_writes
    v3 = NfsParams.for_version(3)
    assert v3.transport == "tcp" and v3.async_writes
    v4 = NfsParams.for_version(4)
    assert v4.access_check_per_component and v4.rsize == 32 * 1024
    with pytest.raises(ValueError):
        NfsParams.for_version(5)


def test_params_with_rtt_is_nondestructive():
    base = TestbedParams()
    tweaked = base.with_rtt(0.050)
    assert tweaked.network.rtt == 0.050
    assert base.network.rtt != 0.050


def test_params_with_nfs_version():
    params = TestbedParams().with_nfs_version(2)
    assert params.nfs.version == 2


# ---------------------------------------------------------------- cli

def test_cli_parser_knows_all_artifacts():
    parser = build_parser()
    for command in ("list", "quick", "table2", "table4", "table5",
                    "fig3", "fig4", "fig6", "fig7", "sec7"):
        args = parser.parse_args([command])
        assert callable(args.func)


def test_cli_list_runs():
    assert main(["list"]) == 0


def test_cli_quick_runs(capsys):
    assert main(["quick"]) == 0
    out = capsys.readouterr().out
    for kind in ("nfsv2", "nfsv3", "nfsv4", "iscsi", "nfs-enhanced"):
        assert kind in out


def test_cli_fig3_runs(capsys):
    assert main(["fig3", "--op", "stat"]) == 0
    assert "msgs/op" in capsys.readouterr().out


def test_cli_sec7_runs(capsys):
    assert main(["sec7"]) == 0
    assert "reduction" in capsys.readouterr().out


def test_cli_quick_shards1_is_byte_identical(capsys):
    """The placement contract: --shards 1 rebuilds every stack on a
    one-shard calendar and the table must not change by one byte."""
    assert main(["quick"]) == 0
    plain = capsys.readouterr().out
    assert main(["quick", "--shards", "1"]) == 0
    assert capsys.readouterr().out == plain


def test_cli_scale_reference_matches_shards1(capsys, tmp_path):
    """stdout prints only partition-invariant metrics, so the flat
    reference kernel and a one-shard sweep emit identical bytes (the
    CI scale-smoke cmp)."""
    argv = ["scale", "--clients", "16", "--groups", "4",
            "--requests", "5"]
    assert main(argv + ["--reference"]) == 0
    reference = capsys.readouterr().out
    assert "completed=" in reference
    out_file = tmp_path / "BENCH_scale.json"
    assert main(argv + ["--shards", "1", "2", "--repeat", "1",
                        "--executor", "thread",
                        "--out", str(out_file)]) == 0
    assert capsys.readouterr().out == reference

    import json as json_module

    document = json_module.loads(out_file.read_text())
    assert document["config"]["clients"] == 16
    assert [point["shards"] for point in document["points"]] == [1, 2]
    assert document["points"][0]["speedup_vs_1"] == 1.0
    assert document["points"][1]["ideal_speedup"] > 1.0
    assert document["host"]["cpus"] >= 1


def test_cli_scale_rejects_indivisible_clients(capsys):
    assert main(["scale", "--clients", "10", "--groups", "4",
                 "--reference"]) == 2
