"""Focused tests for the NFS client's bounded async write-back machinery."""


from repro.core import make_stack
from repro.core.params import NfsParams, TestbedParams
from repro.nfs import protocol as p


def _stack(**nfs_overrides):
    return make_stack("nfsv3", TestbedParams(nfs=NfsParams(**nfs_overrides)))


def test_dirty_pages_age_before_flush():
    stack = _stack(writeback_delay=2.0)
    c = stack.client

    def work():
        fd = yield from c.creat("/f")
        yield from c.write(fd, 4096)
        yield stack.sim.timeout(0.5)
        early = stack.counters.by_op.get(p.WRITE, 0)
        yield stack.sim.timeout(3.0)
        late = stack.counters.by_op.get(p.WRITE, 0)
        return early, late

    early, late = stack.run(work())
    assert early == 0        # still aging
    assert late >= 1         # the daemon flushed it


def test_fsync_jumps_the_aging_queue():
    stack = _stack(writeback_delay=30.0)
    c = stack.client

    def work():
        fd_slow = yield from c.creat("/slow")
        yield from c.write(fd_slow, 8 * 4096)   # ages at the queue head
        fd_log = yield from c.creat("/log")
        yield from c.pwrite(fd_log, 4096, 0)
        start = stack.now
        yield from c.fsync(fd_log)              # must not wait 30 s
        return stack.now - start

    elapsed = stack.run(work())
    assert elapsed < 1.0


def test_flush_rpcs_are_per_page_by_default():
    stack = _stack()
    c = stack.client

    def work():
        fd = yield from c.creat("/f")
        yield from c.write(fd, 8 * 4096)
        yield from c.close(fd)

    stack.run(work())
    assert stack.counters.by_op.get(p.WRITE, 0) == 8


def test_flush_rpcs_merge_with_spatial_aggregation():
    """Section 6.1's speculated fix: larger flush RPCs shrink the count."""
    stack = _stack(pages_per_flush_rpc=8)
    c = stack.client

    def work():
        fd = yield from c.creat("/f")
        yield from c.write(fd, 8 * 4096)
        yield from c.close(fd)

    stack.run(work())
    assert stack.counters.by_op.get(p.WRITE, 0) == 1


def test_final_partial_page_clamped_to_eof():
    stack = _stack()
    c = stack.client

    def work():
        fd = yield from c.creat("/f")
        yield from c.write(fd, 10_000)          # 2.44 pages
        yield from c.close(fd)
        st = yield from c.stat("/f")
        return st.size

    assert stack.run(work()) == 10_000
    stack.quiesce()
    # And the server's own idea of the size agrees.
    root = stack.fs.inodes[1]
    ino = root.entries["f"]
    assert stack.fs.inodes[ino].size == 10_000


def test_commit_follows_unstable_writes_only():
    stack = _stack()
    c = stack.client

    def work():
        fd = yield from c.creat("/clean")
        yield from c.close(fd)                  # nothing dirty: no COMMIT
        fd = yield from c.creat("/dirty")
        yield from c.write(fd, 4096)
        yield from c.close(fd)                  # flush + COMMIT

    stack.run(work())
    assert stack.counters.by_op.get(p.COMMIT, 0) == 1


def test_throttle_engages_beyond_backlog():
    narrow = _stack(max_pending_writes=2)
    c = narrow.client

    def work():
        fd = yield from c.creat("/big")
        for _ in range(64):
            yield from c.write(fd, 4096)
        return narrow.now

    elapsed = narrow.run(work())
    # With a 2-deep pool the writer must have stalled on completions.
    assert elapsed > 0.001


def test_overwrite_same_page_coalesces_in_cache():
    stack = _stack(writeback_delay=5.0)
    c = stack.client

    def work():
        fd = yield from c.creat("/f")
        for _ in range(50):
            yield from c.pwrite(fd, 4096, 0)    # same page, 50 times
        yield from c.close(fd)

    stack.run(work())
    # One dirty page -> one WRITE, however many times it was dirtied.
    assert stack.counters.by_op.get(p.WRITE, 0) == 1


def test_quiesce_drains_everything():
    stack = _stack(writeback_delay=60.0)
    c = stack.client

    def work():
        for i in range(5):
            fd = yield from c.creat("/f%d" % i)
            yield from c.write(fd, 2 * 4096)
            # no close: pages sit in the aging queue

    stack.run(work())
    stack.quiesce()
    assert stack.nfs_client._pages.dirty_count == 0
    assert stack.counters.by_op.get(p.WRITE, 0) == 10
