"""Unit and property tests for the jbd-style journal."""

from hypothesis import given, settings, strategies as st

from repro.cache import BlockCache
from repro.core.params import DiskParams, Ext3Params
from repro.fs import DiskLayout, Journal
from repro.sim import Simulator
from repro.storage import Disk


def _setup(sim, commit_interval=5.0, journal_blocks=64):
    disk = Disk(sim, DiskParams(write_back_cache=False))
    layout = DiskLayout(disk.nblocks, journal_blocks=journal_blocks)
    cache = BlockCache(sim, disk, capacity_bytes=8 * 1024 * 1024,
                       start_flusher=False)
    params = Ext3Params(journal_commit_interval=commit_interval)
    journal = Journal(sim, cache, layout, params)
    return disk, layout, cache, journal


def test_empty_commit_is_free(sim):
    disk, _layout, _cache, journal = _setup(sim)
    sim.run_process(journal.commit())
    assert disk.stats.write_ops == 0
    assert journal.commits == 0


def test_commit_writes_blocks_plus_commit_record(sim):
    disk, layout, _cache, journal = _setup(sim)
    journal.add_metadata(layout.data_start + 5)

    def work():
        yield from journal.commit()

    sim.run_process(work())
    # one sequential body write + one commit-record barrier write
    assert disk.stats.write_ops == 2
    assert journal.commits == 1


def test_journal_writes_land_in_journal_area(sim):
    disk, layout, cache, journal = _setup(sim)
    journal.add_metadata(layout.data_start + 10)

    def work():
        yield from journal.commit()

    sim.run_process(work())
    # The journaled block itself must NOT have been written in place.
    for block in range(layout.data_start, layout.data_start + 64):
        assert not cache.is_dirty(block)


def test_update_aggregation_same_block_once(sim):
    disk, layout, _cache, journal = _setup(sim)
    for _ in range(100):
        journal.add_metadata(layout.data_start)   # same block, 100 updates

    def work():
        yield from journal.commit()

    sim.run_process(work())
    assert journal.blocks_journaled == 1


def test_commit_marks_cache_clean(sim):
    disk, layout, cache, journal = _setup(sim)
    block = layout.data_start + 3

    def work():
        yield from cache.write(block)
        journal.add_metadata(block)
        yield from journal.commit()
        yield from cache.sync()   # must be a no-op for the journaled block

    sim.run_process(work())
    writes_to_data = disk.stats.write_ops
    # 2 journal writes only; the in-place copy awaits a checkpoint.
    assert writes_to_data == 2


def test_checkpoint_writes_in_place_once(sim):
    disk, layout, cache, journal = _setup(sim)
    blocks = [layout.data_start + i for i in (0, 1, 2, 10)]

    def work():
        for block in blocks:
            yield from cache.write(block)
            journal.add_metadata(block)
        yield from journal.commit()
        before = disk.stats.write_ops
        yield from journal.checkpoint()
        return before

    before = sim.run_process(work())
    # contiguous run [0..2] coalesces; block 10 stands alone
    assert disk.stats.write_ops - before == 2
    # a second checkpoint has nothing to do
    sim.run_process(journal.checkpoint())
    assert disk.stats.write_ops - before == 2


def test_forget_data_cancels_everything(sim):
    disk, layout, cache, journal = _setup(sim)
    block = layout.data_start + 7

    def work():
        yield from cache.write(block)
        journal.add_metadata(block)
        journal.add_ordered_data(block + 1)
        journal.forget_data([block, block + 1])
        yield from journal.commit()
        yield from journal.checkpoint()

    sim.run_process(work())
    assert disk.stats.write_ops == 0


def test_ordered_data_flushed_before_commit_returns(sim):
    disk, layout, cache, journal = _setup(sim)
    data_block = layout.data_start + 100

    def work():
        yield from cache.write(data_block)
        journal.add_ordered_data(data_block)
        journal.add_metadata(layout.data_start)
        yield from journal.commit()

    sim.run_process(work())
    assert not cache.is_dirty(data_block)
    assert disk.stats.write_ops >= 3   # data + journal body + commit record


def test_periodic_commit_fires_on_interval(sim):
    disk, layout, _cache, journal = _setup(sim, commit_interval=1.0)
    journal.add_metadata(layout.data_start)
    sim.run(until=1.5)
    assert journal.commits == 1


def test_checkpoint_triggered_by_journal_pressure(sim):
    # Journal of 64 blocks: pressure threshold is ~21 pending blocks.
    disk, layout, cache, journal = _setup(sim, journal_blocks=64)

    def work():
        for i in range(40):
            block = layout.data_start + i * 2   # non-contiguous
            yield from cache.write(block)
            journal.add_metadata(block)
            if i % 10 == 9:
                yield from journal.commit()

    sim.run_process(work())
    assert journal.checkpoints >= 1


def test_journal_area_wraps(sim):
    disk, layout, _cache, journal = _setup(sim, journal_blocks=8)

    def work():
        for round_number in range(5):
            journal.add_metadata(layout.data_start + round_number)
            yield from journal.commit()

    sim.run_process(work())   # head passes the wrap point without error
    assert journal.commits == 5


@settings(max_examples=25, deadline=None)
@given(updates=st.lists(st.integers(min_value=0, max_value=30),
                        min_size=1, max_size=120))
def test_journaled_block_count_is_unique_count(updates):
    """However many times blocks join a transaction, the commit journals
    each distinct block exactly once."""
    sim = Simulator()
    _disk, layout, _cache, journal = _setup(sim)
    for offset in updates:
        journal.add_metadata(layout.data_start + offset)

    sim.run_process(journal.commit())
    assert journal.blocks_journaled == len(set(updates))
