"""Unit tests for links, transports, and the RPC layer."""

import pytest

from repro.core.counters import MessageCounters
from repro.net import (
    DuplexTransport,
    Link,
    Message,
    REPLY,
    RetransmitPolicy,
    RpcPeer,
    RpcTimeoutError,
)
from repro.sim import Simulator


# ---------------------------------------------------------------- link

def test_link_delivery_delay_includes_latency_and_tx(sim):
    link = Link(sim, rtt=0.010, bandwidth=1_000_000)
    delay = link.forward.delivery_delay(1000)
    assert delay == pytest.approx(0.005 + 0.001)


def test_link_serializes_transmissions(sim):
    link = Link(sim, rtt=0.0, bandwidth=1000)
    first = link.forward.delivery_delay(1000)    # 1 s of tx time
    second = link.forward.delivery_delay(1000)   # queued behind the first
    assert first == pytest.approx(1.0)
    assert second == pytest.approx(2.0)


def test_link_directions_independent(sim):
    link = Link(sim, rtt=0.0, bandwidth=1000)
    link.forward.delivery_delay(1000)
    assert link.backward.delivery_delay(1000) == pytest.approx(1.0)


def test_set_rtt(sim):
    link = Link(sim, rtt=0.010)
    link.set_rtt(0.090)
    assert link.forward.latency == pytest.approx(0.045)


# ---------------------------------------------------------------- transport

def _transport(sim, **kwargs):
    link = Link(sim, rtt=0.001)
    return DuplexTransport(sim, link, counters=MessageCounters(), **kwargs)


def test_transport_counts_requests_and_replies(sim):
    transport = _transport(sim)
    transport.send_from_client(Message(op="PING", payload_bytes=100))
    transport.send_from_server(Message(op="PING", kind=REPLY, payload_bytes=50))
    counters = transport.counters
    assert counters.requests == 1
    assert counters.replies == 1
    assert counters.messages == 1      # "messages" = requests only
    assert counters.bytes_sent == 228  # 128 header + 100 payload
    sim.run()


def test_transport_delivers_to_inbox(sim):
    transport = _transport(sim)
    transport.send_from_client(Message(op="HELLO"))

    def receiver():
        message = yield from transport.server.inbox.get()
        return message.op

    assert sim.run_process(receiver()) == "HELLO"


def test_lossy_transport_drops(sim):
    import random
    transport = DuplexTransport(
        sim, Link(sim, rtt=0.001), reliable=False, loss_rate=1.0,
        rng=random.Random(1),
    )
    transport.send_from_client(Message(op="LOST"))
    sim.run()
    assert len(transport.server.inbox) == 0
    assert transport.counters.requests == 1  # the bytes were still spent


def test_reliable_transport_rejects_loss_rate():
    sim = Simulator()
    with pytest.raises(ValueError):
        DuplexTransport(sim, Link(sim), reliable=True, loss_rate=0.5)


# ---------------------------------------------------------------- rpc

def _rpc_pair(sim, retransmit=None):
    transport = _transport(sim)
    client = RpcPeer(sim, transport.client, transport.send_from_client,
                     retransmit=retransmit, name="client")
    server = RpcPeer(sim, transport.server, transport.send_from_server,
                     name="server")
    return transport, client, server


def test_rpc_roundtrip(sim):
    transport, client, server = _rpc_pair(sim)

    def handler(message):
        return 64, {"status": "ok", "echo": message.body["x"]}
        yield  # pragma: no cover

    server.set_handler(handler)

    def call():
        reply = yield from client.call("ECHO", x=7)
        return reply.body["echo"]

    assert sim.run_process(call()) == 7
    assert transport.counters.requests == 1
    assert transport.counters.replies == 1


def test_rpc_handler_can_do_work(sim):
    transport, client, server = _rpc_pair(sim)

    def handler(message):
        yield sim.timeout(0.5)
        return 0, {"status": "ok"}

    server.set_handler(handler)

    def call():
        yield from client.call("SLOW")
        return sim.now

    assert sim.run_process(call()) >= 0.5


def test_rpc_timeout_retransmits(sim):
    policy = RetransmitPolicy(timeout=0.010, backoff=2.0, max_retries=3)
    transport, client, server = _rpc_pair(sim, retransmit=policy)

    def handler(message):
        yield sim.timeout(0.025)  # slower than two timeouts
        return 0, {"status": "ok"}

    server.set_handler(handler)

    def call():
        yield from client.call("SLOW")

    sim.run_process(call())
    assert transport.counters.retransmissions >= 1


def test_rpc_duplicate_cache_replays(sim):
    policy = RetransmitPolicy(timeout=0.010, max_retries=5)
    transport, client, server = _rpc_pair(sim, retransmit=policy)
    executions = []

    def handler(message):
        executions.append(message.xid)
        yield sim.timeout(0.025)
        return 0, {"status": "ok"}

    server.set_handler(handler)

    def call():
        yield from client.call("ONCE")

    sim.run_process(call())
    # Same-xid retransmissions must not re-execute the handler.
    assert len(set(executions)) == len(executions)


def test_rpc_exhausted_retries_raise(sim):
    policy = RetransmitPolicy(timeout=0.001, max_retries=2)
    transport = DuplexTransport(
        sim, Link(sim, rtt=0.001), reliable=False, loss_rate=1.0,
        rng=__import__("random").Random(3),
    )
    client = RpcPeer(sim, transport.client, transport.send_from_client,
                     retransmit=policy)

    def call():
        yield from client.call("VOID")

    with pytest.raises(RpcTimeoutError):
        sim.run_process(call())


def test_rpc_reset_connection_uses_fresh_xid(sim):
    policy = RetransmitPolicy(timeout=0.010, max_retries=3,
                              reset_connection=True)
    transport, client, server = _rpc_pair(sim, retransmit=policy)
    seen = []

    def handler(message):
        seen.append(message.xid)
        yield sim.timeout(0.025)
        return 0, {"status": "ok"}

    server.set_handler(handler)

    def call():
        yield from client.call("RESET")

    sim.run_process(call())
    assert len(set(seen)) >= 2  # the retransmission carried a new xid
