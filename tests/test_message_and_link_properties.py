"""Property tests for messages, links, and counting invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.counters import MessageCounters
from repro.net import DuplexTransport, Link, Message, REPLY
from repro.sim import Simulator


def test_message_xids_unique():
    xids = {Message(op="X").xid for _ in range(1000)}
    assert len(xids) == 1000


def test_reply_pairs_with_request():
    request = Message(op="READ", payload_bytes=0)
    reply = request.make_reply(payload_bytes=4096, status="ok")
    assert reply.xid == request.xid
    assert reply.kind == REPLY
    assert reply.body["status"] == "ok"
    assert reply.size == reply.header_bytes + 4096


@settings(max_examples=40, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=1_000_000),
                      min_size=1, max_size=40),
       bandwidth=st.sampled_from([1e6, 1e7, 125e6]),
       latency=st.floats(min_value=0.0, max_value=0.1))
def test_link_delays_monotone_and_conserving(sizes, bandwidth, latency):
    """Arrival order equals injection order, and total channel time is
    exactly the serial transmission time of all bytes."""
    sim = Simulator()
    link = Link(sim, rtt=2 * latency, bandwidth=bandwidth)
    arrivals = []
    for size in sizes:
        arrivals.append(link.forward.delivery_delay(size))
    assert arrivals == sorted(arrivals)
    last_departure = arrivals[-1] - latency
    assert abs(last_departure - sum(sizes) / bandwidth) < 1e-9
    assert link.total_bytes == sum(sizes)


@settings(max_examples=40, deadline=None)
@given(events=st.lists(
    st.tuples(st.sampled_from(["req", "reply", "retrans"]),
              st.integers(min_value=0, max_value=10_000)),
    max_size=100,
))
def test_counter_invariants(events):
    """messages == requests; retransmissions <= requests; bytes add up."""
    counters = MessageCounters()
    sent = received = 0
    for kind, size in events:
        if kind == "req":
            counters.count_request("OP", size)
            sent += size
        elif kind == "reply":
            counters.count_reply("OP", size)
            received += size
        else:
            counters.count_retransmission("OP", size)
            sent += size
    assert counters.messages == counters.requests
    assert counters.retransmissions <= counters.requests
    assert counters.bytes_sent == sent
    assert counters.bytes_received == received
    snap = counters.snapshot()
    assert (snap - snap).messages == 0


@settings(max_examples=20, deadline=None)
@given(loss=st.floats(min_value=0.0, max_value=0.9),
       n=st.integers(min_value=1, max_value=50))
def test_lossy_transport_counts_all_sends(loss, n):
    """Counting happens at injection: drops never lose accounting."""
    sim = Simulator()
    transport = DuplexTransport(
        sim, Link(sim, rtt=0.001), counters=MessageCounters(),
        reliable=False, loss_rate=loss, rng=random.Random(0),
    )
    for _ in range(n):
        transport.send_from_client(Message(op="PING"))
    sim.run()
    assert transport.counters.requests == n
    assert len(transport.server.inbox) <= n
