"""Whole-program simlint: graph, dataflow, S5xx/M6xx rule fixtures.

Every new rule family gets a positive fixture (flags), a negative
fixture (does not flag), and a suppressed fixture, per the repo's lint
testing convention.  The cross-module cases build little package trees
on disk and run :func:`repro.check.simlint.lint_paths` over them, which
is the whole-program entry point the CLI uses.
"""

from __future__ import annotations

import os

from repro.check import simlint
from repro.check.graph import build_program, module_name_for
from repro.check.simlint import lint_source


def write_tree(root, files):
    paths = []
    for name, source in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        paths.append(str(path))
    return sorted(paths)


def codes_in_tree(root, files):
    write_tree(root, files)
    return [(os.path.basename(v.path), v.line, v.code)
            for v in simlint.lint_paths([str(root)])]


# ------------------------------------------------------------------- graph


def test_module_name_follows_package_layout(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/sub/__init__.py": "",
        "pkg/sub/mod.py": "x = 1\n",
        "loose.py": "y = 2\n",
    })
    assert module_name_for(str(tmp_path / "pkg/sub/mod.py")) == "pkg.sub.mod"
    assert module_name_for(str(tmp_path / "pkg/__init__.py")) == "pkg"
    assert module_name_for(str(tmp_path / "loose.py")) == "loose"


def test_graph_resolves_imports_and_self_methods(tmp_path):
    paths = write_tree(tmp_path, {
        "helper.py": "def util():\n    return 1\n",
        "user.py": ("from helper import util\n"
                    "class C:\n"
                    "    def m(self):\n"
                    "        return self.n() + util()\n"
                    "    def n(self):\n"
                    "        return 2\n"),
    })
    graph = build_program(paths)
    user = graph.modules["user"]
    util = graph.modules["helper"].functions["util"]
    assert graph.call_sites(util), "imported call should resolve"
    method = user.functions["C.n"]
    assert graph.call_sites(method), "self.method call should resolve"
    assert user.function_at(4).qualname == "C.m"


# --------------------------------------------- interprocedural D101/D102


_WALLCLOCK_HELPER = ("import time\n"
                     "\n"
                     "def stamp():\n"
                     "    return time.time()"
                     "  # simlint: disable=D101 -- host read is justified\n")


def test_d101_taint_through_helper_cross_module(tmp_path):
    found = codes_in_tree(tmp_path, {
        "helper.py": _WALLCLOCK_HELPER,
        "driver.py": ("from helper import stamp\n"
                      "\n"
                      "def go(sim):\n"
                      "    t = stamp()\n"
                      "    sim.schedule_at(t, None)\n"),
    })
    # The suppression on the read keeps the per-file D101 quiet, but the
    # value still must not feed the simulation: the flow is reported at
    # the sink.
    assert ("driver.py", 5, "D101") in found


def test_d101_taint_negative_value_never_reaches_sink(tmp_path):
    found = codes_in_tree(tmp_path, {
        "helper.py": _WALLCLOCK_HELPER,
        "driver.py": ("from helper import stamp\n"
                      "\n"
                      "def go(sim, log):\n"
                      "    t = stamp()\n"
                      "    log.append(t)\n"
                      "    sim.schedule_at(sim.now + 1.0, None)\n"),
    })
    assert [f for f in found if f[2] == "D101"] == []


def test_d101_taint_suppressed_at_sink(tmp_path):
    found = codes_in_tree(tmp_path, {
        "helper.py": _WALLCLOCK_HELPER,
        "driver.py": ("from helper import stamp\n"
                      "\n"
                      "def go(sim):\n"
                      "    t = stamp()\n"
                      "    sim.schedule_at(t, None)"
                      "  # simlint: disable=D101 -- replay capture\n"),
    })
    assert [f for f in found if f[2] == "D101"] == []


def test_d102_taint_through_helper_chain(tmp_path):
    # Two hops: jitter() -> wrap() -> sink; summaries must propagate
    # transitively, and an int() cast must not launder the taint.
    found = codes_in_tree(tmp_path, {
        "rng.py": ("import random\n"
                   "\n"
                   "def jitter():\n"
                   "    return random.random()"
                   "  # simlint: disable=D102 -- seeded elsewhere (not!)\n"
                   "\n"
                   "def wrap():\n"
                   "    return int(jitter() * 10)\n"),
        "driver.py": ("from rng import wrap\n"
                      "\n"
                      "def go(sim):\n"
                      "    sim.hold(wrap())\n"),
    })
    assert ("driver.py", 4, "D102") in found


def test_d102_taint_negative_seeded_helper(tmp_path):
    found = codes_in_tree(tmp_path, {
        "rng.py": ("import random\n"
                   "\n"
                   "def jitter(seed):\n"
                   "    return random.Random(seed).random()\n"),
        "driver.py": ("from rng import jitter\n"
                      "\n"
                      "def go(sim):\n"
                      "    sim.hold(jitter(7))\n"),
    })
    assert [f for f in found if f[2] == "D102"] == []


# ------------------------------------------------- O3xx guard inference


def test_o301_dropped_when_every_call_site_is_guarded(tmp_path):
    found = codes_in_tree(tmp_path, {
        "hooks.py": ("def emit(tracer, value):\n"
                     "    tracer.instant('v', value)\n"),
        "user.py": ("from hooks import emit\n"
                    "\n"
                    "def step(tracer, value):\n"
                    "    if tracer.enabled:\n"
                    "        emit(tracer, value)\n"),
    })
    assert [f for f in found if f[2] == "O301"] == []


def test_o301_kept_when_one_call_site_is_unguarded(tmp_path):
    found = codes_in_tree(tmp_path, {
        "hooks.py": ("def emit(tracer, value):\n"
                     "    tracer.instant('v', value)\n"),
        "user.py": ("from hooks import emit\n"
                    "\n"
                    "def guarded(tracer, value):\n"
                    "    if tracer.enabled:\n"
                    "        emit(tracer, value)\n"
                    "\n"
                    "def bare(tracer, value):\n"
                    "    emit(tracer, value)\n"),
    })
    assert ("hooks.py", 2, "O301") in found


def test_o302_guard_inference_cross_module(tmp_path):
    found = codes_in_tree(tmp_path, {
        "hooks.py": ("def push(telem, value):\n"
                     "    telem.observe('lat', value)\n"),
        "user.py": ("from hooks import push\n"
                    "\n"
                    "def step(telem, value):\n"
                    "    if telem is not None:\n"
                    "        push(telem, value)\n"),
    })
    assert [f for f in found if f[2] == "O302"] == []


def test_o303_guard_inference_keeps_unguarded_helper(tmp_path):
    found = codes_in_tree(tmp_path, {
        "hooks.py": ("def note(recorder, event):\n"
                     "    recorder.note_event(event)\n"),
    })
    # No call sites at all: the per-file finding must survive.
    assert ("hooks.py", 2, "O303") in found


# ----------------------------------------------------- S501 shard safety


def test_s501_flags_direct_cross_shard_mutation():
    src = ("def leak(shards, message):\n"
           "    shards[1].outbox.append(message)\n")
    assert [v.code for v in lint_source(src)] == ["S501"]
    src = ("def leak(self, when, fn):\n"
           "    self.shards[0].sim.schedule_at(when, fn)\n")
    assert [v.code for v in lint_source(src)] == ["S501"]


def test_s501_negative_reads_and_transport():
    # Reads of another shard's state and transport-mediated sends are
    # the sanctioned patterns.
    assert [v.code for v in lint_source(
        "def peek(shards):\n"
        "    return shards[1].sim.now\n")] == []
    assert [v.code for v in lint_source(
        "def send(transport, message, delay):\n"
        "    transport.send(message, delay)\n")] == []


def test_s501_exempt_inside_the_shard_kernel():
    src = ("def merge(self, message):\n"
           "    self.shards[0].inbox.append(message)\n")
    assert [v.code for v in lint_source(src, module="repro.sim.shard")] == []
    assert [v.code for v in lint_source(src, module="other.mod")] \
        == ["S501"]


def test_s501_suppressed():
    src = ("def bootstrap(shards, port):\n"
           "    shards[1].ports.update(port)"
           "  # simlint: disable=S501 -- setup before the run starts\n")
    assert [v.code for v in lint_source(src)] == []


# ------------------------------------------------- S502 lookahead safety


def test_s502_flags_literal_and_underived_delay():
    src = ("def send(shard, message):\n"
           "    shard.post(1, 'port', message, 0.25)\n")
    assert [v.code for v in lint_source(src)] == ["S502"]
    src = ("def send(shard, message, gap):\n"
           "    shard.post(1, 'port', message, gap)\n")
    assert [v.code for v in lint_source(src)] == ["S502"]


def test_s502_negative_delay_from_link_horizon():
    for expr in ("link.latency", "self.lookahead", "delay", "rtt / 2",
                 "max(delay, link.latency)"):
        src = ("def send(shard, message):\n"
               "    shard.post(1, 'port', message, %s)\n" % expr)
        assert [v.code for v in lint_source(src)] == [], expr
    # Non-shard receivers are not cross-shard posts.
    assert [v.code for v in lint_source(
        "def send(queue, message):\n"
        "    queue.post(1, 'port', message, 0.25)\n")] == []


def test_s502_suppressed():
    src = ("def send(shard, message):\n"
           "    shard.post(1, 'port', message, 0.0)"
           "  # simlint: disable=S502 -- same-shard loopback in a test\n")
    assert [v.code for v in lint_source(src)] == []


# ------------------------------------------------------ S503 merge keys


def test_s503_flags_inline_when_only_lambda():
    src = "pending.sort(key=lambda m: m.when)\n"
    assert [v.code for v in lint_source(src)] == ["S503"]


def test_s503_negative_full_triple_and_seq_keys():
    for key in ("lambda m: (m.when, m.src_shard, m.src_seq)",
                "lambda m: (m.when, m.seq)"):
        src = "pending.sort(key=%s)\n" % key
        assert [v.code for v in lint_source(src)] == [], key


def test_s503_suppressed():
    src = ("pending.sort(key=lambda m: m.when)"
           "  # simlint: disable=S503 -- single-source stream\n")
    assert [v.code for v in lint_source(src)] == []


def test_s503_named_key_cross_module_is_invisible_per_file(tmp_path):
    # The acceptance case: a per-file pass provably cannot flag
    # `key=by_when` when by_when lives in another module; the
    # whole-program pass can.
    driver = ("from keys import by_when\n"
              "\n"
              "def merge(pending):\n"
              "    pending.sort(key=by_when)\n")
    assert [v.code for v in lint_source(driver, "driver.py")] == []
    found = codes_in_tree(tmp_path, {
        "keys.py": "def by_when(m):\n    return m.when\n",
        "driver.py": driver,
    })
    assert ("driver.py", 4, "S503") in found


def test_s503_named_key_negative_with_tie_breakers(tmp_path):
    found = codes_in_tree(tmp_path, {
        "keys.py": ("def by_when(m):\n"
                    "    return (m.when, m.src_shard, m.src_seq)\n"),
        "driver.py": ("from keys import by_when\n"
                      "\n"
                      "def merge(pending):\n"
                      "    pending.sort(key=by_when)\n"),
    })
    assert [f for f in found if f[2] == "S503"] == []


# ------------------------------------------- M6xx protocol state-machines


_GOOD_MCS = """\
class McsSession:
    def __init__(self):
        self._cmdsn = 0
        self._next_done = 0

    def call(self):
        cmdsn = self._cmdsn
        self._cmdsn += 1
        yield self.channel.send(cmdsn)
        if cmdsn != self._next_done:
            gate = self.sim.event()
            yield gate
        self._release(cmdsn)

    def _release(self, cmdsn):
        self._next_done = max(self._next_done, cmdsn + 1)

    def reset(self):
        self._next_done = self._cmdsn
"""


def test_m601_conforming_session_is_clean():
    assert [v.code for v in lint_source(
        _GOOD_MCS, module="repro.iscsi.mcs")] == []
    # The spec only fires for its target module.
    broken = _GOOD_MCS.replace("self._cmdsn += 1", "self._cmdsn -= 1")
    assert [v.code for v in lint_source(broken, module="other")] == []


def test_m601_flags_nonmonotonic_cmdsn_and_cursor_rewind():
    broken = _GOOD_MCS.replace("self._cmdsn += 1", "self._cmdsn -= 1")
    assert "M601" in [v.code for v in lint_source(
        broken, module="repro.iscsi.mcs")]
    rewind = _GOOD_MCS.replace(
        "self._next_done = max(self._next_done, cmdsn + 1)",
        "self._next_done = cmdsn")
    assert "M601" in [v.code for v in lint_source(
        rewind, module="repro.iscsi.mcs")]


def test_m601_flags_allocation_after_first_yield():
    late = ("class McsSession:\n"
            "    def __init__(self):\n"
            "        self._cmdsn = 0\n"
            "        self._next_done = 0\n"
            "    def call(self):\n"
            "        yield self.channel.ready()\n"
            "        cmdsn = self._cmdsn\n"
            "        self._cmdsn += 1\n"
            "        if cmdsn != self._next_done:\n"
            "            yield self.sim.event()\n")
    assert "M601" in [v.code for v in lint_source(
        late, module="repro.iscsi.mcs")]


def test_m601_suppressed():
    broken = _GOOD_MCS.replace(
        "self._cmdsn += 1",
        "self._cmdsn -= 1  # simlint: disable=M601 -- fixture\n")
    assert [v.code for v in lint_source(
        broken, module="repro.iscsi.mcs") if v.code == "M601"] == []


_GOOD_PNFS = """\
class StripedNfsClient:
    def __init__(self, clients):
        self.clients = clients

    def _home(self, path):
        return 0

    def read(self, fd, n):
        home = self._route_fd(fd)
        yield self.clients[home].read(fd, n)

    def _route_fd(self, fd):
        return 0

    def mkdir(self, path):
        for client in self.clients:
            yield client.mkdir(path)
"""


def test_m602_conforming_router_is_clean():
    assert [v.code for v in lint_source(
        _GOOD_PNFS, module="repro.nfs.pnfs")] == []


def test_m602_flags_unrouted_striped_io():
    bad = _GOOD_PNFS.rstrip() + (
        "\n\n    def write(self, fd, data):\n"
        "        yield self.clients[0].write(fd, data)\n")
    violations = lint_source(bad, module="repro.nfs.pnfs")
    assert [v.code for v in violations] == ["M602"]
    assert "LAYOUTGET" in violations[0].message


def test_m602_suppressed():
    bad = _GOOD_PNFS.rstrip() + (
        "\n\n    def write(self, fd, data):\n"
        "        yield self.clients[0].write(fd, data)"
        "  # simlint: disable=M602 -- fixture\n")
    assert [v.code for v in lint_source(bad, module="repro.nfs.pnfs")] == []


_REPLAY_OPS = (("create", "CREATE", "FileExists"),
               ("mkdir", "MKDIR", "FileExists"),
               ("remove", "REMOVE", "FileNotFound"),
               ("rmdir", "RMDIR", "FileNotFound"),
               ("rename", "RENAME", "FileNotFound"))


def _replay_source(skip=None):
    parts = []
    for name, op, error in _REPLAY_OPS:
        if name == skip:
            continue
        parts.append(
            "def %s(self, path):\n"
            "    try:\n"
            "        yield self._call(p.%s, path)\n"
            "    except %s as error:\n"
            "        if not getattr(error, 'replayed', False):\n"
            "            raise\n" % (name, op, error))
    return "\n\n".join(parts)


def test_m603_full_replay_table_is_clean():
    assert [v.code for v in lint_source(
        _replay_source(), module="repro.nfs.client")] == []


def test_m603_flags_missing_table_row():
    violations = lint_source(_replay_source(skip="rename"),
                             module="repro.nfs.client")
    assert [v.code for v in violations] == ["M603"]
    assert "RENAME" in violations[0].message


def test_m603_suppressed_file_wide():
    src = ("# simlint: disable-file=M603 -- partial client fixture\n"
           + _replay_source(skip="rename"))
    assert [v.code for v in lint_source(src, module="repro.nfs.client")] \
        == []


def test_m6xx_specs_hold_on_the_real_modules():
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    for rel, module in (("iscsi/mcs.py", "repro.iscsi.mcs"),
                        ("nfs/pnfs.py", "repro.nfs.pnfs"),
                        ("nfs/client.py", "repro.nfs.client")):
        path = os.path.join(package_dir, rel)
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        machine = [v for v in lint_source(source, path, module=module)
                   if v.code.startswith("M6")]
        assert machine == [], "spec regressed on %s" % rel


# ---------------------------------------------------------- whole tree


def test_repo_tests_and_benchmarks_are_lint_clean():
    # The src tree gate lives in test_check.py; this extends the clean
    # contract to the test and benchmark trees (the CI lint surface).
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = [os.path.join(root, "tests"), os.path.join(root, "benchmarks")]
    assert simlint.lint_paths([p for p in paths if os.path.isdir(p)]) == []


def test_lint_paths_is_deterministic_across_reruns(tmp_path):
    write_tree(tmp_path, {
        "helper.py": _WALLCLOCK_HELPER,
        "driver.py": ("from helper import stamp\n"
                      "\n"
                      "def go(sim):\n"
                      "    sim.schedule_at(stamp(), None)\n"),
    })
    first = simlint.lint_paths([str(tmp_path)])
    second = simlint.lint_paths([str(tmp_path)])
    assert first == second
    assert simlint.format_json(first) == simlint.format_json(second)
