"""Tests for the Section-6.3 v4 compound-walk option."""

from dataclasses import replace

from repro.core import make_stack
from repro.core.params import NfsParams, TestbedParams
from repro.nfs import protocol as p


def _compound_stack():
    return make_stack("nfsv4", TestbedParams(
        nfs=replace(NfsParams.for_version(4), compound_rpcs=True)
    ))


def test_compound_walk_resolves_deep_paths():
    stack = _compound_stack()
    c = stack.client

    def work():
        yield from c.mkdir("/a")
        yield from c.mkdir("/a/b")
        yield from c.mkdir("/a/b/c")
        fd = yield from c.creat("/a/b/c/f")
        yield from c.write(fd, 5000)
        yield from c.close(fd)
        st = yield from c.stat("/a/b/c/f")
        return st.size

    assert stack.run(work()) == 5000
    stack.quiesce()


def test_compound_walk_costs_one_exchange_cold():
    stack = _compound_stack()
    c = stack.client

    def setup():
        yield from c.mkdir("/a")
        yield from c.mkdir("/a/b")
        yield from c.mkdir("/a/b/c")
        fd = yield from c.creat("/a/b/c/f")
        yield from c.close(fd)

    stack.run(setup())
    stack.make_cold()
    snap = stack.snapshot()

    def walk():
        yield from c.stat("/a/b/c/f")

    stack.run(walk())
    delta = stack.delta(snap)
    assert delta.by_op.get(p.COMPOUND, 0) == 1
    # No per-component LOOKUP storm:
    assert delta.by_op.get(p.LOOKUP, 0) <= 1


def test_compound_results_populate_dentry_cache():
    stack = _compound_stack()
    c = stack.client

    def setup():
        yield from c.mkdir("/a")
        yield from c.mkdir("/a/b")
        fd = yield from c.creat("/a/b/f")
        yield from c.close(fd)

    stack.run(setup())
    stack.make_cold()

    def twice():
        yield from c.stat("/a/b/f")
        snap = stack.snapshot()
        yield from c.access("/a/b/f")
        return stack.delta(snap).by_op.get(p.COMPOUND, 0)

    assert stack.run(twice()) == 0   # the second walk rides the cache
