"""Tests for the shared (multi-client) NFS testbed."""

import pytest

from repro.core.multiclient import SharedNfsTestbed


def test_rejects_iscsi_and_single_client():
    with pytest.raises(ValueError):
        SharedNfsTestbed(kind="iscsi")
    with pytest.raises(ValueError):
        SharedNfsTestbed(nclients=1)


def test_two_clients_see_one_namespace():
    bed = SharedNfsTestbed(nclients=2, kind="nfsv3")
    a, b = bed.clients

    def work():
        yield from a.mkdir("/shared")
        fd = yield from a.creat("/shared/doc")
        yield from a.write(fd, 12_000)
        yield from a.close(fd)
        st = yield from b.stat("/shared/doc")
        names = yield from b.readdir("/shared")
        return st.size, names

    size, names = bed.run(work())
    assert size == 12_000
    assert names == ["doc"]
    bed.quiesce()


def test_writer_update_visible_after_attr_timeout():
    """Weak consistency, as NFS v3 defines it: B sees A's update after
    its attribute cache expires and the consistency check notices."""
    bed = SharedNfsTestbed(nclients=2, kind="nfsv3")
    a, b = bed.clients

    def work():
        fd = yield from a.creat("/f")
        yield from a.write(fd, 4096)
        yield from a.close(fd)
        fd_b = yield from b.open("/f")
        first = yield from b.read(fd_b, 1 << 20)
        # A grows the file; B re-reads after the 3 s validity window.
        fd = yield from a.open("/f", 1)
        yield from a.pwrite(fd, 4096, 4096)
        yield from a.close(fd)
        yield bed.sim.timeout(4.0)
        second = yield from b.pread(fd_b, 1 << 20, 0)
        return first, second

    first, second = bed.run(work())
    assert first == 4096
    assert second == 8192
    bed.quiesce()


def test_per_client_message_accounting():
    bed = SharedNfsTestbed(nclients=2, kind="nfsv3")
    a, b = bed.clients

    def work():
        yield from a.mkdir("/only-a")
        st = yield from b.stat("/only-a")
        return st.itype

    assert bed.run(work()) == "dir"
    assert bed.counters[0].messages >= 2   # A's mkdir traffic
    assert bed.counters[1].messages >= 1   # B's stat traffic


def test_enhanced_invalidation_callback_between_live_clients():
    """Section 7, live: B caches a directory's attributes; A mutates it;
    the server calls B back; B's next read refetches."""
    bed = SharedNfsTestbed(nclients=2, kind="nfs-enhanced")
    a, b = bed.clients

    def work():
        fd = yield from a.creat("/f")
        yield from a.close(fd)
        yield from a.quiesce()
        yield from b.stat("/f")            # B now holds /f's meta-data
        before = bed.callbacks_sent
        yield from a.chmod("/f", 0o600)    # A mutates it
        yield from a.quiesce()
        return before, bed.callbacks_sent

    before, after = bed.run(work())
    assert after > before


def test_enhanced_consistent_read_after_callback():
    bed = SharedNfsTestbed(nclients=2, kind="nfs-enhanced")
    a, b = bed.clients

    def work():
        fd = yield from a.creat("/f")
        yield from a.close(fd)
        yield from a.quiesce()
        st1 = yield from b.stat("/f")
        yield from a.chmod("/f", 0o640)
        yield from a.quiesce()
        yield bed.sim.timeout(0.1)         # let the callback land
        st2 = yield from b.stat("/f")
        return st1.mode, st2.mode

    mode_before, mode_after = bed.run(work())
    assert mode_after == 0o640
    assert mode_before != mode_after


def test_delegation_recall_on_competing_mutation():
    """A holds a directory delegation; B starts mutating the same
    directory: the server recalls A's delegation (A replays its pending
    records first), then grants B's."""
    bed = SharedNfsTestbed(nclients=2, kind="nfs-enhanced")
    a, b = bed.clients

    def work():
        yield from a.mkdir("/proj")            # A acquires the delegation
        fd = yield from a.creat("/proj/a-file")
        yield from a.close(fd)
        recalls_before = bed.state.delegations_recalled
        fd = yield from b.creat("/proj/b-file")   # B forces a recall
        yield from b.close(fd)
        yield from a.quiesce()
        yield from b.quiesce()
        names = yield from a.readdir("/proj")
        return recalls_before, bed.state.delegations_recalled, names

    before, after, names = bed.run(work())
    assert after > before
    assert sorted(names) == ["a-file", "b-file"]
    bed.quiesce()


def test_shared_consistency_costs_vs_unshared():
    """The paper's framing: the consistency checks that slow the unshared
    case are exactly what makes the shared case coherent.  Run the same
    read-mostly loop alone and with a second client mutating; the shared
    run must still return correct data."""
    bed = SharedNfsTestbed(nclients=2, kind="nfsv3")
    a, b = bed.clients

    def work():
        fd = yield from a.creat("/log")
        yield from a.write(fd, 4096)
        yield from a.close(fd)
        sizes = []
        for round_number in range(1, 5):
            fd = yield from a.open("/log", 1)
            yield from a.pwrite(fd, 4096, round_number * 4096)
            yield from a.close(fd)
            yield bed.sim.timeout(4.0)
            st = yield from b.stat("/log")
            sizes.append(st.size)
        return sizes

    sizes = bed.run(work())
    assert sizes == [4096 * (n + 1) for n in range(1, 5)]


# -- multiple servers ----------------------------------------------------------


def test_two_servers_are_independent_namespaces():
    """Client i mounts server i % M: namespaces are per-server."""
    bed = SharedNfsTestbed(nclients=4, nservers=2)
    a0, a1, a2, _a3 = bed.clients    # a0, a2 -> server 0; a1, a3 -> server 1

    def work():
        yield from a0.mkdir("/only-on-server0")
        names_same = yield from a2.readdir("/")
        names_other = yield from a1.readdir("/")
        return names_same, names_other

    names_same, names_other = bed.run(work())
    assert "only-on-server0" in names_same
    assert "only-on-server0" not in names_other
    bed.quiesce()


def test_per_server_message_and_callback_accounting():
    bed = SharedNfsTestbed(nclients=4, nservers=2)
    clients = bed.clients

    def work():
        for client in clients:
            yield from client.mkdir("/%s" % client.name)
        return None

    bed.run(work())
    by_server = bed.messages_by_server
    assert len(by_server) == 2
    assert all(count >= 2 for count in by_server)
    assert sum(by_server) == bed.total_messages
    assert bed.callbacks_by_server == [0, 0]


def test_parameter_validation():
    with pytest.raises(ValueError):
        SharedNfsTestbed(nservers=0)
    with pytest.raises(ValueError):
        SharedNfsTestbed(shards=0)
    with pytest.raises(ValueError, match="fork"):
        SharedNfsTestbed(shards=2, executor="fork")
    with pytest.raises(ValueError, match="UDP"):
        SharedNfsTestbed(kind="nfsv2", shards=2)   # v2 rides lossy UDP


def test_sharded_bed_rejects_single_calendar_run():
    with SharedNfsTestbed(nclients=2, shards=2) as bed:
        with pytest.raises(RuntimeError, match="run_phase"):
            bed.run(iter(()))


# -- sharded placement: same testbed, partitioned calendars --------------------


def _drive_phases(bed):
    """One independent writer per client, then a full quiesce.  Returns
    every partition-invariant observable the bed exposes."""
    sizes = {}

    def make(index, client):
        def work():
            fd = yield from client.creat("/f%d" % index)
            yield from client.write(fd, (index + 1) * 4096)
            yield from client.close(fd)
            st = yield from client.stat("/f%d" % index)
            sizes[index] = st.size
            return None
        return work

    for index, client in enumerate(bed.clients):
        bed.add_workload(index, make(index, client))
    bed.run_phase()
    bed.quiesce()
    bed.close()
    return (sorted(sizes.items()), bed.total_messages,
            bed.messages_by_server, bed.callbacks_by_server)


def test_sharded_testbed_matches_unsharded():
    """The tentpole contract at the protocol level: partitioning the
    testbed over shards (transport = the shard boundary) changes no
    observable — sizes, message counts, per-server traffic."""
    reference = _drive_phases(SharedNfsTestbed(nclients=4, nservers=2))
    assert reference[0] == [(0, 4096), (1, 8192), (2, 12288), (3, 16384)]
    for shards, executor in ((2, "thread"), (2, "sequential"),
                             (3, "thread")):
        bed = SharedNfsTestbed(nclients=4, nservers=2, shards=shards,
                               executor=executor)
        assert _drive_phases(bed) == reference


def test_more_shards_than_clients_degenerates_cleanly():
    """shards > nclients leaves some shards empty; the barrier still
    aligns them and the run is unchanged."""
    reference = _drive_phases(SharedNfsTestbed(nclients=4, nservers=2))
    bed = SharedNfsTestbed(nclients=4, nservers=2, shards=6)
    assert _drive_phases(bed) == reference


def _drive_callbacks(bed):
    a, b = bed.clients

    def create():
        fd = yield from a.creat("/f")
        yield from a.close(fd)
        return None

    def peek():
        yield from b.stat("/f")
        return None

    def mutate():
        yield from a.chmod("/f", 0o600)
        return None

    bed.add_workload(0, create, phase="create")
    bed.run_phase("create")
    bed.quiesce()
    bed.add_workload(1, peek, phase="peek")
    bed.run_phase("peek")
    bed.add_workload(0, mutate, phase="mutate")
    bed.run_phase("mutate")
    bed.quiesce()
    bed.close()
    return bed.callbacks_sent, bed.total_messages


def test_enhanced_invalidation_crosses_shards():
    """Section-7 callbacks genuinely travel between shards: a sharded
    nfs-enhanced bed fires the same invalidations as the flat one."""
    reference = _drive_callbacks(
        SharedNfsTestbed(nclients=2, kind="nfs-enhanced"))
    assert reference[0] >= 1
    sharded = _drive_callbacks(
        SharedNfsTestbed(nclients=2, kind="nfs-enhanced", shards=2))
    assert sharded == reference
