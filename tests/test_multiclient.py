"""Tests for the shared (multi-client) NFS testbed."""

import pytest

from repro.core.multiclient import SharedNfsTestbed


def test_rejects_iscsi_and_single_client():
    with pytest.raises(ValueError):
        SharedNfsTestbed(kind="iscsi")
    with pytest.raises(ValueError):
        SharedNfsTestbed(nclients=1)


def test_two_clients_see_one_namespace():
    bed = SharedNfsTestbed(nclients=2, kind="nfsv3")
    a, b = bed.clients

    def work():
        yield from a.mkdir("/shared")
        fd = yield from a.creat("/shared/doc")
        yield from a.write(fd, 12_000)
        yield from a.close(fd)
        st = yield from b.stat("/shared/doc")
        names = yield from b.readdir("/shared")
        return st.size, names

    size, names = bed.run(work())
    assert size == 12_000
    assert names == ["doc"]
    bed.quiesce()


def test_writer_update_visible_after_attr_timeout():
    """Weak consistency, as NFS v3 defines it: B sees A's update after
    its attribute cache expires and the consistency check notices."""
    bed = SharedNfsTestbed(nclients=2, kind="nfsv3")
    a, b = bed.clients

    def work():
        fd = yield from a.creat("/f")
        yield from a.write(fd, 4096)
        yield from a.close(fd)
        fd_b = yield from b.open("/f")
        first = yield from b.read(fd_b, 1 << 20)
        # A grows the file; B re-reads after the 3 s validity window.
        fd = yield from a.open("/f", 1)
        yield from a.pwrite(fd, 4096, 4096)
        yield from a.close(fd)
        yield bed.sim.timeout(4.0)
        second = yield from b.pread(fd_b, 1 << 20, 0)
        return first, second

    first, second = bed.run(work())
    assert first == 4096
    assert second == 8192
    bed.quiesce()


def test_per_client_message_accounting():
    bed = SharedNfsTestbed(nclients=2, kind="nfsv3")
    a, b = bed.clients

    def work():
        yield from a.mkdir("/only-a")
        st = yield from b.stat("/only-a")
        return st.itype

    assert bed.run(work()) == "dir"
    assert bed.counters[0].messages >= 2   # A's mkdir traffic
    assert bed.counters[1].messages >= 1   # B's stat traffic


def test_enhanced_invalidation_callback_between_live_clients():
    """Section 7, live: B caches a directory's attributes; A mutates it;
    the server calls B back; B's next read refetches."""
    bed = SharedNfsTestbed(nclients=2, kind="nfs-enhanced")
    a, b = bed.clients

    def work():
        fd = yield from a.creat("/f")
        yield from a.close(fd)
        yield from a.quiesce()
        yield from b.stat("/f")            # B now holds /f's meta-data
        before = bed.callbacks_sent
        yield from a.chmod("/f", 0o600)    # A mutates it
        yield from a.quiesce()
        return before, bed.callbacks_sent

    before, after = bed.run(work())
    assert after > before


def test_enhanced_consistent_read_after_callback():
    bed = SharedNfsTestbed(nclients=2, kind="nfs-enhanced")
    a, b = bed.clients

    def work():
        fd = yield from a.creat("/f")
        yield from a.close(fd)
        yield from a.quiesce()
        st1 = yield from b.stat("/f")
        yield from a.chmod("/f", 0o640)
        yield from a.quiesce()
        yield bed.sim.timeout(0.1)         # let the callback land
        st2 = yield from b.stat("/f")
        return st1.mode, st2.mode

    mode_before, mode_after = bed.run(work())
    assert mode_after == 0o640
    assert mode_before != mode_after


def test_delegation_recall_on_competing_mutation():
    """A holds a directory delegation; B starts mutating the same
    directory: the server recalls A's delegation (A replays its pending
    records first), then grants B's."""
    bed = SharedNfsTestbed(nclients=2, kind="nfs-enhanced")
    a, b = bed.clients

    def work():
        yield from a.mkdir("/proj")            # A acquires the delegation
        fd = yield from a.creat("/proj/a-file")
        yield from a.close(fd)
        recalls_before = bed.state.delegations_recalled
        fd = yield from b.creat("/proj/b-file")   # B forces a recall
        yield from b.close(fd)
        yield from a.quiesce()
        yield from b.quiesce()
        names = yield from a.readdir("/proj")
        return recalls_before, bed.state.delegations_recalled, names

    before, after, names = bed.run(work())
    assert after > before
    assert sorted(names) == ["a-file", "b-file"]
    bed.quiesce()


def test_shared_consistency_costs_vs_unshared():
    """The paper's framing: the consistency checks that slow the unshared
    case are exactly what makes the shared case coherent.  Run the same
    read-mostly loop alone and with a second client mutating; the shared
    run must still return correct data."""
    bed = SharedNfsTestbed(nclients=2, kind="nfsv3")
    a, b = bed.clients

    def work():
        fd = yield from a.creat("/log")
        yield from a.write(fd, 4096)
        yield from a.close(fd)
        sizes = []
        for round_number in range(1, 5):
            fd = yield from a.open("/log", 1)
            yield from a.pwrite(fd, 4096, round_number * 4096)
            yield from a.close(fd)
            yield bed.sim.timeout(4.0)
            st = yield from b.stat("/log")
            sizes.append(st.size)
        return sizes

    sizes = bed.run(work())
    assert sizes == [4096 * (n + 1) for n in range(1, 5)]
