"""Unit tests for the NFS client/server pair — behaviors the paper leans on."""

import pytest

from repro.core import make_stack
from repro.core.params import NfsParams, TestbedParams
from repro.fs import FileExists, FileNotFound
from repro.nfs import protocol as p


def ops(delta):
    return dict(delta.by_op)


# ---------------------------------------------------------------- basics

def test_lookup_caches_dentries(nfs_stack):
    c = nfs_stack.client

    def setup():
        fd = yield from c.creat("/f")
        yield from c.close(fd)

    nfs_stack.run(setup())
    nfs_stack.quiesce()
    snap = nfs_stack.snapshot()

    def twice():
        yield from c.stat("/f")
        yield from c.stat("/f")

    nfs_stack.run(twice())
    delta = nfs_stack.delta(snap)
    # dentry cached: at most one LOOKUP despite two walks
    assert delta.by_op.get(p.LOOKUP, 0) <= 1


def test_attr_cache_expires_after_validity(nfs_stack):
    c = nfs_stack.client

    def setup():
        fd = yield from c.creat("/f")
        yield from c.close(fd)
        yield from c.access("/f")

    nfs_stack.run(setup())
    snap = nfs_stack.snapshot()

    def later():
        yield nfs_stack.sim.timeout(5.0)   # > 3 s validity
        yield from c.access("/f")

    nfs_stack.run(later())
    delta = nfs_stack.delta(snap)
    assert delta.messages >= 1             # revalidation traffic


def test_mkdir_enoent_probe_then_create(nfs_stack):
    c = nfs_stack.client
    snap = nfs_stack.snapshot()

    def work():
        yield from c.mkdir("/newdir")

    nfs_stack.run(work())
    by_op = ops(nfs_stack.delta(snap))
    assert by_op.get(p.LOOKUP) == 1        # existence probe (ENOENT)
    assert by_op.get(p.MKDIR) == 1


def test_duplicate_create_raises(nfs_stack):
    c = nfs_stack.client

    def work():
        yield from c.mkdir("/d")
        yield from c.mkdir("/d")

    with pytest.raises(FileExists):
        nfs_stack.run(work())


def test_enoent_surfaces(nfs_stack):
    c = nfs_stack.client

    def work():
        yield from c.stat("/missing")

    with pytest.raises(FileNotFound):
        nfs_stack.run(work())


def test_write_then_read_through_cache(nfs_stack):
    c = nfs_stack.client

    def work():
        fd = yield from c.creat("/data")
        yield from c.write(fd, 20_000)
        yield from c.close(fd)
        fd = yield from c.open("/data")
        got = yield from c.read(fd, 50_000)
        yield from c.close(fd)
        return got

    assert nfs_stack.run(work()) == 20_000


def test_stat_reflects_local_dirty_size(nfs_stack):
    """Async writes must be visible to stat before they hit the server."""
    c = nfs_stack.client

    def work():
        fd = yield from c.creat("/grow")
        yield from c.write(fd, 123_456)
        st = yield from c.fstat(fd)
        yield from c.close(fd)
        return st.size

    assert nfs_stack.run(work()) == 123_456


def test_async_writes_are_deferred_and_flushed_by_close(nfs_stack):
    c = nfs_stack.client

    def work():
        fd = yield from c.creat("/lazy")
        yield from c.write(fd, 8 * 4096)
        before_close = nfs_stack.counters.by_op.get(p.WRITE, 0)
        yield from c.close(fd)
        return before_close

    before_close = nfs_stack.run(work())
    after = nfs_stack.counters.by_op.get(p.WRITE, 0)
    assert before_close == 0          # writes sat in the client cache
    assert after >= 8                 # close pushed them out
    assert nfs_stack.counters.by_op.get(p.COMMIT, 0) >= 1


def test_v2_writes_are_synchronous():
    stack = make_stack("nfsv2")
    c = stack.client

    def work():
        fd = yield from c.creat("/sync")
        yield from c.write(fd, 4 * 4096)
        return stack.counters.by_op.get(p.WRITE, 0)

    writes_at_return = stack.run(work())
    assert writes_at_return >= 2      # already on the wire at write() return


def test_pending_write_limit_throttles():
    """Beyond the async pool, writers run at WRITE-completion speed."""
    fast = TestbedParams()
    slow_pool = TestbedParams(nfs=NfsParams(max_pending_writes=2))
    times = {}
    for label, params in (("wide", fast), ("narrow", slow_pool)):
        stack = make_stack("nfsv3", params)
        c = stack.client

        def work(c=c):
            fd = yield from c.creat("/big")
            for _ in range(256):
                yield from c.write(fd, 4096)
            yield from c.close(fd)

        start = stack.now
        stack.run(work())
        times[label] = stack.now - start
    assert times["narrow"] > times["wide"]


def test_mtime_change_invalidates_data_cache(nfs_stack):
    """Another writer bumping mtime must drop cached pages."""
    c = nfs_stack.client
    fs = nfs_stack.fs

    def work():
        fd = yield from c.creat("/shared")
        yield from c.write(fd, 8192)
        yield from c.close(fd)
        fd = yield from c.open("/shared")
        yield from c.read(fd, 8192)
        # Server-side modification behind the client's back:
        inode = yield from fs.iget(
            (yield from fs.dir_lookup(fs.inodes[1], "shared"))
        )
        yield nfs_stack.sim.timeout(4.0)
        yield from fs.write_file(inode, 0, 4096)
        yield nfs_stack.sim.timeout(4.0)
        before = nfs_stack.counters.by_op.get(p.READ, 0)
        yield from c.pread(fd, 8192, 0)
        return before, nfs_stack.counters.by_op.get(p.READ, 0)

    before, after = nfs_stack.run(work())
    assert after > before    # pages were refetched


def test_commit_forces_server_flush(nfs_stack):
    c = nfs_stack.client

    def work():
        fd = yield from c.creat("/durable")
        yield from c.write(fd, 64 * 4096)
        before = nfs_stack.raid.stats.write_ops
        yield from c.fsync(fd)
        return before, nfs_stack.raid.stats.write_ops

    before, after = nfs_stack.run(work())
    assert after > before


def test_rename_updates_client_view(nfs_stack):
    c = nfs_stack.client

    def work():
        fd = yield from c.creat("/old")
        yield from c.close(fd)
        yield from c.rename("/old", "/new")
        st = yield from c.stat("/new")
        try:
            yield from c.stat("/old")
        except FileNotFound:
            return st.itype
        return "old still visible"

    assert nfs_stack.run(work()) == "file"


def test_readdir_cached_with_getattr_check(nfs_stack):
    c = nfs_stack.client

    def setup():
        yield from c.mkdir("/d")
        fd = yield from c.creat("/d/f")
        yield from c.close(fd)
        yield from c.readdir("/d")

    nfs_stack.run(setup())
    snap = nfs_stack.snapshot()

    def again():
        names = yield from c.readdir("/d")
        return names

    names = nfs_stack.run(again())
    by_op = ops(nfs_stack.delta(snap))
    assert names == ["f"]
    assert by_op.get(p.READDIR, 0) == 0   # served from the dir cache
    assert by_op.get(p.GETATTR, 0) <= 1   # one consistency check at most


# ---------------------------------------------------------------- v4

def test_v4_open_ceremony_and_close():
    stack = make_stack("nfsv4")
    c = stack.client

    def setup():
        fd = yield from c.creat("/f")
        yield from c.close(fd)

    stack.run(setup())
    stack.quiesce()
    snap = stack.snapshot()

    def openclose():
        fd = yield from c.open("/f")
        yield from c.close(fd)

    stack.run(openclose())
    by_op = ops(stack.delta(snap))
    assert by_op.get(p.OPEN) == 1
    assert by_op.get(p.CLOSE) == 1


def test_v4_access_per_directory():
    stack = make_stack("nfsv4")
    c = stack.client

    def setup():
        yield from c.mkdir("/a")
        yield from c.mkdir("/a/b")
        fd = yield from c.creat("/a/b/f")
        yield from c.close(fd)

    stack.run(setup())
    stack.make_cold()
    snap = stack.snapshot()

    def walk():
        yield from c.stat("/a/b/f")

    stack.run(walk())
    by_op = ops(stack.delta(snap))
    assert by_op.get(p.ACCESS, 0) >= 3    # root, /a, /a/b


def test_v4_delegated_file_skips_read_revalidation():
    stack = make_stack("nfsv4")
    c = stack.client

    def work():
        fd = yield from c.creat("/f")
        yield from c.write(fd, 8192)
        yield from c.close(fd)
        fd = yield from c.open("/f")
        yield from c.read(fd, 8192)
        yield stack.sim.timeout(10.0)
        before = stack.counters.by_op.get(p.GETATTR, 0)
        yield from c.pread(fd, 8192, 0)
        return before, stack.counters.by_op.get(p.GETATTR, 0)

    before, after = stack.run(work())
    assert after == before    # delegation: no consistency check
