"""Stress/endurance integration tests across the whole stack."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import STACK_KINDS, make_stack


def _random_session(stack, seed, steps=120):
    """Drive a random-but-valid syscall sequence; mirror it in a model."""
    c = stack.client
    rng = random.Random(seed)
    model = {}           # path -> size
    dirs = ["/"]

    def work():
        for step in range(steps):
            action = rng.choice(
                ["mkdir", "creat", "write", "read", "unlink", "stat",
                 "rename", "cold"]
            )
            if action == "mkdir":
                path = "%sd%d" % (rng.choice(dirs), step)
                yield from c.mkdir(path)
                dirs.append(path + "/")
            elif action == "creat":
                path = "%sf%d" % (rng.choice(dirs), step)
                fd = yield from c.creat(path)
                size = rng.randrange(0, 20_000)
                if size:
                    yield from c.write(fd, size)
                yield from c.close(fd)
                model[path] = size
            elif action == "write" and model:
                path = rng.choice(sorted(model))
                fd = yield from c.open(path, 1)
                extra = rng.randrange(1, 8_000)
                yield from c.pwrite(fd, extra, model[path])
                yield from c.close(fd)
                model[path] += extra
            elif action == "read" and model:
                path = rng.choice(sorted(model))
                fd = yield from c.open(path)
                got = yield from c.read(fd, 1 << 20)
                yield from c.close(fd)
                assert got == model[path], path
            elif action == "unlink" and model:
                path = rng.choice(sorted(model))
                yield from c.unlink(path)
                del model[path]
            elif action == "stat" and model:
                path = rng.choice(sorted(model))
                st_ = yield from c.stat(path)
                assert st_.size == model[path], path
            elif action == "rename" and model:
                path = rng.choice(sorted(model))
                new = "%sr%d" % (rng.choice(dirs), step)
                if new not in model:
                    yield from c.rename(path, new)
                    model[new] = model.pop(path)
            elif action == "cold":
                yield from c.quiesce()
        return None

    stack.run(work(), name="stress")
    stack.quiesce()
    return model


@pytest.mark.parametrize("kind", STACK_KINDS)
def test_random_session_consistency(kind):
    """120 random operations, with quiesces interleaved, on every stack:
    sizes and namespace always match a plain in-memory model."""
    stack = make_stack(kind)
    model = _random_session(stack, seed=99)

    c = stack.client

    def verify():
        for path, size in sorted(model.items()):
            st_ = yield from c.stat(path)
            assert st_.size == size, path
        return len(model)

    assert stack.run(verify()) == len(model)


def test_random_session_survives_cold_remounts():
    stack = make_stack("nfsv3")
    model = _random_session(stack, seed=7, steps=60)
    stack.make_cold()
    c = stack.client

    def verify():
        count = 0
        for path, size in sorted(model.items()):
            st_ = yield from c.stat(path)
            assert st_.size == size, path
            count += 1
        return count

    assert stack.run(verify()) == len(model)


def test_interleaved_workers_on_one_stack():
    """Concurrent processes over one mount must not corrupt state."""
    stack = make_stack("iscsi")
    c = stack.client

    def worker(tag, count):
        for i in range(count):
            path = "/w%s_%d" % (tag, i)
            fd = yield from c.creat(path)
            yield from c.write(fd, 4096 * (1 + i % 3))
            yield from c.close(fd)
        return tag

    def main():
        jobs = [stack.sim.spawn(worker(t, 25), name="w" + t)
                for t in "abcd"]
        done = yield stack.sim.all_of(jobs)
        names = yield from c.readdir("/")
        return done, names

    done, names = stack.run(main())
    stack.quiesce()
    assert sorted(done) == list("abcd")
    assert len(names) == 100


def test_deep_tree_and_wide_directory():
    stack = make_stack("iscsi")
    c = stack.client

    def work():
        path = ""
        for level in range(24):
            path += "/L%d" % level
            yield from c.mkdir(path)
        for i in range(200):                 # several directory blocks
            fd = yield from c.creat(path + "/f%03d" % i)
            yield from c.close(fd)
        names = yield from c.readdir(path)
        return len(names)

    assert stack.run(work()) == 200
    stack.quiesce()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_nfs_and_iscsi_agree_on_semantics(seed):
    """Property: the same random session yields the same visible state on
    a file-access and a block-access stack (the paper's premise that only
    the protocol, not the semantics, differs)."""
    models = []
    for kind in ("nfsv3", "iscsi"):
        stack = make_stack(kind)
        models.append(_random_session(stack, seed=seed, steps=40))
    assert models[0] == models[1]
