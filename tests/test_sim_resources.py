"""Unit and property tests for Resource/Store/UtilizationTracker."""
# simlint: disable-file=P202 -- tests deliberately leak an acquire to assert the leak is observable

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Resource, SimulationError, Simulator, Store


def _contended_run(sim, capacity=1, holds=(2.0, 3.0, 1.0)):
    """Spawn one worker per hold on a fresh capacity-N resource."""
    res = Resource(sim, capacity=capacity)

    def worker(hold):
        yield from res.use(hold)

    for hold in holds:
        sim.spawn(worker(hold))
    sim.run()
    return res


def test_resource_serializes_capacity_one(sim):
    res = Resource(sim, capacity=1)
    done = []

    def worker(tag, hold):
        yield from res.use(hold)
        done.append((tag, sim.now))

    sim.spawn(worker("a", 2.0))
    sim.spawn(worker("b", 3.0))
    sim.run()
    assert done == [("a", 2.0), ("b", 5.0)]


def test_resource_parallel_capacity_two(sim):
    res = Resource(sim, capacity=2)
    done = []

    def worker(tag):
        yield from res.use(2.0)
        done.append((tag, sim.now))

    for tag in "abc":
        sim.spawn(worker(tag))
    sim.run()
    assert done == [("a", 2.0), ("b", 2.0), ("c", 4.0)]


def test_resource_fifo_ordering(sim):
    res = Resource(sim, capacity=1)
    order = []

    def worker(tag):
        yield from res.acquire()
        order.append(tag)
        yield sim.timeout(1)
        res.release()

    for tag in "abcd":
        sim.spawn(worker(tag))
    sim.run()
    assert order == list("abcd")


def test_release_without_acquire_rejected(sim):
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_utilization_full(sim):
    res = Resource(sim, capacity=1)

    def worker():
        yield from res.use(10.0)

    sim.run_process(worker())
    assert res.tracker.utilization() == pytest.approx(1.0)


def test_utilization_half(sim):
    res = Resource(sim, capacity=2)

    def worker():
        yield from res.use(10.0)

    sim.run_process(worker())
    assert res.tracker.utilization() == pytest.approx(0.5)


def test_utilization_window_reset(sim):
    res = Resource(sim, capacity=1)

    def worker():
        yield from res.use(4.0)
        res.tracker.reset_window()
        yield sim.timeout(6.0)

    sim.run_process(worker())
    assert res.tracker.utilization() == pytest.approx(0.0)


def test_store_fifo(sim):
    store = Store(sim)
    store.put(1)
    store.put(2)

    def getter():
        a = yield from store.get()
        b = yield from store.get()
        return (a, b)

    assert sim.run_process(getter()) == (1, 2)


def test_store_blocks_until_put(sim):
    store = Store(sim)

    def getter():
        item = yield from store.get()
        return (item, sim.now)

    def putter():
        yield sim.timeout(3)
        store.put("x")

    sim.spawn(putter())
    assert sim.run_process(getter()) == ("x", 3)


def test_store_get_nowait_and_drain(sim):
    store = Store(sim)
    assert store.get_nowait() is None
    store.put(1)
    store.put(2)
    assert store.get_nowait() == 1
    assert store.drain() == [2]
    assert len(store) == 0


# ------------------------------------------------------------- ResourceStats

def test_stats_counts_waits_on_contended_resource(sim):
    # Three holds of 2/3/1 s on capacity 1: b waits 2 s, c waits 5 s.
    res = _contended_run(sim)
    stats = res.stats
    assert stats.acquisitions == 3
    assert stats.contended == 2
    assert stats.total_wait == pytest.approx(7.0)
    assert stats.max_wait == pytest.approx(5.0)
    assert stats.mean_wait() == pytest.approx(7.0 / 3)
    assert stats.wait_hist.count == 2  # only the contended acquires


def test_stats_uncontended_resource_records_no_waits(sim):
    res = _contended_run(sim, capacity=4)
    stats = res.stats
    assert stats.acquisitions == 3
    assert stats.contended == 0
    assert stats.total_wait == 0.0
    assert stats.wait_hist.count == 0
    assert stats.littles_law_residual() == 0.0


def test_stats_busy_time_matches_legacy_tracker(sim):
    res = _contended_run(sim)
    assert res.stats.busy_time == pytest.approx(
        res.tracker.busy_time, abs=1e-12)
    assert res.stats.utilization() == pytest.approx(
        res.tracker.utilization(), abs=1e-12)


def test_stats_queue_integral_equals_total_wait_when_drained(sim):
    # Little's law as an identity: queue empty at both window edges, so
    # integral(queue dt) == sum(waits) exactly.
    res = _contended_run(sim, holds=(2.0, 3.0, 1.0, 0.5))
    stats = res.stats
    assert stats.littles_law_residual() < 1e-9
    assert stats.mean_queue_length() == pytest.approx(
        stats.total_wait / stats.elapsed)
    assert stats.arrival_rate() == pytest.approx(
        stats.acquisitions / stats.elapsed)


def test_stats_reset_window_restarts_accounting(sim):
    res = Resource(sim, capacity=1)

    def worker():
        yield from res.use(4.0)
        res.stats.reset_window()
        yield sim.timeout(6.0)

    sim.run_process(worker())
    stats = res.stats
    assert stats.acquisitions == 0
    assert stats.busy_time == 0.0
    assert stats.utilization() == pytest.approx(0.0)
    assert stats.elapsed == pytest.approx(6.0)


def test_stats_utilization_tracks_capacity(sim):
    res = Resource(sim, capacity=2)

    def worker():
        yield from res.use(10.0)

    sim.run_process(worker())
    assert res.stats.utilization() == pytest.approx(0.5)
    assert res.stats.busy_time == pytest.approx(10.0)


def test_stats_as_dict_is_json_ready(sim):
    import json

    res = _contended_run(sim)
    payload = res.stats.as_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["capacity"] == 1
    assert payload["acquisitions"] == 3
    assert payload["contended"] == 2
    assert payload["wait_s"] == pytest.approx(7.0)
    assert 0.0 <= payload["utilization"] <= 1.0


@settings(max_examples=30, deadline=None)
@given(holds=st.lists(st.floats(min_value=0.01, max_value=5.0),
                      min_size=1, max_size=12),
       capacity=st.integers(min_value=1, max_value=4))
def test_stats_littles_law_property(holds, capacity):
    """Over a run that starts and ends with an empty queue, the
    queue-depth integral equals the summed waits (Little's law), and
    stats busy time agrees with the legacy tracker."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)

    def worker(hold):
        yield from res.use(hold)

    for hold in holds:
        sim.spawn(worker(hold))
    sim.run()
    stats = res.stats
    assert stats.acquisitions == len(holds)
    assert stats.littles_law_residual() < 1e-9
    assert stats.busy_time == pytest.approx(res.tracker.busy_time)
    assert stats.busy_time == pytest.approx(sum(holds))


@settings(max_examples=30, deadline=None)
@given(holds=st.lists(st.floats(min_value=0.01, max_value=5.0),
                      min_size=1, max_size=12),
       capacity=st.integers(min_value=1, max_value=4))
def test_resource_conservation_property(holds, capacity):
    """Total busy time equals the sum of holds; makespan is bounded by
    the serial and ideal-parallel extremes."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)

    def worker(hold):
        yield from res.use(hold)

    for hold in holds:
        sim.spawn(worker(hold))
    sim.run()
    total = sum(holds)
    assert res.tracker.busy_time == pytest.approx(total)
    assert sim.now <= total + 1e-9
    assert sim.now >= total / capacity - 1e-9
    assert res.available == capacity
