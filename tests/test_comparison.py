"""Integration tests: the comparison harness and cross-stack equivalence."""

import pytest

from repro.core import STACK_KINDS, TestbedParams, make_stack
from repro.core.comparison import StorageStack


def test_all_kinds_construct_and_mount():
    for kind in STACK_KINDS:
        stack = make_stack(kind)
        assert stack.mounted


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        StorageStack("nfsv9")


def test_kind_specializes_nfs_version():
    assert make_stack("nfsv2").params.nfs.version == 2
    assert make_stack("nfsv3").params.nfs.version == 3
    assert make_stack("nfsv4").params.nfs.version == 4
    enhanced = make_stack("nfs-enhanced").params.nfs
    assert enhanced.consistent_metadata_cache
    assert enhanced.directory_delegation


def test_iscsi_places_fs_at_client():
    iscsi = make_stack("iscsi")
    nfs = make_stack("nfsv3")
    assert iscsi.fs.cpu is iscsi.client_host.cpu     # client-side ext3
    assert nfs.fs.cpu is nfs.server_host.cpu         # server-side ext3


def test_same_workload_same_result_every_stack(any_stack):
    """The paper's methodology: one workload, every stack, same semantics."""
    c = any_stack.client

    def work():
        yield from c.mkdir("/w")
        fd = yield from c.creat("/w/file")
        n = yield from c.write(fd, 12_345)
        yield from c.close(fd)
        st = yield from c.stat("/w/file")
        names = yield from c.readdir("/w")
        yield from c.chmod("/w/file", 0o600)
        ok = yield from c.access("/w/file")
        yield from c.rename("/w/file", "/w/file2")
        yield from c.unlink("/w/file2")
        yield from c.rmdir("/w")
        return n, st.size, names, ok

    assert any_stack.run(work()) == (12_345, 12_345, ["file"], True)
    any_stack.quiesce()


def test_messages_accumulate_and_snapshot(any_stack):
    c = any_stack.client
    snap = any_stack.snapshot()

    def work():
        yield from c.mkdir("/x")

    any_stack.run(work())
    any_stack.quiesce()
    delta = any_stack.delta(snap)
    assert delta.messages >= 0
    assert delta.messages == any_stack.counters.messages - snap.messages


def test_make_cold_resets_caches(any_stack):
    c = any_stack.client

    def setup():
        fd = yield from c.creat("/f")
        yield from c.close(fd)
        yield from c.stat("/f")

    any_stack.run(setup())
    any_stack.make_cold()
    snap = any_stack.snapshot()

    def warm_stat():
        yield from c.stat("/f")

    any_stack.run(warm_stat())
    any_stack.quiesce()
    assert any_stack.delta(snap).messages >= 1   # nothing cached anymore


def test_set_rtt_slows_operations():
    times = {}
    for rtt in (0.0002, 0.050):
        stack = make_stack("nfsv3")
        stack.set_rtt(rtt)
        c = stack.client

        def work(c=c):
            yield from c.mkdir("/d")

        start = stack.now
        stack.run(work())
        times[rtt] = stack.now - start
    assert times[0.050] > times[0.0002] * 10


def test_cpu_windows_track_utilization():
    stack = make_stack("iscsi")
    c = stack.client

    def work():
        fd = yield from c.creat("/f")
        yield from c.write(fd, 1024 * 1024)
        yield from c.close(fd)

    stack.reset_cpu_windows()
    stack.run(work())
    assert 0.0 <= stack.client_host.cpu_utilization() <= 1.0
    assert 0.0 <= stack.server_host.cpu_utilization() <= 1.0


def test_deterministic_across_runs():
    """Identical configuration must yield identical traffic and timing."""
    results = []
    for _ in range(2):
        stack = make_stack("nfsv3")
        c = stack.client

        def work(c=c):
            yield from c.mkdir("/a")
            fd = yield from c.creat("/a/f")
            yield from c.write(fd, 40_000)
            yield from c.close(fd)

        stack.run(work())
        stack.quiesce()
        results.append((stack.now, stack.counters.requests,
                        stack.counters.bytes_sent))
    assert results[0] == results[1]


def test_custom_params_flow_through():
    params = TestbedParams()
    params = params.with_rtt(0.020)
    stack = make_stack("nfsv3", params)
    assert stack.link.rtt == 0.020
