"""Unit and property tests for the caching layer."""

from hypothesis import given, settings, strategies as st

from repro.cache import BlockCache, LruDict, PageCache
from repro.core.params import DiskParams
from repro.storage import Disk


# ---------------------------------------------------------------- LruDict

def test_lru_eviction_order():
    lru = LruDict(2)
    assert lru.put("a", 1) is None
    assert lru.put("b", 2) is None
    assert lru.put("c", 3) == ("a", 1)


def test_lru_get_refreshes_recency():
    lru = LruDict(2)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.get("a")
    assert lru.put("c", 3) == ("b", 2)


def test_lru_peek_does_not_refresh():
    lru = LruDict(2)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.peek("a")
    assert lru.put("c", 3) == ("a", 1)


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["put", "get", "pop"]),
                              st.integers(0, 20)), max_size=120),
       capacity=st.integers(1, 8))
def test_lru_never_exceeds_capacity(ops, capacity):
    lru = LruDict(capacity)
    for op, key in ops:
        if op == "put":
            lru.put(key, key)
        elif op == "get":
            lru.get(key)
        else:
            lru.pop(key)
        assert len(lru) <= capacity


# ---------------------------------------------------------------- BlockCache

def _cache(sim, blocks=256, **kwargs):
    disk = Disk(sim, DiskParams(write_back_cache=False))
    cache = BlockCache(sim, disk, capacity_bytes=blocks * 4096,
                       start_flusher=False, **kwargs)
    return disk, cache


def test_read_miss_then_hit(sim):
    disk, cache = _cache(sim)

    def work():
        yield from cache.read(10)
        yield from cache.read(10)

    sim.run_process(work())
    assert disk.stats.read_ops == 1
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_contiguous_misses_merge_into_one_device_read(sim):
    disk, cache = _cache(sim)

    def work():
        yield from cache.read_range(100, 16)

    sim.run_process(work())
    assert disk.stats.read_ops == 1
    assert disk.stats.blocks_read == 16


def test_write_is_deferred_until_flush(sim):
    disk, cache = _cache(sim)

    def work():
        yield from cache.write(5)
        assert disk.stats.write_ops == 0
        yield from cache.sync()

    sim.run_process(work())
    assert disk.stats.write_ops == 1
    assert cache.dirty_blocks == 0


def test_flush_coalesces_adjacent_dirty_blocks(sim):
    disk, cache = _cache(sim)

    def work():
        for block in (7, 5, 6, 20):
            yield from cache.write(block)
        yield from cache.sync()

    sim.run_process(work())
    assert disk.stats.write_ops == 2   # [5..7] and [20]
    assert disk.stats.blocks_written == 4


def test_flush_respects_coalescing_cap(sim):
    disk, cache = _cache(sim, max_coalesced_bytes=2 * 4096)

    def work():
        yield from cache.write_range(0, 8)
        yield from cache.sync()

    sim.run_process(work())
    assert disk.stats.write_ops == 4


def test_write_through_bypasses_dirty_state(sim):
    disk, cache = _cache(sim)

    def work():
        yield from cache.write_through(30, 2)

    sim.run_process(work())
    assert disk.stats.write_ops == 1
    assert cache.dirty_blocks == 0
    assert cache.contains(30)


def test_discard_drops_dirty_without_io(sim):
    disk, cache = _cache(sim)

    def work():
        yield from cache.write_range(0, 4)
        cache.discard(range(0, 4))
        yield from cache.sync()

    sim.run_process(work())
    assert disk.stats.write_ops == 0


def test_mark_clean_removes_from_flusher(sim):
    disk, cache = _cache(sim)

    def work():
        yield from cache.write(9)
        cache.mark_clean([9])
        yield from cache.sync()

    sim.run_process(work())
    assert disk.stats.write_ops == 0
    assert cache.contains(9)


def test_dirty_eviction_forces_writeback(sim):
    disk, cache = _cache(sim, blocks=4)

    def work():
        for block in range(8):
            yield from cache.write(block)
        yield sim.timeout(1)

    sim.run_process(work())
    sim.run()
    assert disk.stats.write_ops >= 1


def test_invalidate_all_loses_everything(sim):
    disk, cache = _cache(sim)

    def work():
        yield from cache.read(3)
        cache.invalidate_all()
        yield from cache.read(3)

    sim.run_process(work())
    assert disk.stats.read_ops == 2


def test_inflight_read_deduplicated(sim):
    disk, cache = _cache(sim)

    def reader():
        yield from cache.read(77)

    sim.spawn(reader())
    sim.spawn(reader())
    sim.run()
    assert disk.stats.read_ops == 1


def test_dirty_throttling_blocks_writer(sim):
    disk, cache = _cache(sim, blocks=16)
    limit = cache.dirty_limit

    def work():
        for block in range(limit + 4):
            yield from cache.write(block)
        return sim.now

    finished = sim.run_process(work())
    assert finished > 0.0  # had to wait for at least one flush


# ---------------------------------------------------------------- PageCache

def test_page_cache_hit_miss_accounting():
    pages = PageCache(capacity_pages=64)
    assert pages.lookup(1, 0) is None
    pages.insert(1, 0, now=0.0)
    assert pages.lookup(1, 0) is not None
    assert pages.stats.hits == 1
    assert pages.stats.misses == 1


def test_page_cache_dirty_tracking():
    pages = PageCache(capacity_pages=64)
    pages.insert(1, 0, now=0.0, dirty=True)
    pages.insert(1, 1, now=0.0, dirty=True)
    pages.insert(2, 0, now=0.0)
    assert pages.dirty_pages() == [(1, 0), (1, 1)]
    assert pages.dirty_pages(2) == []
    pages.mark_clean(1, 0)
    assert pages.dirty_pages() == [(1, 1)]


def test_page_cache_eviction_callback():
    evicted = []
    pages = PageCache(capacity_pages=2, on_evict_dirty=lambda f, i: evicted.append((f, i)))
    pages.insert(1, 0, now=0.0, dirty=True)
    pages.insert(1, 1, now=0.0)
    pages.insert(1, 2, now=0.0)
    assert evicted == [(1, 0)]


def test_page_cache_invalidate_file():
    pages = PageCache(capacity_pages=16)
    for index in range(4):
        pages.insert(7, index, now=0.0, dirty=True)
    pages.insert(8, 0, now=0.0)
    pages.invalidate_file(7)
    assert pages.dirty_count == 0
    assert pages.peek(8, 0) is not None


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(
    st.tuples(st.integers(1, 4), st.integers(0, 10), st.booleans()),
    max_size=80,
))
def test_page_cache_dirty_set_consistency(ops):
    """Every dirty key must refer to a resident, dirty page."""
    pages = PageCache(capacity_pages=16)
    for file_id, index, dirty in ops:
        pages.insert(file_id, index, now=0.0, dirty=dirty)
    for file_id, index in pages.dirty_pages():
        page = pages.peek(file_id, index)
        assert page is not None and page.dirty
