"""repro.check.sarif + the ``repro lint`` CLI contract.

SARIF output must validate against the 2.1.0 structure (checked by the
offline validator, which itself must reject broken documents), and the
CLI must keep its exit-code and byte-stability contracts: 0 clean /
1 violations, ``--format json|sarif`` byte-identical across reruns,
``--fix`` a no-op on the second run, ``--debt`` failing only on
reasonless suppressions.
"""

from __future__ import annotations

import json

import pytest

from repro.check import sarif, simlint
from repro.cli import main


@pytest.fixture
def dirty_tree(tmp_path):
    (tmp_path / "dirty.py").write_text(
        "import time\n"
        "import random\n"
        "def go(sim):\n"
        "    t = time.time()\n"
        "    rng = random.Random()\n"
        "    for x in {'b', 'a'}:\n"
        "        sim.log(x)\n")
    return tmp_path


# ------------------------------------------------------------------ sarif


def test_sarif_output_validates(dirty_tree):
    violations = simlint.lint_paths([str(dirty_tree)])
    assert violations
    document = sarif.format_sarif(violations)
    assert sarif.validate_sarif(document) == []
    parsed = json.loads(document)
    assert parsed["version"] == "2.1.0"
    run = parsed["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    # The full rule catalog rides along, and every result points into it.
    ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert ids == sorted(simlint.RULES)
    for result in run["results"]:
        assert ids[result["ruleIndex"]] == result["ruleId"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_sarif_empty_run_validates():
    assert sarif.validate_sarif(sarif.format_sarif([])) == []


def test_sarif_is_byte_stable(dirty_tree):
    violations = simlint.lint_paths([str(dirty_tree)])
    assert sarif.format_sarif(violations) == sarif.format_sarif(violations)


def test_validator_rejects_broken_documents():
    assert sarif.validate_sarif("not json") != []
    assert sarif.validate_sarif({}) != []
    assert sarif.validate_sarif({"version": "2.0.0", "runs": []}) != []
    assert sarif.validate_sarif({"version": "2.1.0", "runs": [{}]}) != []
    good = json.loads(sarif.format_sarif([]))
    good["runs"][0]["results"] = [{"ruleId": "NOPE",
                                   "message": {"text": "x"}}]
    assert any("NOPE" in problem
               for problem in sarif.validate_sarif(good))
    bad_region = json.loads(sarif.format_sarif([]))
    bad_region["runs"][0]["results"] = [{
        "message": {"text": "x"},
        "locations": [{"physicalLocation": {
            "artifactLocation": {"uri": "a.py"},
            "region": {"startLine": 0}}}],
    }]
    assert sarif.validate_sarif(bad_region) != []


# ------------------------------------------------------------ CLI contract


def test_cli_exit_codes(dirty_tree, tmp_path, capsys):
    clean = tmp_path / "clean"
    clean.mkdir()
    (clean / "ok.py").write_text("x = 1\n")
    assert main(["lint", str(clean)]) == 0
    assert main(["lint", str(dirty_tree / "dirty.py")]) == 1
    capsys.readouterr()


def test_cli_json_is_stable_and_sorted(dirty_tree, capsys):
    main(["lint", "--format", "json", str(dirty_tree)])
    first = capsys.readouterr().out
    main(["lint", "--format", "json", str(dirty_tree)])
    second = capsys.readouterr().out
    assert first == second
    document = json.loads(first)
    assert list(document) == sorted(document)
    assert json.dumps(document, indent=2, sort_keys=True) + "\n" == first


def test_cli_sarif_validates(dirty_tree, capsys):
    assert main(["lint", "--format", "sarif", str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert sarif.validate_sarif(out) == []


def test_cli_fix_then_clean_and_idempotent(dirty_tree, capsys):
    assert main(["lint", "--fix", str(dirty_tree)]) == 1  # D101 remains
    first = capsys.readouterr().out
    assert "fixed" in first
    remaining = [v.code for v in simlint.lint_paths([str(dirty_tree)])]
    assert remaining == ["D101"]  # the wall-clock read is not mechanical
    assert main(["lint", "--fix", str(dirty_tree)]) == 1
    second = capsys.readouterr().out
    assert "nothing to fix" in second


def test_cli_debt_exit_codes(tmp_path, capsys):
    reasoned = tmp_path / "reasoned.py"
    reasoned.write_text(
        "import time\n"
        "t = time.time()  # simlint: disable=D101 -- host timing\n")
    assert main(["lint", "--debt", str(reasoned)]) == 0
    out = capsys.readouterr().out
    assert "host timing" in out and "0 without a reason" in out
    bare = tmp_path / "bare.py"
    bare.write_text(
        "import time\n"
        "t = time.time()  # simlint: disable=D101\n")
    assert main(["lint", "--debt", str(bare)]) == 1
    assert "NO REASON" in capsys.readouterr().out


def test_debt_ignores_suppressions_inside_strings(tmp_path):
    (tmp_path / "fixture.py").write_text(
        'SRC = "x = 1  # simlint: disable=D101"\n'
        "y = 2  # simlint: disable=D104 -- real one\n")
    suppressions = simlint.collect_suppressions([str(tmp_path)])
    assert len(suppressions) == 1
    assert suppressions[0].line == 2
    assert suppressions[0].codes == ("D104",)
    assert suppressions[0].reason == "real one"


def test_debt_parses_file_wide_scope(tmp_path):
    (tmp_path / "wide.py").write_text(
        "# simlint: disable-file=O301,O302 -- fixtures drive hooks\n"
        "x = 1\n")
    suppressions = simlint.collect_suppressions([str(tmp_path)])
    assert len(suppressions) == 1
    assert suppressions[0].scope == "file"
    assert suppressions[0].codes == ("O301", "O302")
    assert suppressions[0].reason == "fixtures drive hooks"
