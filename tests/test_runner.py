"""Tests for the parallel, cached experiment runner (repro.core.runner)."""

import json

import pytest

from repro.core.runner import (
    CELL_KINDS,
    Cell,
    ExperimentRunner,
    cell_key,
)

# Small, fast cells: one per stack kind, a millisecond-scale workload.
CELLS = [
    Cell("quick?nfsv3", "quick", {"kind": "nfsv3"}),
    Cell("quick?iscsi", "quick", {"kind": "iscsi"}),
    Cell("batching?16", "batching", {"op": "mkdir", "batch": 16}),
]


def test_merge_order_follows_cell_order_not_completion():
    results = ExperimentRunner(jobs=None, use_cache=False).run(CELLS)
    assert list(results) == [cell.id for cell in CELLS]


def test_parallel_results_byte_identical_to_serial():
    serial = ExperimentRunner(jobs=1, use_cache=False).run(CELLS)
    parallel = ExperimentRunner(jobs=4, use_cache=False).run(CELLS)
    dump = lambda r: json.dumps(r, sort_keys=True)  # noqa: E731
    assert dump(serial) == dump(parallel)


def test_cache_hit_on_rerun(tmp_path):
    runner = ExperimentRunner(jobs=None, cache_dir=str(tmp_path))
    first = runner.run(CELLS)
    assert runner.cache_hits == 0
    assert runner.cache_misses == len(CELLS)

    rerun = ExperimentRunner(jobs=None, cache_dir=str(tmp_path))
    second = rerun.run(CELLS)
    assert rerun.cache_hits == len(CELLS)
    assert rerun.cache_misses == 0
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True)


def test_cache_invalidated_by_param_change(tmp_path):
    cell = Cell("b16", "batching", {"op": "mkdir", "batch": 16})
    changed = Cell("b16", "batching", {"op": "mkdir", "batch": 64})
    assert cell_key(cell) != cell_key(changed)

    runner = ExperimentRunner(jobs=None, cache_dir=str(tmp_path))
    runner.run([cell])
    rerun = ExperimentRunner(jobs=None, cache_dir=str(tmp_path))
    results = rerun.run([changed])
    assert rerun.cache_hits == 0
    assert rerun.cache_misses == 1
    assert results["b16"] != runner.run([cell])["b16"]


def test_no_cache_flag_recomputes(tmp_path):
    seed = ExperimentRunner(jobs=None, cache_dir=str(tmp_path))
    seed.run(CELLS[:1])
    runner = ExperimentRunner(jobs=None, cache_dir=str(tmp_path),
                              use_cache=False)
    runner.run(CELLS[:1])
    assert runner.cache_hits == 0
    assert runner.cache_misses == 1


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown cell kind"):
        ExperimentRunner(jobs=None, use_cache=False).run(
            [Cell("x", "no-such-kind", {})])


def test_duplicate_cell_ids_rejected():
    with pytest.raises(ValueError, match="duplicate cell id"):
        ExperimentRunner(jobs=None, use_cache=False).run(
            [CELLS[0], CELLS[0]])


def test_registered_kinds_cover_the_paper():
    for kind in ("quick", "syscall_table", "seqrand", "seqrand_table",
                 "postmark", "tpcc", "tpch", "kernel_tree", "batching",
                 "depth_point", "io_size_point", "sharing",
                 "metadata_cache", "bench_case"):
        assert kind in CELL_KINDS


def test_bench_suite_identical_across_runner_configs(tmp_path):
    from repro.obs import bench

    plain = bench.run_suite("quick")
    pooled = bench.run_suite(
        "quick", runner=ExperimentRunner(jobs=2, use_cache=False))
    cached_runner = ExperimentRunner(jobs=None, cache_dir=str(tmp_path))
    bench.run_suite("quick", runner=cached_runner)          # populate
    cached = bench.run_suite(
        "quick",
        runner=ExperimentRunner(jobs=None, cache_dir=str(tmp_path)))
    dump = lambda r: json.dumps(r, sort_keys=True)  # noqa: E731
    assert dump(plain) == dump(pooled) == dump(cached)
