"""Unit and property tests for the disk and RAID-5 models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import DiskParams
from repro.sim import Simulator
from repro.storage import Disk, Raid5Volume


def _fast_disk_params(**overrides):
    base = dict(
        sequential_bandwidth=40 * 1024 * 1024,
        per_request_overhead=0.001,
        short_seek=0.0002,
        full_seek=0.008,
        rotational_latency=0.0004,
        write_back_cache=False,
    )
    base.update(overrides)
    return DiskParams(**base)


def test_sequential_read_skips_seek(sim):
    disk = Disk(sim, _fast_disk_params())

    def work():
        yield from disk.read(1000, 1)      # random: seek + rotation
        t1 = sim.now
        yield from disk.read(1001, 1)      # head is there: sequential
        return t1, sim.now

    t1, t2 = sim.run_process(work())
    assert (t2 - t1) < t1                  # no seek or rotation on the second


def test_random_read_pays_seek_and_rotation(sim):
    params = _fast_disk_params()
    disk = Disk(sim, params)
    near = disk.service_time(1, 1)
    far = disk.service_time(disk.nblocks // 2, 1)
    assert far > near > params.per_request_overhead


def test_write_back_cache_absorbs_writes(sim):
    cached = Disk(sim, _fast_disk_params(write_back_cache=True))
    uncached = Disk(sim, _fast_disk_params())
    far = cached.nblocks // 2
    assert cached.service_time(far, 1, is_write=True) < \
        uncached.service_time(far, 1, is_write=True)


def test_disk_rejects_out_of_range(sim):
    disk = Disk(sim, _fast_disk_params())

    def work():
        yield from disk.read(disk.nblocks, 1)

    with pytest.raises(ValueError):
        sim.run_process(work())


def test_disk_queue_serializes(sim):
    disk = Disk(sim, _fast_disk_params())

    def reader():
        yield from disk.read(0, 1)

    single = Simulator()
    d2 = Disk(single, _fast_disk_params())
    single.run_process(d2.read(0, 1))
    one = single.now

    sim.spawn(disk.read(0, 1))
    sim.spawn(disk.read(0, 1))
    sim.run()
    assert sim.now >= 2 * one - 1e-9


# ---------------------------------------------------------------- raid

def test_raid_geometry_bijective():
    sim = Simulator()
    raid = Raid5Volume(sim)
    seen = set()
    for block in range(0, 4096):
        place = raid.locate(block)
        assert place not in seen
        seen.add(place)


def test_raid_parity_rotates():
    sim = Simulator()
    raid = Raid5Volume(sim)
    unit = raid.raid.stripe_unit_blocks
    row_blocks = unit * raid.raid.data_disks
    parities = {raid.parity_disk_for(row * row_blocks) for row in range(5)}
    assert len(parities) == 5  # rotates over all 5 spindles


def test_raid_data_never_on_parity_disk():
    sim = Simulator()
    raid = Raid5Volume(sim)
    for block in range(0, 2048, 7):
        disk, _physical = raid.locate(block)
        assert disk != raid.parity_disk_for(block)


def test_raid_read_spreads_across_disks(sim):
    raid = Raid5Volume(sim)
    unit = raid.raid.stripe_unit_blocks

    def work():
        yield from raid.read(0, unit * 4)   # a full stripe row

    sim.run_process(work())
    busy = [d for d in raid.disks if d.stats.read_ops]
    assert len(busy) == 4


def test_raid_full_stripe_write_touches_all_disks(sim):
    raid = Raid5Volume(sim)
    unit = raid.raid.stripe_unit_blocks

    def work():
        yield from raid.write(0, unit * 4)

    sim.run_process(work())
    assert all(d.stats.write_ops for d in raid.disks)


def test_raid_small_write_updates_parity(sim):
    raid = Raid5Volume(sim)

    def work():
        yield from raid.write(0, 1)

    sim.run_process(work())
    parity_disk = raid.disks[raid.parity_disk_for(0)]
    assert parity_disk.stats.write_ops == 1


@settings(max_examples=50, deadline=None)
@given(start=st.integers(min_value=0, max_value=100_000),
       count=st.integers(min_value=1, max_value=200))
def test_raid_split_runs_cover_exactly(start, count):
    """_split_runs partitions [start, start+count) without gaps/overlap."""
    sim = Simulator()
    raid = Raid5Volume(sim)
    runs = raid._split_runs(start, count)
    assert sum(length for _d, _p, length in runs) == count
    rebuilt = []
    for disk, physical, length in runs:
        for i in range(length):
            rebuilt.append((disk, physical + i))
    # Every (disk, physical) must be the image of exactly one logical block.
    logical = [raid.locate(b) for b in range(start, start + count)]
    assert sorted(rebuilt) == sorted(logical)
