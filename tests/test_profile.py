"""Tests for repro.obs.profile — attribution, critical paths, queueing."""
# simlint: disable-file=O301 -- tests drive the tracer directly; the guard is the production contract under test

import pytest

from repro.core.comparison import make_stack
from repro.obs import (
    Profile,
    format_attribution,
    format_critical_path,
    format_resource_report,
    resource_report,
)
from repro.obs.tracer import Tracer
from repro.sim import Simulator


# ------------------------------------------------------------- synthetic trees

def _span(tracer, name, cat="span"):
    return tracer.begin_span(name, cat=cat)


def test_critical_path_tiles_nested_spans():
    sim = Simulator()
    tracer = Tracer(sim)

    def work():
        outer = tracer.begin_span("outer", cat="syscall")
        yield sim.timeout(1.0)                    # outer exclusive
        inner = tracer.begin_span("inner", cat="disk")
        yield sim.timeout(2.0)                    # inner
        tracer.end_span(inner)
        yield sim.timeout(0.5)                    # outer exclusive again
        tracer.end_span(outer)

    sim.run_process(work())
    profile = Profile(tracer)
    (root,) = profile.roots
    path = profile.critical_path(root)
    assert sum(seg.duration for seg in path) == pytest.approx(
        root.duration, abs=1e-12)
    by_span = {}
    for seg in path:
        by_span[seg.span.name] = by_span.get(seg.span.name, 0.0) + seg.duration
    assert by_span["outer"] == pytest.approx(1.5)
    assert by_span["inner"] == pytest.approx(2.0)
    # Segments are returned in time order and contiguous.
    for before, after in zip(path, path[1:]):
        assert before.end == pytest.approx(after.start)


def test_critical_path_charges_parallel_children_to_last_blocker():
    # Two children run concurrently; the overlap belongs to the one that
    # finishes last (it is the blocker), so the tiling never double-counts.
    sim = Simulator()
    tracer = Tracer(sim)

    def child(name, delay):
        span = tracer.begin_span(name, cat="disk")
        yield sim.timeout(delay)
        tracer.end_span(span)

    def parent():
        span = tracer.begin_span("op", cat="syscall")
        jobs = []
        for name, delay in (("fast", 1.0), ("slow", 3.0)):
            job = sim.spawn(child(name, delay))
            job.trace_parent = tracer.current_span_id()
            jobs.append(job)
        yield sim.all_of(jobs)
        tracer.end_span(span)

    sim.run_process(parent())
    profile = Profile(tracer)
    (root,) = profile.roots
    path = profile.critical_path(root)
    assert sum(seg.duration for seg in path) == pytest.approx(3.0, abs=1e-12)
    slow = sum(s.duration for s in path if s.span.name == "slow")
    fast = sum(s.duration for s in path if s.span.name == "fast")
    assert slow == pytest.approx(3.0)
    assert fast == 0.0  # never the blocker


def test_attribution_exclusive_conserves_root_time():
    sim = Simulator()
    tracer = Tracer(sim)

    def work():
        for _ in range(3):
            outer = tracer.begin_span("syscall:op", cat="syscall")
            inner = tracer.begin_span("rpc:X", cat="rpc")
            yield sim.timeout(0.25)
            tracer.end_span(inner)
            yield sim.timeout(0.75)
            tracer.end_span(outer)

    sim.run_process(work())
    profile = Profile(tracer)
    attribution = profile.attribution()
    assert sum(s.exclusive for s in attribution.values()) == pytest.approx(
        profile.accounted, abs=1e-9)
    assert attribution["rpc"].exclusive == pytest.approx(0.75)
    assert attribution["syscall"].exclusive == pytest.approx(2.25)
    assert attribution["syscall"].inclusive == pytest.approx(3.0)
    # Request-flow ordering: syscall before rpc.
    assert list(attribution) == ["syscall", "rpc"]


# ------------------------------------------------------ stack-level invariants

@pytest.fixture(scope="module", params=["nfsv3", "iscsi"])
def traced_stack(request):
    """A traced stack that ran a small mixed workload (module-cached)."""
    stack = make_stack(request.param, trace=True)
    client = stack.client

    def work():
        yield from client.mkdir("/d")
        fd = yield from client.creat("/d/f")
        for i in range(8):
            yield from client.pwrite(fd, 8192, i * 8192)
        yield from client.fsync(fd)
        for i in range(8):
            yield from client.pread(fd, 8192, i * 8192)
        yield from client.close(fd)
        yield from client.stat("/d/f")

    stack.run(work(), name="work")
    stack.quiesce()
    return stack


def test_critical_path_equals_span_duration_for_every_syscall(traced_stack):
    # Acceptance: the critical-path length for each top-level op equals
    # that op's span duration within 1e-9.
    profile = Profile(traced_stack.tracer)
    assert profile.roots
    for root in profile.roots:
        path = profile.critical_path(root)
        assert sum(seg.duration for seg in path) == pytest.approx(
            root.duration, abs=1e-9)


def test_exclusive_attribution_bounded_by_simulated_time(traced_stack):
    # Acceptance: per-layer exclusive times sum to <= total simulated
    # time (syscall roots are serial, so the tilings never overlap).
    profile = Profile(traced_stack.tracer)
    attribution = profile.attribution()
    total_exclusive = sum(s.exclusive for s in attribution.values())
    assert total_exclusive == pytest.approx(profile.accounted, abs=1e-9)
    assert total_exclusive <= traced_stack.now + 1e-9


def test_resource_stats_busy_matches_legacy_disk_busy_time(traced_stack):
    # Acceptance: per-resource utilization from the new stats matches the
    # legacy accounting — the tracker exactly, Disk.busy_time to 1e-9.
    for disk in traced_stack.raid.disks:
        stats = disk.queue.stats
        assert stats.busy_time == disk.queue.tracker.busy_time
        assert stats.busy_time == pytest.approx(disk.busy_time, abs=1e-9)
        if traced_stack.now > 0:
            expected = disk.busy_time / traced_stack.now
            assert stats.utilization() == pytest.approx(expected, abs=1e-9)


def test_resource_stats_littles_law_holds(traced_stack):
    # With the run quiesced every queue is empty, so the queue-depth
    # integral must equal the summed waits exactly (Little's law).
    for resource in traced_stack.resources():
        assert resource.stats.littles_law_residual() < 1e-9


def test_critical_path_summary_ranks_fsync_blockers(traced_stack):
    # fsync is the op that always blocks on real I/O on both stacks
    # (NFSv3 absorbs pwrite into the client cache at zero cost).
    profile = Profile(traced_stack.tracer)
    ranked = profile.critical_path_summary("syscall:fsync")
    assert ranked
    totals = [seconds for _name, seconds, _hops in ranked]
    assert totals == sorted(totals, reverse=True)
    roots = [r for r in profile.roots if r.name == "syscall:fsync"]
    assert sum(totals) == pytest.approx(
        sum(r.duration for r in roots), abs=1e-9)


def test_format_helpers_render_tables(traced_stack):
    profile = Profile(traced_stack.tracer)
    attribution_text = format_attribution(profile)
    assert "layer" in attribution_text and "excl %" in attribution_text
    assert "100.0%" in attribution_text
    path_text = format_critical_path(profile, "syscall:fsync")
    assert "critical path for syscall:fsync" in path_text
    headers, rows = resource_report(traced_stack.resources())
    assert len(rows) == len(traced_stack.resources())
    report_text = format_resource_report(traced_stack.resources())
    assert "client.cpu" in report_text and "server.cpu" in report_text


def test_profile_without_syscall_spans_falls_back_to_parentless():
    sim = Simulator()
    tracer = Tracer(sim)

    def work():
        span = tracer.begin_span("loose", cat="disk")
        yield sim.timeout(1.0)
        tracer.end_span(span)

    sim.run_process(work())
    profile = Profile(tracer)
    assert [root.name for root in profile.roots] == ["loose"]
    assert profile.accounted == pytest.approx(1.0)
