"""Declarative fault schedules.

A :class:`FaultPlan` is a list of typed fault events plus a seed for the
single RNG every probabilistic decision draws from.  Event times are
*relative to injector start* (i.e. to the beginning of the workload, not
to stack construction), so the same plan means the same thing on every
stack kind.

Plans round-trip through plain JSON (:meth:`FaultPlan.to_spec` /
:meth:`FaultPlan.from_spec`), which is what lets the experiment runner
cache and fan out fault cells like any other cell, and what the
``repro faults --plan FILE.json`` CLI loads.  A handful of named presets
(:data:`PRESETS`) cover the canonical degraded-mode scenarios.

Every probability is validated to ``[0, 1]`` and every duration to be
non-negative at construction time — the same contract
:class:`~repro.net.transport.DuplexTransport` now enforces on its
``loss_rate``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple, Type, Union

__all__ = [
    "LossBurst",
    "DuplicateWindow",
    "ReorderWindow",
    "LinkFlap",
    "LinkDegrade",
    "SlowDisk",
    "DiskFailure",
    "ServerCrash",
    "FaultPlan",
    "EVENT_TYPES",
    "PRESETS",
    "resolve_plan",
]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError("%s must be within [0, 1], got %r" % (name, value))


def _check_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ValueError("%s must be non-negative, got %r" % (name, value))


def _check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError("%s must be positive, got %r" % (name, value))


@dataclass(frozen=True)
class LossBurst:
    """A window during which each message is independently lost.

    On an unreliable (UDP-like) transport a lost message simply never
    arrives and recovery is the RPC retransmission timer.  On a reliable
    (TCP-like) transport the segment loss is repaired *below* the
    request/reply layer: the message is delayed by ``reliable_delay``
    (a TCP-RTO-class stall) instead of dropped — the paper's structural
    contrast between the two stacks' recovery machinery.
    """

    start: float
    duration: float
    loss_rate: float
    reliable_delay: float = 0.2

    kind = "loss"

    def __post_init__(self) -> None:
        _check_non_negative("start", self.start)
        _check_non_negative("duration", self.duration)
        _check_probability("loss_rate", self.loss_rate)
        _check_non_negative("reliable_delay", self.reliable_delay)


@dataclass(frozen=True)
class DuplicateWindow:
    """A window during which messages may be delivered twice.

    Duplicates only occur on unreliable transports (TCP sequence numbers
    suppress them); the second copy arrives ``extra_delay`` later, which
    is what exercises the server's duplicate-request cache.
    """

    start: float
    duration: float
    probability: float
    extra_delay: float = 0.0005

    kind = "duplicate"

    def __post_init__(self) -> None:
        _check_non_negative("start", self.start)
        _check_non_negative("duration", self.duration)
        _check_probability("probability", self.probability)
        _check_non_negative("extra_delay", self.extra_delay)


@dataclass(frozen=True)
class ReorderWindow:
    """A window during which messages may be held back and overtaken.

    An affected message gets a uniform extra delay in
    ``(0, max_extra_delay]``, letting later traffic pass it — out-of-order
    delivery on UDP, head-of-line-blocking-style stalls on TCP.
    """

    start: float
    duration: float
    probability: float
    max_extra_delay: float = 0.002

    kind = "reorder"

    def __post_init__(self) -> None:
        _check_non_negative("start", self.start)
        _check_non_negative("duration", self.duration)
        _check_probability("probability", self.probability)
        _check_positive("max_extra_delay", self.max_extra_delay)


@dataclass(frozen=True)
class LinkFlap:
    """The link goes fully dark for ``duration``; every message is lost.

    When the stack is iSCSI the initiator additionally treats the flap
    as a session failure: at link recovery it re-logs-in and re-queues
    the commands that were in flight.
    """

    start: float
    duration: float

    kind = "flap"

    def __post_init__(self) -> None:
        _check_non_negative("start", self.start)
        _check_non_negative("duration", self.duration)


@dataclass(frozen=True)
class LinkDegrade:
    """A window of reduced bandwidth and/or added propagation latency."""

    start: float
    duration: float
    bandwidth_factor: float = 0.1
    extra_latency: float = 0.0

    kind = "degrade"

    def __post_init__(self) -> None:
        _check_non_negative("start", self.start)
        _check_non_negative("duration", self.duration)
        _check_positive("bandwidth_factor", self.bandwidth_factor)
        _check_non_negative("extra_latency", self.extra_latency)


@dataclass(frozen=True)
class SlowDisk:
    """One spindle serves every request ``slowdown`` times slower."""

    start: float
    duration: float
    disk: int = 0
    slowdown: float = 4.0

    kind = "slow_disk"

    def __post_init__(self) -> None:
        _check_non_negative("start", self.start)
        _check_non_negative("duration", self.duration)
        _check_non_negative("disk", self.disk)
        _check_positive("slowdown", self.slowdown)


@dataclass(frozen=True)
class DiskFailure:
    """A spindle fails; the array runs degraded (reconstruct reads).

    With ``rebuild_after`` set, a replacement spindle is rebuilt that
    many seconds later: the rebuild reads every surviving disk and
    writes the replacement over ``rebuild_blocks`` physical blocks, and
    only then does the array leave degraded mode.
    """

    start: float
    disk: int = 0
    rebuild_after: Optional[float] = None
    rebuild_blocks: int = 2048

    kind = "disk_fail"

    def __post_init__(self) -> None:
        _check_non_negative("start", self.start)
        _check_non_negative("disk", self.disk)
        if self.rebuild_after is not None:
            _check_non_negative("rebuild_after", self.rebuild_after)
        _check_positive("rebuild_blocks", self.rebuild_blocks)


@dataclass(frozen=True)
class ServerCrash:
    """The server goes down for ``duration``; all traffic is lost.

    On reboot the NFS server restarts: v2/v3 are stateless (only the
    duplicate-request cache evaporates; client RPC timers recover), v4
    additionally loses delegations and cache registrations (state
    recovery).  An iSCSI initiator re-logs-in when the target returns.
    """

    start: float
    duration: float

    kind = "crash"

    def __post_init__(self) -> None:
        _check_non_negative("start", self.start)
        _check_non_negative("duration", self.duration)


FaultEvent = Union[
    LossBurst,
    DuplicateWindow,
    ReorderWindow,
    LinkFlap,
    LinkDegrade,
    SlowDisk,
    DiskFailure,
    ServerCrash,
]

EVENT_TYPES: Dict[str, Type[Any]] = {
    cls.kind: cls
    for cls in (
        LossBurst,
        DuplicateWindow,
        ReorderWindow,
        LinkFlap,
        LinkDegrade,
        SlowDisk,
        DiskFailure,
        ServerCrash,
    )
}


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault events plus the RNG seed."""

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        known = tuple(EVENT_TYPES.values())
        for event in self.events:
            if not isinstance(event, known):
                raise TypeError("not a fault event: %r" % (event,))

    @property
    def is_empty(self) -> bool:
        return not self.events

    # -- (de)serialization ----------------------------------------------------

    def to_spec(self) -> Dict[str, Any]:
        """A plain-JSON description of this plan (``from_spec`` inverse)."""
        return {
            "seed": self.seed,
            "events": [dict(asdict(event), type=event.kind) for event in self.events],
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FaultPlan":
        """Build (and validate) a plan from a plain-JSON description."""
        if not isinstance(spec, dict):
            raise ValueError("fault plan spec must be a dict, got %r" % (spec,))
        events = []
        for entry in spec.get("events", ()):
            entry = dict(entry)
            type_name = entry.pop("type", None)
            event_cls = EVENT_TYPES.get(type_name)
            if event_cls is None:
                raise ValueError(
                    "unknown fault event type %r; one of %s"
                    % (type_name, sorted(EVENT_TYPES))
                )
            events.append(event_cls(**entry))
        return cls(events=tuple(events), seed=int(spec.get("seed", 0)))


# -- named presets -------------------------------------------------------------
# The canonical degraded-mode scenarios, expressed as plain specs so they
# are also documentation for the on-disk plan format.  Windows start
# early and run long so they cover any of the bench workloads.

PRESETS: Dict[str, Dict[str, Any]] = {
    "loss2": {
        "events": [
            {"type": "loss", "start": 0.0, "duration": 600.0, "loss_rate": 0.02},
        ],
    },
    "loss10": {
        "events": [
            {"type": "loss", "start": 0.0, "duration": 600.0, "loss_rate": 0.10},
        ],
    },
    "dup5": {
        "events": [
            {"type": "duplicate", "start": 0.0, "duration": 600.0, "probability": 0.05},
        ],
    },
    "reorder10": {
        "events": [
            {"type": "reorder", "start": 0.0, "duration": 600.0, "probability": 0.10},
        ],
    },
    "flap": {"events": [{"type": "flap", "start": 0.01, "duration": 0.4}]},
    "degrade": {
        "events": [
            {
                "type": "degrade",
                "start": 0.0,
                "duration": 600.0,
                "bandwidth_factor": 0.05,
                "extra_latency": 0.002,
            },
        ],
    },
    "slow-disk": {
        "events": [
            {
                "type": "slow_disk",
                "start": 0.0,
                "duration": 600.0,
                "disk": 0,
                "slowdown": 8.0,
            },
        ],
    },
    "disk-fail": {
        "events": [
            {
                "type": "disk_fail",
                "start": 0.01,
                "disk": 2,
                "rebuild_after": 0.05,
                "rebuild_blocks": 2048,
            },
        ],
    },
    "crash": {"events": [{"type": "crash", "start": 0.01, "duration": 1.0}]},
}


def resolve_plan(
    value: Union[None, str, Dict[str, Any], FaultPlan],
    seed: Optional[int] = None,
) -> FaultPlan:
    """Resolve a CLI/cell plan reference into a validated :class:`FaultPlan`.

    Accepts ``None`` or ``"none"`` (the empty plan), a preset name from
    :data:`PRESETS`, a path to a JSON spec file, an inline spec dict, or
    an existing plan.  ``seed``, when given, overrides the plan's seed.
    """
    if isinstance(value, FaultPlan):
        plan = value
    elif value is None or value == "none":
        plan = FaultPlan()
    elif isinstance(value, dict):
        plan = FaultPlan.from_spec(value)
    elif isinstance(value, str):
        if value in PRESETS:
            plan = FaultPlan.from_spec(PRESETS[value])
        elif os.path.exists(value):
            with open(value) as handle:
                plan = FaultPlan.from_spec(json.load(handle))
        else:
            raise ValueError(
                "unknown fault plan %r: not a preset (%s) and not a file"
                % (value, ", ".join(sorted(PRESETS)))
            )
    else:
        raise TypeError("cannot resolve a fault plan from %r" % (value,))
    if seed is not None and seed != plan.seed:
        plan = FaultPlan(events=plan.events, seed=seed)
    return plan
