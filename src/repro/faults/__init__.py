"""repro.faults: structured fault injection for both storage stacks.

The paper's NFS-vs-iSCSI comparison leans on recovery machinery — UDP RPC
timers and duplicate-request caches, TCP/iSCSI session recovery, RAID-5
degraded-mode reads — but the performance tables never exercise it.  This
package makes fault behavior a first-class experiment axis:

* :mod:`repro.faults.plan` — a :class:`FaultPlan` is a declarative,
  JSON-serializable schedule of typed fault events (packet-loss bursts,
  duplication and reordering windows, link flaps, bandwidth/latency
  degradation, slow-disk and disk-failure events, server crash + reboot),
  all driven by the simulator clock with a seeded RNG so every scenario
  run is deterministic and byte-reproducible;
* :mod:`repro.faults.injector` — a :class:`FaultInjector` wires a plan
  into a live :class:`~repro.core.comparison.StorageStack`: it filters
  messages on the transport, degrades the link, slows or fails RAID
  spindles, crashes and reboots the NFS server, and drops iSCSI sessions,
  emitting ``repro.obs`` spans so faults are visible in traces.

With no plan (or an empty one) nothing is attached and a stack behaves
bit-for-bit as before — fault injection is strictly opt-in.
"""

from .injector import FaultInjector
from .plan import (
    PRESETS,
    DiskFailure,
    DuplicateWindow,
    FaultPlan,
    LinkDegrade,
    LinkFlap,
    LossBurst,
    ReorderWindow,
    ServerCrash,
    SlowDisk,
    resolve_plan,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "LossBurst",
    "DuplicateWindow",
    "ReorderWindow",
    "LinkFlap",
    "LinkDegrade",
    "SlowDisk",
    "DiskFailure",
    "ServerCrash",
    "PRESETS",
    "resolve_plan",
]
