"""The fault injector: drives a :class:`~repro.faults.plan.FaultPlan`.

The injector is built against the concrete pieces of one testbed — the
transport, the link, the RAID array, and (depending on stack kind) the
NFS server or the iSCSI initiator — and :meth:`FaultInjector.start`
spawns one small driver process per scheduled event.  Each driver sleeps
until its window opens, applies the fault, sleeps through the window,
and reverts it, so every fault is a pure function of the simulator clock
and the plan's seeded RNG: two runs of the same scenario are
byte-identical.

Message-level faults go through :meth:`filter_message`, which the
transport consults for every delivery *only when an injector is
attached* — an unfaulted stack executes the exact pre-existing event
sequence.  The reliable/unreliable transport distinction is honored
here: on a TCP-like transport a "lost" message becomes a sub-RPC-timer
stall (TCP's own recovery) and duplicates are suppressed, while on a
UDP-like transport losses and duplicates reach the RPC layer — the
paper's recovery-machinery contrast, now exercisable.

Every applied fault is visible to ``repro.obs``: windows become spans
(``cat="fault"``) and individual drops/delays/duplicates become instant
events, so traces show exactly where a run degraded.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..obs.tracer import NULL_TRACER
from .plan import (
    DiskFailure,
    DuplicateWindow,
    FaultPlan,
    LinkDegrade,
    LinkFlap,
    LossBurst,
    ReorderWindow,
    ServerCrash,
    SlowDisk,
)

__all__ = ["FaultInjector"]

# filter_message verdicts (module constants so tests can reference them)
DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"

# (verdict, extra_delay) as returned by FaultInjector.filter_message.
Verdict = Tuple[Optional[str], float]

_LOG_LIMIT = 1000

# Extra stall tacked onto deliveries held across a down window on a
# reliable transport: the first TCP retransmission after the link
# recovers, not an instantaneous resume.
_RECONNECT_STALL = 0.05


class FaultInjector:
    """Applies one plan's faults to one wired storage stack."""

    def __init__(
        self,
        sim: Any,
        plan: FaultPlan,
        transport: Any = None,
        link: Any = None,
        raid: Any = None,
        nfs_server: Any = None,
        initiator: Any = None,
        tracer: Any = None,
    ):
        self.sim = sim
        self.plan = plan
        self.transport = transport
        self.link = link
        self.raid = raid
        self.nfs_server = nfs_server
        self.initiator = initiator
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.rng = random.Random(plan.seed)
        self.started = False
        # Active-window state consulted by filter_message.
        self._down = 0
        self._down_until = 0.0
        self._loss: List[LossBurst] = []
        self._dup: List[DuplicateWindow] = []
        self._reorder: List[ReorderWindow] = []
        # Observability: bounded event log + unbounded counters.
        self.counts: Dict[str, int] = {}
        self.log: List[Tuple[float, str, str]] = []
        if transport is not None:
            transport.fault = self
        if initiator is not None:
            initiator.enable_fault_mode()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Spawn the per-event driver processes (idempotent)."""
        if self.started:
            return
        self.started = True
        for index, event in enumerate(self.plan.events):
            name = "fault.%d.%s" % (index, event.kind)
            self.sim.spawn(self._driver(event), name=name)

    def _driver(self, event: Any) -> Generator:
        yield self.sim.timeout(event.start)
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin_span(
                "fault:" + event.kind,
                cat="fault",
                track="wire",
                **{k: v for k, v in vars(event).items() if v is not None},
            )
        self._note("window." + event.kind, "begin")
        try:
            if isinstance(event, (LossBurst, DuplicateWindow, ReorderWindow)):
                yield from self._drive_message_window(event)
            elif isinstance(event, LinkFlap):
                yield from self._drive_flap(event)
            elif isinstance(event, LinkDegrade):
                yield from self._drive_degrade(event)
            elif isinstance(event, SlowDisk):
                yield from self._drive_slow_disk(event)
            elif isinstance(event, DiskFailure):
                yield from self._drive_disk_failure(event)
            elif isinstance(event, ServerCrash):
                yield from self._drive_crash(event)
            else:  # pragma: no cover - plan validation makes this unreachable
                raise TypeError("unknown fault event %r" % (event,))
        finally:
            self._note("window." + event.kind, "end")
            if span is not None:
                self.tracer.end_span(span)

    # -- event drivers ---------------------------------------------------------

    def _drive_message_window(self, event: Any) -> Generator:
        active = {
            LossBurst: self._loss,
            DuplicateWindow: self._dup,
            ReorderWindow: self._reorder,
        }[type(event)]
        active.append(event)
        try:
            yield self.sim.timeout(event.duration)
        finally:
            active.remove(event)

    def _drive_flap(self, event: LinkFlap) -> Generator:
        self._down += 1
        self._down_until = max(self._down_until, self.sim.now + event.duration)
        try:
            yield self.sim.timeout(event.duration)
        finally:
            self._down -= 1
        if self.initiator is not None:
            # The broken TCP connection surfaces as an iSCSI session
            # failure once the link is back: re-login, re-queue.
            self.initiator.session_drop()

    def _drive_degrade(self, event: LinkDegrade) -> Generator:
        if self.link is None:
            return
        self.link.degrade(
            bandwidth_factor=event.bandwidth_factor,
            extra_latency=event.extra_latency,
        )
        try:
            yield self.sim.timeout(event.duration)
        finally:
            self.link.restore()

    def _drive_slow_disk(self, event: SlowDisk) -> Generator:
        if self.raid is None:
            return
        disk = self.raid.disks[event.disk % len(self.raid.disks)]
        disk.slowdown = event.slowdown
        try:
            yield self.sim.timeout(event.duration)
        finally:
            disk.slowdown = 1.0

    def _drive_disk_failure(self, event: DiskFailure) -> Generator:
        if self.raid is None:
            return
        disk = event.disk % len(self.raid.disks)
        self.raid.fail_disk(disk)
        self._note("disk.fail", "disk%d" % disk)
        if event.rebuild_after is None:
            return
        yield self.sim.timeout(event.rebuild_after)
        yield from self.raid.repair_disk(disk, rebuild_blocks=event.rebuild_blocks)
        self._note("disk.rebuilt", "disk%d" % disk)

    def _drive_crash(self, event: ServerCrash) -> Generator:
        self._down += 1
        self._down_until = max(self._down_until, self.sim.now + event.duration)
        try:
            yield self.sim.timeout(event.duration)
        finally:
            self._down -= 1
        if self.nfs_server is not None:
            self.nfs_server.restart()
            self._note("server.restart", self.nfs_server.name)
        if self.initiator is not None:
            self.initiator.session_drop()
            self._note("session.drop", self.initiator.name)

    # -- the transport hook ----------------------------------------------------

    def filter_message(self, message: Any, forward: bool) -> Verdict:
        """Decide the fate of one message: ``(verdict, extra_delay)``.

        Called by :meth:`~repro.net.transport.DuplexTransport._deliver`
        for every message while an injector is attached.  Verdicts are
        ``DROP`` (never arrives), ``DELAY`` (arrives ``extra_delay``
        late), ``DUPLICATE`` (arrives, plus a copy ``extra_delay``
        later), or ``None`` (unaffected).
        """
        reliable = self.transport is not None and self.transport.reliable
        if self._down:
            if reliable and self.initiator is None:
                # NFS over TCP: the connection outlives a short outage —
                # TCP holds the bytes and retransmits once the link (or
                # the server's stack) is back.  Deliver at window end
                # plus a reconnect stall instead of dropping.
                extra = max(0.0, self._down_until - self.sim.now)
                self._note("msg.tcp-stall", message.op)
                return DELAY, extra + _RECONNECT_STALL
            # UDP traffic (and iSCSI sessions, which fail over to a
            # re-login) is simply lost while the wire is dark.
            self._note("msg.drop", message.op)
            return DROP, 0.0
        if self._loss:
            burst = max(self._loss, key=lambda b: b.loss_rate)
            if self.rng.random() < burst.loss_rate:
                if reliable:
                    # TCP repairs the loss below the RPC layer: the
                    # exchange survives but stalls for an RTO.
                    self._note("msg.tcp-stall", message.op)
                    return DELAY, burst.reliable_delay
                self._note("msg.drop", message.op)
                return DROP, 0.0
        if self._dup and not reliable:
            window = max(self._dup, key=lambda w: w.probability)
            if self.rng.random() < window.probability:
                self._note("msg.duplicate", message.op)
                return DUPLICATE, window.extra_delay
        if self._reorder:
            window = max(self._reorder, key=lambda w: w.probability)
            if self.rng.random() < window.probability:
                extra = self.rng.uniform(0.0, window.max_extra_delay)
                self._note("msg.reorder", message.op)
                return DELAY, extra
        return None, 0.0

    # -- observability ---------------------------------------------------------

    def _note(self, name: str, detail: str) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        if len(self.log) < _LOG_LIMIT:
            self.log.append((self.sim.now, name, detail))
        if self.tracer.enabled:
            self.tracer.instant("fault." + name, cat="fault", track="wire", what=detail)

    def summary(self) -> Dict[str, Any]:
        """JSON-able digest for experiment cells and scenario tables."""
        return {"seed": self.plan.seed, "counts": dict(sorted(self.counts.items()))}
