"""Single-spindle disk model.

Service time for a request decomposes into the classic terms:

* per-request overhead (command processing, controller latency);
* a seek whose cost grows with the square root of the fraction of the
  LBA space crossed (the standard seek-curve approximation) — requests
  adjacent to the previous one pay nothing;
* rotational latency for non-sequential requests;
* media transfer at the streaming bandwidth.

The constants in :class:`~repro.core.params.DiskParams` are calibrated to
the paper's effective testbed behavior (caching ServeRAID controller,
benchmark files short-stroked on 18 GB drives); see EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Generator

from ..core.params import DiskParams
from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Resource, Simulator
from .blockdev import BlockDevice

__all__ = ["Disk"]


class Disk(BlockDevice):
    """One spindle: serial service through a FIFO queue."""

    def __init__(
        self,
        sim: Simulator,
        params: DiskParams = None,
        nblocks: int = None,
        name: str = "disk",
        tracer: NullTracer = None,
    ):
        self.params = params if params is not None else DiskParams()
        super().__init__(
            nblocks if nblocks is not None else self.params.capacity_blocks,
            name=name,
        )
        self.sim = sim
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.queue = Resource(sim, capacity=1, name=name + ".queue")
        self._head = 0  # block number just past the last access
        self.busy_time = 0.0
        # Service-time multiplier (repro.faults slow-disk windows); 1.0
        # leaves the healthy timing untouched.
        self.slowdown = 1.0

    # -- timing ----------------------------------------------------------------

    def service_time(self, start: int, count: int, is_write: bool = False) -> float:
        """Service time for the request, given the current head position."""
        p = self.params
        if is_write and p.write_back_cache:
            # Absorbed by the controller's battery-backed cache.
            return p.write_overhead + (count * self.block_size) / p.cache_bandwidth
        time = p.per_request_overhead
        if start != self._head:
            distance = abs(start - self._head) / float(self.nblocks)
            seek = p.short_seek + (p.full_seek - p.short_seek) * math.sqrt(distance)
            time += seek + p.rotational_latency
        time += (count * self.block_size) / p.sequential_bandwidth
        return time

    def _access(self, start: int, count: int, is_write: bool = False) -> Generator:
        self.check_range(start, count)
        span = None
        if self.tracer.enabled:
            # Begun before queueing so the span length includes queue wait.
            span = self.tracer.begin_span(
                "disk." + ("write" if is_write else "read"),
                cat="disk", track="server", dev=self.name,
                start=start, count=count, qdepth=self.queue.queue_length,
            )
        try:
            yield from self.queue.acquire()
            try:
                service = self.service_time(start, count, is_write)
                if self.slowdown != 1.0:
                    service *= self.slowdown
                if not (is_write and self.params.write_back_cache):
                    self._head = start + count
                self.busy_time += service
                yield self.sim.hold(service)
            finally:
                self.queue.release()
        finally:
            if span is not None:
                self.tracer.end_span(span)
        return None

    # -- BlockDevice interface ---------------------------------------------------

    def read(self, start: int, count: int = 1) -> Generator:
        """Coroutine: service a read of ``count`` blocks at ``start``."""
        yield from self._access(start, count)
        self.stats.note_read(count)
        return None

    def write(self, start: int, count: int = 1) -> Generator:
        """Coroutine: service a write of ``count`` blocks at ``start``."""
        yield from self._access(start, count, is_write=True)
        self.stats.note_write(count)
        return None
