"""Disk and RAID substrate."""

from .blockdev import BLOCK_SIZE, BlockDevice, BlockDeviceStats
from .disk import Disk
from .raid import Raid5Volume

__all__ = ["BLOCK_SIZE", "BlockDevice", "BlockDeviceStats", "Disk", "Raid5Volume"]
