"""RAID-5 array (4 data + 1 parity), mirroring the paper's two arrays.

Layout is left-symmetric RAID-5: logical blocks are striped across the data
disks in ``stripe_unit_blocks`` units, with the parity unit rotating one
disk per stripe row.

Writes distinguish the two canonical paths:

* **full-stripe write** — all data units of a row are written at once;
  parity is computed from the new data and all disks are written in
  parallel (large sequential writes from the journal/flusher take this
  path, which is why iSCSI's coalesced 128 KB writes are cheap);
* **small write** — a read-modify-write: read old data + old parity, write
  new data + new parity (two serialized disk passes on two spindles).

Parity computation charges CPU on the host running the array (the server),
contributing to the server-utilization asymmetries of Table 9.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..core.params import DiskParams, RaidParams
from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Process, Resource, Simulator
from .blockdev import BlockDevice
from .disk import Disk

__all__ = ["Raid5Volume"]


class Raid5Volume(BlockDevice):
    """A RAID-5 volume over ``data_disks + 1`` spindles."""

    def __init__(
        self,
        sim: Simulator,
        raid_params: Optional[RaidParams] = None,
        disk_params: Optional[DiskParams] = None,
        cpu: Optional[Resource] = None,
        parity_cpu_per_byte: float = 0.0,
        io_cpu: float = 0.0,
        name: str = "raid5",
        tracer: Optional[NullTracer] = None,
    ):
        self.raid = raid_params if raid_params is not None else RaidParams()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        disk_params = disk_params if disk_params is not None else DiskParams()
        ndisks = self.raid.data_disks + 1
        self.disks: List[Disk] = [
            Disk(sim, disk_params, name="%s.disk%d" % (name, i),
                 tracer=self.tracer)
            for i in range(ndisks)
        ]
        data_blocks = self.raid.data_disks * disk_params.capacity_blocks
        super().__init__(data_blocks, name=name)
        self.sim = sim
        self.cpu = cpu
        self.parity_cpu_per_byte = parity_cpu_per_byte
        self.io_cpu = io_cpu
        # Degraded-mode state (repro.faults).  While ``_failed`` names a
        # spindle, reads of its units are reconstructed from the survivors
        # and writes to it are skipped (the parity update covers them).
        self._failed: Optional[int] = None
        self.disk_failures = 0
        self.degraded_reads = 0
        self.degraded_writes = 0
        self.rebuild_writes = 0

    # -- geometry -----------------------------------------------------------------

    def locate(self, block: int) -> Tuple[int, int]:
        """Map a logical block to ``(disk_index, physical_block)``."""
        unit = self.raid.stripe_unit_blocks
        ndata = self.raid.data_disks
        stripe_number = block // unit
        row = stripe_number // ndata
        unit_in_row = stripe_number % ndata
        parity_disk = row % (ndata + 1)
        # Left-symmetric: data units fill the non-parity slots in order.
        disk = (parity_disk + 1 + unit_in_row) % (ndata + 1)
        physical = row * unit + (block % unit)
        return disk, physical

    def parity_disk_for(self, block: int) -> int:
        """The spindle holding parity for the stripe row of ``block``."""
        unit = self.raid.stripe_unit_blocks
        ndata = self.raid.data_disks
        row = (block // unit) // ndata
        return row % (ndata + 1)

    def _split_runs(self, start: int, count: int) -> List[Tuple[int, int, int]]:
        """Split a logical extent into per-disk contiguous runs.

        Returns ``(disk_index, physical_start, run_length)`` tuples.
        """
        runs: List[Tuple[int, int, int]] = []
        unit = self.raid.stripe_unit_blocks
        block = start
        remaining = count
        while remaining > 0:
            disk, physical = self.locate(block)
            in_unit = unit - (block % unit)
            length = min(remaining, in_unit)
            if runs and runs[-1][0] == disk and runs[-1][1] + runs[-1][2] == physical:
                prev_disk, prev_start, prev_len = runs.pop()
                runs.append((prev_disk, prev_start, prev_len + length))
            else:
                runs.append((disk, physical, length))
            block += length
            remaining -= length
        return runs

    def _row_span(self, start: int, count: int) -> bool:
        """True when [start, start+count) covers whole stripe rows only."""
        row_blocks = self.raid.stripe_unit_blocks * self.raid.data_disks
        return start % row_blocks == 0 and count % row_blocks == 0

    # -- I/O -------------------------------------------------------------------------

    def _spawn_io(self, generator: Generator) -> Process:
        """Spawn a per-disk job, carrying span parentage across processes."""
        job = self.sim.spawn(generator)
        if self.tracer.enabled:
            job.trace_parent = self.tracer.current_span_id()
        return job

    def read(self, start: int, count: int = 1) -> Generator:
        """Coroutine: read ``count`` blocks, striped across the spindles."""
        self.check_range(start, count)
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin_span(
                "raid.read", cat="raid", track="server",
                start=start, count=count, degraded=self._failed is not None,
            )
        try:
            if self.cpu is not None and self.io_cpu > 0:
                yield from self.cpu.use(self.io_cpu)
            runs = self._split_runs(start, count)
            jobs = [
                self._read_job(disk, physical, length)
                for disk, physical, length in runs
            ]
            yield self.sim.all_of(jobs)
        finally:
            if span is not None:
                self.tracer.end_span(span)
        self.stats.note_read(count)
        return None

    def write(self, start: int, count: int = 1) -> Generator:
        """Coroutine: write ``count`` blocks (full-stripe or RMW path)."""
        self.check_range(start, count)
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin_span(
                "raid.write", cat="raid", track="server",
                start=start, count=count,
                full_stripe=self._row_span(start, count),
            )
        try:
            if self.cpu is not None and self.io_cpu > 0:
                yield from self.cpu.use(self.io_cpu)
            yield from self._charge_parity(count)
            if self._row_span(start, count):
                yield from self._full_stripe_write(start, count)
            else:
                yield from self._small_write(start, count)
        finally:
            if span is not None:
                self.tracer.end_span(span)
        self.stats.note_write(count)
        return None

    def _full_stripe_write(self, start: int, count: int) -> Generator:
        """Write data + freshly computed parity, all spindles in parallel."""
        runs = self._split_runs(start, count)
        jobs = [
            job
            for disk, physical, length in runs
            if (job := self._write_job(disk, physical, length)) is not None
        ]
        # One parity write per stripe row, same extent shape as a data run.
        unit = self.raid.stripe_unit_blocks
        row_blocks = unit * self.raid.data_disks
        for row_start in range(start, start + count, row_blocks):
            parity_disk = self.parity_disk_for(row_start)
            _disk, physical = self.locate(row_start)
            job = self._write_job(parity_disk, physical, unit)
            if job is not None:
                jobs.append(job)
        yield self.sim.all_of(jobs)
        return None

    def _small_write(self, start: int, count: int) -> Generator:
        """Read-modify-write: old data + old parity, then both rewritten.

        With a write-back controller cache the RMW reads happen lazily at
        destage time and never block the request: only the (cache-absorbed)
        writes are charged.
        """
        runs = self._split_runs(start, count)
        if self.disks[0].params.write_back_cache:
            jobs = [
                job
                for disk, physical, length in runs
                if (job := self._write_job(disk, physical, length)) is not None
            ]
            parity_disk = self.parity_disk_for(start)
            _disk, physical = self.locate(start)
            job = self._write_job(parity_disk, physical, runs[0][2])
            if job is not None:
                jobs.append(job)
            yield self.sim.all_of(jobs)
            return None
        reads = []
        for disk, physical, length in runs:
            reads.append(self._read_job(disk, physical, length))
        parity_reads = {}
        for run_index, (_disk, physical, length) in enumerate(runs):
            # Parity unit for the row containing this run.
            parity_disk = self.parity_disk_for(
                start + sum(r[2] for r in runs[:run_index])
            )
            key = (parity_disk, physical)
            if key not in parity_reads:
                parity_reads[key] = (parity_disk, physical, length)
                reads.append(self._read_job(parity_disk, physical, length))
        yield self.sim.all_of(reads)
        writes = []
        for disk, physical, length in runs:
            job = self._write_job(disk, physical, length)
            if job is not None:
                writes.append(job)
        for parity_disk, physical, length in parity_reads.values():
            job = self._write_job(parity_disk, physical, length)
            if job is not None:
                writes.append(job)
        yield self.sim.all_of(writes)
        return None

    # -- degraded mode (repro.faults) -----------------------------------------

    def _read_job(self, disk: int, physical: int, length: int) -> Process:
        """Spawn the read for one run, reconstructing if its spindle failed."""
        if disk == self._failed:
            return self._spawn_io(self._reconstruct_read(physical, length))
        return self._spawn_io(self.disks[disk].read(physical, length))

    def _write_job(self, disk: int, physical: int, length: int) -> Optional[Process]:
        """Spawn the write for one run; writes to the failed spindle are
        skipped — the surviving data + parity updates carry the content."""
        if disk == self._failed:
            self.degraded_writes += 1
            return None
        return self._spawn_io(self.disks[disk].write(physical, length))

    def _reconstruct_read(self, physical: int, length: int) -> Generator:
        """Degraded read: fetch the extent from every survivor, XOR it back."""
        self.degraded_reads += 1
        failed = self._failed
        jobs = [
            self._spawn_io(self.disks[i].read(physical, length))
            for i in range(len(self.disks))
            if i != failed
        ]
        yield self.sim.all_of(jobs)
        # The XOR over the surviving units costs the same CPU per byte as
        # a parity computation of the reconstructed extent.
        yield from self._charge_parity(length)
        return None

    def fail_disk(self, disk: int = 0) -> None:
        """Take one spindle offline; subsequent I/O runs in degraded mode."""
        if not 0 <= disk < len(self.disks):
            raise ValueError("no such disk: %r" % (disk,))
        if self._failed is not None:
            raise RuntimeError(
                "RAID-5 survives a single failure; disk %d is already out"
                % (self._failed,)
            )
        self._failed = disk
        self.disk_failures += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "raid.disk-fail", cat="fault", track="server", disk=disk,
            )

    def repair_disk(
        self, disk: Optional[int] = None, rebuild_blocks: int = 2048
    ) -> Generator:
        """Coroutine: rebuild a replacement spindle, then leave degraded mode.

        The rebuild walks the replaced disk one stripe unit at a time:
        read that extent from every survivor, XOR the unit back together,
        write it to the replacement.  The traffic competes with foreground
        I/O on the same spindle queues, which is the point — rebuild
        windows show up as a throughput dip in the experiment tables.
        """
        failed = self._failed if disk is None else disk
        if failed is None or failed != self._failed:
            return None
        unit = self.raid.stripe_unit_blocks
        at = 0
        total = min(rebuild_blocks, self.disks[failed].nblocks)
        while at < total:
            length = min(unit, total - at)
            survivors = [
                self._spawn_io(self.disks[i].read(at, length))
                for i in range(len(self.disks))
                if i != failed
            ]
            yield self.sim.all_of(survivors)
            yield from self._charge_parity(length)
            yield from self.disks[failed].write(at, length)
            self.rebuild_writes += 1
            at += length
        self._failed = None
        if self.tracer.enabled:
            self.tracer.instant(
                "raid.rebuilt", cat="fault", track="server",
                disk=failed, blocks=total,
            )
        return None

    def _charge_parity(self, count: int) -> Generator:
        if self.cpu is not None and self.parity_cpu_per_byte > 0:
            cost = self.parity_cpu_per_byte * count * self.block_size
            yield from self.cpu.use(cost)
        return None
