"""Block-device abstraction.

Everything that stores blocks — a single spindle, a RAID-5 array, or the
iSCSI initiator's view of a remote volume — implements the same interface:
coroutines ``read(start, count)`` and ``write(start, count)`` over fixed-size
blocks, plus operation statistics.  The ext3 layer is therefore oblivious to
whether its device is the server's local array (NFS setup) or a remote
iSCSI volume (block-access setup) — precisely the symmetry of Figure 2 in
the paper.
"""

from __future__ import annotations

from typing import Generator

from ..core.params import BLOCK_SIZE

__all__ = ["BlockDevice", "BlockDeviceStats", "BLOCK_SIZE"]


class BlockDeviceStats:
    """Operation/byte tallies common to all block devices."""

    def __init__(self):
        self.read_ops = 0
        self.write_ops = 0
        self.blocks_read = 0
        self.blocks_written = 0

    @property
    def total_ops(self) -> int:
        return self.read_ops + self.write_ops

    def note_read(self, count: int) -> None:
        """Record one read operation covering ``count`` blocks."""
        self.read_ops += 1
        self.blocks_read += count

    def note_write(self, count: int) -> None:
        """Record one write operation covering ``count`` blocks."""
        self.write_ops += 1
        self.blocks_written += count


class BlockDevice:
    """Interface for block storage; subclasses provide the timing."""

    block_size = BLOCK_SIZE

    def __init__(self, nblocks: int, name: str = "dev"):
        if nblocks <= 0:
            raise ValueError("nblocks must be positive")
        self.nblocks = nblocks
        self.name = name
        self.stats = BlockDeviceStats()

    def check_range(self, start: int, count: int) -> None:
        """Raise ``ValueError`` unless [start, start+count) fits the device."""
        if count <= 0:
            raise ValueError("count must be positive, got %d" % count)
        if start < 0 or start + count > self.nblocks:
            raise ValueError(
                "block range [%d, %d) outside device %r of %d blocks"
                % (start, start + count, self.name, self.nblocks)
            )

    def read(self, start: int, count: int = 1) -> Generator:
        """Coroutine: read ``count`` blocks starting at ``start``."""
        raise NotImplementedError

    def write(self, start: int, count: int = 1) -> Generator:
        """Coroutine: write ``count`` blocks starting at ``start``."""
        raise NotImplementedError
