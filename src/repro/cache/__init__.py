"""Caching substrate: buffer cache, page cache, and policies."""

from .block_cache import BlockCache
from .page_cache import Page, PageCache
from .policies import CacheStats, LruDict

__all__ = ["BlockCache", "CacheStats", "LruDict", "Page", "PageCache"]
