"""Cache bookkeeping primitives."""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, Optional, Tuple, TypeVar

__all__ = ["LruDict", "CacheStats"]

K = TypeVar("K")
V = TypeVar("V")


class CacheStats:
    """Hit/miss/eviction tallies shared by all cache flavors."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0


class LruDict(Generic[K, V]):
    """A mapping with least-recently-used ordering and a capacity bound.

    ``get`` refreshes recency; ``peek`` does not.  When full, ``put``
    returns the evicted ``(key, value)`` pair so the caller can handle
    dirty-eviction write-back.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate ``(key, value)`` pairs in LRU-to-MRU order."""
        return iter(self._data.items())

    def get(self, key: K) -> Optional[V]:
        """Return the value for ``key`` (refreshing recency) or None."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def peek(self, key: K) -> Optional[V]:
        """Return the value for ``key`` without refreshing recency."""
        return self._data.get(key)

    def put(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert/update; returns the evicted pair when the bound is hit."""
        if key in self._data:
            self._data[key] = value
            self._data.move_to_end(key)
            return None
        self._data[key] = value
        if len(self._data) > self.capacity:
            return self._data.popitem(last=False)
        return None

    def pop(self, key: K) -> Optional[V]:
        """Remove and return ``key``'s value, or None."""
        return self._data.pop(key, None)

    def pop_lru(self) -> Optional[Tuple[K, V]]:
        """Remove and return the least-recently-used entry, or None."""
        if not self._data:
            return None
        return self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry."""
        self._data.clear()
