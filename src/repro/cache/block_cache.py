"""Write-back buffer cache over a block device.

This is the Linux buffer/page cache as the paper's analysis needs it:

* whole-block granularity — a read miss pulls in the entire 4 KB block, so
  neighbouring meta-data (a block of 32 inodes, a directory block) rides
  along for free: the paper's "aggressive meta-data caching";
* write-back — writes dirty the cached block and return immediately;
* **flush coalescing** — when dirty blocks are written back (periodic
  flusher, fsync, journal checkpoint, eviction pressure), they are sorted
  by block number and merged into contiguous runs up to a size cap.  This
  is the elevator behavior that produced the paper's ~128 KB mean iSCSI
  write request (Section 4.5), i.e. "update aggregation";
* dirty throttling — writers stall once the dirty fraction passes
  ``dirty_ratio`` until the flusher catches up, bounding data loss and
  memory use (and shaping the random-write times of Table 4).
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, List, Optional

from ..core.params import CacheParams
from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Event, Simulator
from ..storage.blockdev import BlockDevice
from .policies import CacheStats, LruDict

__all__ = ["BlockCache"]


class _Buffer:
    """State of one cached block."""

    __slots__ = ("dirty", "dirtied_at")

    def __init__(self):
        self.dirty = False
        self.dirtied_at = 0.0


class BlockCache:
    """An LRU write-back cache of fixed-size blocks over ``device``."""

    def __init__(
        self,
        sim: Simulator,
        device: BlockDevice,
        capacity_bytes: int,
        params: Optional[CacheParams] = None,
        max_coalesced_bytes: int = 128 * 1024,
        start_flusher: bool = True,
        name: str = "bcache",
        tracer: Optional[NullTracer] = None,
        track: str = "server",
    ):
        self.sim = sim
        self.device = device
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.track = track
        self.params = params if params is not None else CacheParams()
        self.block_size = device.block_size
        self.capacity_blocks = max(1, capacity_bytes // self.block_size)
        self.max_coalesced_blocks = max(1, max_coalesced_bytes // self.block_size)
        self.name = name
        self.stats = CacheStats()
        self._buffers: LruDict[int, _Buffer] = LruDict(self.capacity_blocks)
        self._dirty: Dict[int, _Buffer] = {}
        self._inflight: Dict[int, Event] = {}
        self._throttle_waiters: List[Event] = []
        self._flusher: Optional[object] = None
        self._stopped = False
        if start_flusher:
            self._flusher = sim.spawn(self._flusher_loop(), name=name + ".flusher")

    # -- inspection ---------------------------------------------------------------

    @property
    def dirty_blocks(self) -> int:
        return len(self._dirty)

    @property
    def dirty_limit(self) -> int:
        return max(1, int(self.capacity_blocks * self.params.dirty_ratio))

    def contains(self, block: int) -> bool:
        """True if ``block`` is resident in the cache."""
        return block in self._buffers

    def is_dirty(self, block: int) -> bool:
        """True if ``block`` is resident and dirty."""
        buf = self._buffers.peek(block)
        return bool(buf and buf.dirty)

    # -- reads ----------------------------------------------------------------------

    def read(self, block: int) -> Generator:
        """Coroutine: ensure ``block`` is cached (one device read on miss)."""
        yield from self.read_range(block, 1)
        return None

    def read_range(self, start: int, count: int) -> Generator:
        """Coroutine: ensure blocks [start, start+count) are cached.

        Missing blocks are fetched in contiguous device reads (adjacent
        misses merge into one request, as the block layer would).
        """
        missing: List[int] = []
        awaited: List[Event] = []
        for block in range(start, start + count):
            if self._buffers.get(block) is not None:
                self.stats.hits += 1
            elif block in self._inflight:
                # Another reader (e.g. a prefetcher) already issued the I/O.
                self.stats.hits += 1
                awaited.append(self._inflight[block])
            else:
                self.stats.misses += 1
                missing.append(block)
                self._inflight[block] = self.sim.event()
        if self.tracer.enabled:
            self.tracer.instant(
                "bcache." + ("hit" if not missing else "miss"),
                cat="cache", track=self.track, start=start,
                hits=count - len(missing), misses=len(missing),
            )
        for run_start, run_len in _runs(missing):
            yield from self.device.read(run_start, run_len)
            for block in range(run_start, run_start + run_len):
                self._install(block, dirty=False)
                gate = self._inflight.pop(block, None)
                if gate is not None:
                    gate.trigger()
        for gate in awaited:
            if not gate.triggered:
                yield gate
        return None

    # -- writes ---------------------------------------------------------------------

    def write(self, block: int) -> Generator:
        """Coroutine: dirty ``block`` in cache (write-back; may throttle)."""
        yield from self.write_range(block, 1)
        return None

    def write_range(self, start: int, count: int) -> Generator:
        """Coroutine: dirty blocks [start, start+count) in cache."""
        yield from self._throttle()
        for block in range(start, start + count):
            buf = self._buffers.get(block)
            if buf is None:
                self._install(block, dirty=True)
            elif not buf.dirty:
                buf.dirty = True
                buf.dirtied_at = self.sim.now
                self._dirty[block] = buf
        return None

    def write_through(self, start: int, count: int) -> Generator:
        """Coroutine: write blocks straight to the device (journal path).

        The blocks are also installed clean in the cache.
        """
        yield from self.device.write(start, count)
        for block in range(start, start + count):
            buf = self._buffers.peek(block)
            if buf is not None and buf.dirty:
                self._dirty.pop(block, None)
                buf.dirty = False
            elif buf is None:
                self._install(block, dirty=False)
        return None

    # -- flushing -------------------------------------------------------------------

    def flush(self, blocks: Optional[Iterable[int]] = None) -> Generator:
        """Coroutine: write back dirty blocks (all, or just ``blocks``).

        Dirty blocks are sorted and coalesced into contiguous device writes
        of at most ``max_coalesced_blocks`` — update aggregation.
        """
        if blocks is None:
            todo = sorted(self._dirty)
        else:
            todo = sorted(b for b in blocks if b in self._dirty)
        for block in todo:
            # A concurrent flush may have cleaned it already.
            buf = self._buffers.peek(block)
            if buf is not None and buf.dirty:
                buf.dirty = False
            self._dirty.pop(block, None)
        # All write-back requests enter the device queue at once — the
        # block layer keeps the queue deep; the device serializes.
        span = None
        if self.tracer.enabled and todo:
            span = self.tracer.begin_span(
                "cache.flush", cat="cache", track=self.track,
                blocks=len(todo),
            )
        try:
            jobs = []
            for run_start, run_len in _runs(todo, self.max_coalesced_blocks):
                job = self.sim.spawn(
                    self.device.write(run_start, run_len),
                    name=self.name + ".wb",
                )
                if span is not None:
                    job.trace_parent = span.id
                jobs.append(job)
            if jobs:
                yield self.sim.all_of(jobs)
        finally:
            if span is not None:
                self.tracer.end_span(span)
        self._wake_throttled()
        return None

    def sync(self) -> Generator:
        """Coroutine: flush everything dirty."""
        yield from self.flush()
        return None

    def _flusher_loop(self) -> Generator:
        interval = self.params.dirty_writeback_interval
        while not self._stopped:
            yield self.sim.timeout(interval)
            if self._stopped:
                return
            if self._dirty:
                yield from self.flush()

    def stop(self) -> None:
        """Stop the background flusher (used by unmount)."""
        self._stopped = True

    # -- invalidation -----------------------------------------------------------------

    def mark_clean(self, blocks: Iterable[int]) -> None:
        """Clear dirty state without device writes.

        Used by the journal after a commit: the journal copy is now the
        durable one, so the in-place blocks no longer need the flusher
        (they await a *checkpoint* instead).
        """
        for block in blocks:
            buf = self._buffers.peek(block)
            if buf is not None and buf.dirty:
                buf.dirty = False
            self._dirty.pop(block, None)
        self._wake_throttled()

    def discard(self, blocks: Iterable[int]) -> None:
        """Drop blocks without writing them back (freed/truncated data).

        This is what lets a create-then-delete pair generate *zero* device
        traffic — a key ingredient of iSCSI's PostMark numbers.
        """
        for block in blocks:
            buf = self._buffers.pop(block)
            if buf is not None and buf.dirty:
                buf.dirty = False
            self._dirty.pop(block, None)
        self._wake_throttled()

    def invalidate_all(self) -> None:
        """Drop every cached block; dirty data is lost (cold-cache reset)."""
        self._buffers.clear()
        self._dirty.clear()

    # -- internals ----------------------------------------------------------------------

    def _install(self, block: int, dirty: bool) -> None:
        buf = _Buffer()
        buf.dirty = dirty
        buf.dirtied_at = self.sim.now
        evicted = self._buffers.put(block, buf)
        if dirty:
            self._dirty[block] = buf
        self.stats.insertions += 1
        if evicted is not None:
            evicted_block, evicted_buf = evicted
            self.stats.evictions += 1
            if evicted_buf.dirty:
                self._dirty.pop(evicted_block, None)
                evicted_buf.dirty = False
                # Eviction of a dirty buffer forces an immediate write-back.
                self.sim.spawn(
                    self.device.write(evicted_block, 1),
                    name=self.name + ".evict",
                )

    def _throttle(self) -> Generator:
        while len(self._dirty) >= self.dirty_limit:
            gate = self.sim.event()
            self._throttle_waiters.append(gate)
            self.sim.spawn(self.flush(), name=self.name + ".throttle-flush")
            yield gate
        return None

    def _wake_throttled(self) -> None:
        if len(self._dirty) < self.dirty_limit:
            waiters, self._throttle_waiters = self._throttle_waiters, []
            for gate in waiters:
                gate.trigger()


def _runs(blocks: List[int], max_len: Optional[int] = None):
    """Yield ``(start, length)`` for maximal contiguous runs in sorted input."""
    start = None
    length = 0
    for block in blocks:
        if start is None:
            start, length = block, 1
        elif block == start + length and (max_len is None or length < max_len):
            length += 1
        else:
            yield start, length
            start, length = block, 1
    if start is not None:
        yield start, length
