"""File-page cache (the NFS client's data cache).

Pages are keyed by ``(file_id, page_index)``.  Each page remembers when it
was filled (for the NFS 30-second data-validity check) and whether it is
dirty (for the client's bounded async-write pool).  Protocol-specific
policies — revalidation, flush-on-limit — live in the NFS client; this
class is the bookkeeping container.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

from .policies import CacheStats, LruDict

__all__ = ["Page", "PageCache"]

PageKey = Tuple[int, int]


class Page:
    """State of one cached file page."""

    __slots__ = ("filled_at", "dirty", "dirtied_at")

    def __init__(self, filled_at: float):
        self.filled_at = filled_at
        self.dirty = False
        self.dirtied_at = 0.0


class PageCache:
    """LRU cache of file pages with dirty-set tracking."""

    def __init__(
        self,
        capacity_pages: int,
        on_evict_dirty: Optional[Callable[[int, int], None]] = None,
        name: str = "pagecache",
    ):
        self.name = name
        self.stats = CacheStats()
        self._pages: LruDict[PageKey, Page] = LruDict(capacity_pages)
        self._dirty: Set[PageKey] = set()
        self._on_evict_dirty = on_evict_dirty

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def lookup(self, file_id: int, index: int) -> Optional[Page]:
        """Return the page (counting a hit/miss) or None."""
        page = self._pages.get((file_id, index))
        if page is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return page

    def peek(self, file_id: int, index: int) -> Optional[Page]:
        """Return the value for ``key`` without refreshing recency."""
        return self._pages.peek((file_id, index))

    def insert(self, file_id: int, index: int, now: float, dirty: bool = False) -> None:
        """Install a page filled at ``now`` (optionally dirty), evicting LRU."""
        key = (file_id, index)
        existing = self._pages.peek(key)
        if existing is not None:
            existing.filled_at = now
            if dirty and not existing.dirty:
                existing.dirty = True
                existing.dirtied_at = now
                self._dirty.add(key)
            self._pages.get(key)  # refresh recency
            return
        page = Page(now)
        if dirty:
            page.dirty = True
            page.dirtied_at = now
            self._dirty.add(key)
        self.stats.insertions += 1
        evicted = self._pages.put(key, page)
        if evicted is not None:
            evicted_key, evicted_page = evicted
            self.stats.evictions += 1
            if evicted_page.dirty:
                self._dirty.discard(evicted_key)
                if self._on_evict_dirty is not None:
                    self._on_evict_dirty(*evicted_key)

    def mark_clean(self, file_id: int, index: int) -> None:
        """Clear a page's dirty state."""
        key = (file_id, index)
        page = self._pages.peek(key)
        if page is not None:
            page.dirty = False
        self._dirty.discard(key)

    def dirty_pages(self, file_id: Optional[int] = None) -> List[PageKey]:
        """Dirty page keys, optionally restricted to one file, sorted."""
        if file_id is None:
            return sorted(self._dirty)
        return sorted(key for key in self._dirty if key[0] == file_id)

    def invalidate_file(self, file_id: int) -> None:
        """Drop every page of ``file_id`` (dirty pages are discarded)."""
        doomed = [key for key in self._pages if key[0] == file_id]
        for key in doomed:
            self._pages.pop(key)
            self._dirty.discard(key)

    def clear(self) -> None:
        """Drop every entry."""
        self._pages.clear()
        self._dirty.clear()
