"""Central parameter set for the simulated testbed.

Every tunable the experiments (and ablation benches) twist lives here, with
defaults chosen to mirror the paper's testbed:

* client: 1 GHz PIII, 512 MB RAM; server: dual 933 MHz PIII, 1 GB RAM;
* isolated Gigabit Ethernet (RTT ~0.2 ms on the LAN; NISTNet sweeps to 90 ms);
* server storage: RAID-5, 4 data + 1 parity, 10 K RPM SCSI disks;
* ext3 with a 5 s journal commit interval;
* Linux 2.4 NFS behaviors: 3 s attribute / 30 s data cache validity,
  8 KB rsize/wsize transfer limit, a bounded pending-async-write pool,
  RPC timeout retransmissions, and (v4) per-component ACCESS checks.

Disk constants are *calibrated*, not datasheet values: the paper's arrays
sat behind a caching ServeRAID controller and the benchmark files occupied
a narrow band of a 72 GB array, so effective random-access penalties are
far below full-stroke seek times.  See EXPERIMENTS.md ("Calibration").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "NetworkParams",
    "DiskParams",
    "RaidParams",
    "CacheParams",
    "Ext3Params",
    "NfsParams",
    "IscsiParams",
    "CpuParams",
    "TestbedParams",
]

KB = 1024
MB = 1024 * 1024
BLOCK_SIZE = 4 * KB


@dataclass
class NetworkParams:
    """Gigabit Ethernet LAN between the client and the server."""

    rtt: float = 0.0002                # seconds; the paper observed < 1 ms
    bandwidth: float = 125_000_000.0   # bytes/s (1 Gb/s)
    header_bytes: int = 128            # per-message protocol+TCP/IP overhead


@dataclass
class DiskParams:
    """Per-spindle service-time model (calibrated; see module docstring)."""

    sequential_bandwidth: float = 40 * MB  # bytes/s streaming rate
    per_request_overhead: float = 0.0009   # s; command setup, controller
    #                                        and kernel per-request latency
    short_seek: float = 0.0002            # s; track-to-track class movement
    # The testbed's ServeRAID controller has a battery-backed write-back
    # cache: writes are absorbed at controller speed and destaged later.
    write_back_cache: bool = True
    write_overhead: float = 0.00012        # s; per write absorbed by the cache
    cache_bandwidth: float = 150 * MB      # bytes/s into the controller cache
    full_seek: float = 0.008              # s; full-stroke seek
    rotational_latency: float = 0.0004    # s; effective (controller-queued)
    capacity_blocks: int = 18 * 1024 * 256  # 18 GB of 4 KB blocks
    # Seeks cost short_seek + (full_seek - short_seek) * sqrt(distance_frac);
    # the sqrt shape is the classic seek-curve approximation.


@dataclass
class RaidParams:
    """RAID-5, four data disks plus parity (the paper's 4+p arrays)."""

    data_disks: int = 4
    stripe_unit_blocks: int = 16          # 64 KB stripe unit
    parity_overhead_factor: float = 1.8   # small-write read-modify-write cost


@dataclass
class CacheParams:
    """Buffer/page cache sizing and write-back behavior."""

    client_cache_bytes: int = 400 * MB    # of the client's 512 MB
    server_cache_bytes: int = 800 * MB    # of the server's 1 GB
    dirty_ratio: float = 0.4              # writer throttling threshold
    dirty_writeback_interval: float = 5.0  # pdflush-style period (s)


@dataclass
class Ext3Params:
    """ext3-like filesystem geometry and journaling."""

    block_size: int = BLOCK_SIZE
    inode_size: int = 128                  # -> 32 inodes per 4 KB block
    inodes_per_block: int = 32
    dir_entries_per_block: int = 64
    journal_commit_interval: float = 5.0   # the paper's ext3 commit interval
    journal_segment_bytes: int = 128 * KB  # max coalesced journal write
    atime_updates: bool = True


@dataclass
class NfsParams:
    """NFS client/server behaviors (Linux 2.4 era)."""

    version: int = 3
    transport: str = "tcp"                 # v2 uses "udp"
    rsize: int = 8 * KB                    # max data per READ rpc
    wsize: int = 8 * KB                    # max data per WRITE rpc
    attr_cache_validity: float = 3.0       # s (Linux acregmin-style)
    data_cache_validity: float = 30.0      # s
    max_pending_writes: int = 16           # async-write pool (pages); beyond
    #                                        this writes become write-through
    writeback_delay: float = 0.5           # s a dirty page ages before flush
    pages_per_flush_rpc: int = 1           # the 2.4 client flushed per page
    #                                        (Table 4's ~4.7 KB mean write)
    async_writes: bool = True              # v2: False (all writes sync)
    server_async_export: bool = True       # knfsd acks writes from memory
    rpc_timeout: float = 1.1               # s; initial retransmit timer
    rpc_timeout_backoff: float = 2.0
    rpc_max_retries: int = 5
    access_check_per_component: bool = False  # the NFSv4 client idiosyncrasy
    compound_rpcs: bool = False            # v4 compound walks (Section 6.3)
    open_close_stateful: bool = False      # v4 OPEN/CLOSE RPCs
    file_delegation: bool = False          # v4 read delegation
    # Section 7 enhancements (both default off; the "nfs-enhanced" stack
    # turns them on):
    consistent_metadata_cache: bool = False
    directory_delegation: bool = False

    @classmethod
    def for_version(cls, version: int) -> "NfsParams":
        """Defaults mirroring each protocol generation's behavior."""
        if version == 2:
            return cls(
                version=2,
                transport="udp",
                rsize=8 * KB,
                wsize=8 * KB,
                async_writes=False,
            )
        if version == 3:
            return cls(version=3)
        if version == 4:
            return cls(
                version=4,
                rsize=32 * KB,   # the v4 implementation uses larger
                wsize=32 * KB,   # data transfers (Section 4.4)
                access_check_per_component=True,
                open_close_stateful=True,
                file_delegation=True,
            )
        raise ValueError("unsupported NFS version: %r" % (version,))


@dataclass
class IscsiParams:
    """iSCSI initiator/target and client block-layer behaviors."""

    max_coalesced_write: int = 128 * KB    # elevator merge limit (the paper's
    #                                        observed ~128 KB mean write)
    max_coalesced_read: int = 128 * KB
    command_header_bytes: int = 48         # basic header segment
    immediate_data: bool = True
    # MC/S (multiple connections per session).  connections=1 keeps the
    # original single-TCP-connection wiring byte-identical; >1 adds
    # per-connection transports with a PDU scheduler ("rr" round-robin
    # or "qdepth" least-queue-depth) and in-order command completion at
    # the initiator (repro.iscsi.mcs).
    connections: int = 1
    mcs_policy: str = "rr"


@dataclass
class CpuParams:
    """Per-layer CPU costs (seconds), calibrated to the paper's Tables 9-10.

    The structural claim being modeled: the NFS server path
    (net -> RPC -> NFS -> VFS -> FS -> block -> driver) is roughly twice the
    iSCSI path (net -> SCSI -> driver).
    """

    client_cpus: int = 1
    server_cpus: int = 2

    # network + protocol processing, per message
    net_per_message: float = 12e-6
    rpc_layer: float = 10e-6
    nfs_server_layer: float = 25e-6
    scsi_layer: float = 8e-6
    driver_layer: float = 5e-6

    # filesystem work (charged wherever the FS runs: server for NFS,
    # client for iSCSI)
    vfs_op: float = 4e-6
    fs_block_op: float = 6e-6
    disk_io_issue: float = 15e-6

    # data movement, per byte (copy + checksum on 933 MHz-class cores)
    copy_per_byte: float = 6e-9
    raid_parity_per_byte: float = 25e-9
    # server-side WRITE processing held under the per-inode lock (page
    # allocation, copy into the page cache, inode update); this is what
    # serializes streaming NFS writes to ~2K pages/s as in Table 4
    nfs_write_service: float = 350e-6


@dataclass
class TestbedParams:
    """The complete simulated testbed configuration."""

    __test__ = False  # keep pytest from collecting this as a test class

    network: NetworkParams = field(default_factory=NetworkParams)
    disk: DiskParams = field(default_factory=DiskParams)
    raid: RaidParams = field(default_factory=RaidParams)
    cache: CacheParams = field(default_factory=CacheParams)
    ext3: Ext3Params = field(default_factory=Ext3Params)
    nfs: NfsParams = field(default_factory=NfsParams)
    iscsi: IscsiParams = field(default_factory=IscsiParams)
    cpu: CpuParams = field(default_factory=CpuParams)
    seed: int = 42

    def with_rtt(self, rtt: float) -> "TestbedParams":
        """A copy of this testbed with a different network RTT (Fig. 6)."""
        return replace(self, network=replace(self.network, rtt=rtt))

    def with_nfs_version(self, version: int) -> "TestbedParams":
        """A copy of this testbed configured for NFS version ``version``."""
        return replace(self, nfs=NfsParams.for_version(version))
