"""Instrumentation counters.

The paper's primary metric is the *network message overhead*: the number of
protocol request messages exchanged for an operation (RPC calls for NFS,
SCSI command PDUs for iSCSI — the only reading consistent across all of the
paper's tables; see DESIGN.md §2).  Counters are therefore first-class
objects threaded through every layer, playing the role Ethereal/nfsstat
played in the original study.

:class:`MessageCounters` tallies requests, replies, bytes, and per-op
breakdowns — including *separate* per-op retransmission and reply-byte
tallies, so a spurious-retransmission storm (Section 4.6) is visible as
such rather than folded into the request mix.
:meth:`MessageCounters.snapshot` / :meth:`MessageCounters.delta` bracket an
experiment the way the authors bracketed a system call with packet
captures.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["MessageCounters", "CountersSnapshot"]


def _sub_dicts(left: Dict[str, int], right: Dict[str, int]) -> Dict[str, int]:
    out = Counter(left)
    out.subtract(right)
    return {op: n for op, n in out.items() if n}


def _add_dicts(left: Dict[str, int], right: Dict[str, int]) -> Dict[str, int]:
    out = Counter(left)
    out.update(right)
    return {op: n for op, n in out.items() if n}


@dataclass(frozen=True)
class CountersSnapshot:
    """An immutable point-in-time copy of a :class:`MessageCounters`."""

    requests: int
    replies: int
    retransmissions: int
    bytes_sent: int
    bytes_received: int
    by_op: Dict[str, int]
    retransmits_by_op: Dict[str, int] = field(default_factory=dict)
    reply_bytes_by_op: Dict[str, int] = field(default_factory=dict)

    @property
    def messages(self) -> int:
        """The paper's "number of messages": protocol requests."""
        return self.requests

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    def __sub__(self, other: "CountersSnapshot") -> "CountersSnapshot":
        return CountersSnapshot(
            requests=self.requests - other.requests,
            replies=self.replies - other.replies,
            retransmissions=self.retransmissions - other.retransmissions,
            bytes_sent=self.bytes_sent - other.bytes_sent,
            bytes_received=self.bytes_received - other.bytes_received,
            by_op=_sub_dicts(self.by_op, other.by_op),
            retransmits_by_op=_sub_dicts(
                self.retransmits_by_op, other.retransmits_by_op),
            reply_bytes_by_op=_sub_dicts(
                self.reply_bytes_by_op, other.reply_bytes_by_op),
        )

    def __add__(self, other: "CountersSnapshot") -> "CountersSnapshot":
        """Merge two accounting views (e.g. the two halves of a
        :class:`~repro.net.transport.ShardedTransport`, which each count
        only the direction they send)."""
        return CountersSnapshot(
            requests=self.requests + other.requests,
            replies=self.replies + other.replies,
            retransmissions=self.retransmissions + other.retransmissions,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            bytes_received=self.bytes_received + other.bytes_received,
            by_op=_add_dicts(self.by_op, other.by_op),
            retransmits_by_op=_add_dicts(
                self.retransmits_by_op, other.retransmits_by_op),
            reply_bytes_by_op=_add_dicts(
                self.reply_bytes_by_op, other.reply_bytes_by_op),
        )


@dataclass
class MessageCounters:
    """Mutable per-stack protocol-traffic accounting."""

    requests: int = 0
    replies: int = 0
    retransmissions: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    by_op: Counter = field(default_factory=Counter)
    retransmits_by_op: Counter = field(default_factory=Counter)
    reply_bytes_by_op: Counter = field(default_factory=Counter)

    @property
    def messages(self) -> int:
        """The paper's "number of messages": protocol requests."""
        return self.requests

    def count_request(self, op: str, size: int) -> None:
        """Tally one outgoing protocol request of ``size`` bytes."""
        self.requests += 1
        self.bytes_sent += size
        self.by_op[op] += 1

    def count_reply(self, op: str, size: int) -> None:
        """Tally one incoming protocol reply of ``size`` bytes."""
        self.replies += 1
        self.bytes_received += size
        self.reply_bytes_by_op[op] += size

    def count_retransmission(self, op: str, size: int) -> None:
        """A re-sent request counts as a message and as a retransmission."""
        self.retransmissions += 1
        self.requests += 1
        self.bytes_sent += size
        self.by_op[op] += 1
        self.retransmits_by_op[op] += 1

    def snapshot(self) -> CountersSnapshot:
        """Return an immutable copy of the current counter values."""
        return CountersSnapshot(
            requests=self.requests,
            replies=self.replies,
            retransmissions=self.retransmissions,
            bytes_sent=self.bytes_sent,
            bytes_received=self.bytes_received,
            by_op=dict(self.by_op),
            retransmits_by_op=dict(self.retransmits_by_op),
            reply_bytes_by_op=dict(self.reply_bytes_by_op),
        )

    def delta(self, since: CountersSnapshot) -> CountersSnapshot:
        """Traffic accumulated since ``since`` was taken."""
        return self.snapshot() - since

    def reset(self) -> None:
        """Zero every counter."""
        self.requests = 0
        self.replies = 0
        self.retransmissions = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.by_op.clear()
        self.retransmits_by_op.clear()
        self.reply_bytes_by_op.clear()
