"""Parallel, cached experiment engine.

Every artifact in the paper reproduction — the tables, the figures, the
Section-7 what-ifs, and the ``repro bench`` suites — decomposes into
*cells*: pure, independent computations of the form ``kind(**params) ->
JSON-able result`` (one stack x workload x parameter point).  Cells never
share simulator state, so they parallelize perfectly, exactly like the
independent transfer streams that gave the related iSCSI work its
throughput wins.

:class:`ExperimentRunner` executes a list of :class:`Cell` specs:

* **fan-out** — cells run on a ``concurrent.futures.ProcessPoolExecutor``
  when ``jobs > 1`` (in-process when ``jobs`` is 1/None, so tests and
  debugging stay single-process);
* **deterministic merge** — results are keyed and ordered by cell id,
  never by completion order, so ``--jobs 1`` and ``--jobs 8`` produce
  byte-identical merged output;
* **content-addressed cache** — each result is stored on disk under
  ``sha256(repro version + cell kind + params)``; re-running an unchanged
  cell is a file read.  Any change to the package version or to a cell's
  parameters changes the key and forces a recompute.

Every cell result is canonicalized through a JSON round-trip before it is
merged, so fresh, pooled, and cached results are structurally identical
(e.g. integer dict keys always come back as strings).

The built-in cell kinds cover every experiment the CLI can run; new
kinds register with :func:`cell_kind` (the function must be importable
from a module top level so pool workers can find it).
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Cell",
    "ExperimentRunner",
    "CELL_KINDS",
    "cell_kind",
    "cell_key",
    "default_cache_dir",
]


# -- cell specs ---------------------------------------------------------------


@dataclass(frozen=True)
class Cell:
    """One pure experiment cell: ``CELL_KINDS[kind](**params)``.

    ``id`` is the stable merge key (results are ordered by the position of
    the cell in the submitted list and keyed by ``id``); ``params`` must
    be JSON-serializable.
    """

    id: str
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)


CELL_KINDS: Dict[str, Callable[..., Any]] = {}


def cell_kind(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a cell-kind function under ``name`` (decorator)."""

    def register(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in CELL_KINDS:
            raise ValueError("cell kind %r already registered" % (name,))
        CELL_KINDS[name] = fn
        return fn

    return register


def cell_key(cell: Cell) -> str:
    """Content-addressed cache key: repro version + kind + params."""
    from .. import __version__

    spec = json.dumps(
        {"version": __version__, "kind": cell.kind, "params": cell.params},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(spec.encode()).hexdigest()


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def _execute_cell(spec: Tuple[str, str, str]) -> Tuple[str, Any]:
    """Pool worker: run one cell from its JSON spec; returns (id, result).

    Module-level so it pickles; results are canonicalized through JSON so
    a pooled result is byte-for-byte the same as an in-process one.
    """
    cell_id, kind, params_json = spec
    fn = CELL_KINDS[kind]
    result = fn(**json.loads(params_json))
    return cell_id, json.loads(json.dumps(result))


class ExperimentRunner:
    """Run experiment cells with optional parallelism and result caching.

    ``jobs``     — worker processes; ``None`` or 1 runs in-process.
    ``cache_dir``— result cache location (:func:`default_cache_dir`).
    ``use_cache``— when False, neither reads nor writes the cache.
    ``heartbeat``— when True, print cell/cache progress lines to stderr
                   (a :class:`repro.obs.telemetry.Heartbeat`); status
                   only, never part of the merged results.

    Cells that carry telemetry attach their snapshot under the reserved
    result key ``"__telemetry__"``.  :meth:`run` strips those snapshots
    out of the merged results (so documents like ``BENCH_quick.json``
    never see them) into :attr:`telemetry_by_cell`, and folds them — in
    submitted-cell order, associatively — into one aggregated
    :attr:`telemetry` snapshot.  The fold is pure dict arithmetic on
    canonicalized snapshots, so ``--jobs 1`` and ``--jobs 8`` aggregate
    byte-identically.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 use_cache: bool = True,
                 heartbeat: bool = False):
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
        self.use_cache = use_cache
        self.heartbeat = heartbeat
        self.cache_hits = 0
        self.cache_misses = 0
        self.telemetry: Optional[Dict[str, Any]] = None
        self.telemetry_by_cell: Dict[str, Any] = {}

    # -- cache ----------------------------------------------------------------

    def _cache_path(self, cell: Cell) -> str:
        return os.path.join(self.cache_dir, cell_key(cell) + ".json")

    def cache_get(self, cell: Cell) -> Optional[Any]:
        """Return the cached result for ``cell``, or None."""
        if not self.use_cache:
            return None
        path = self._cache_path(cell)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        return document.get("result")

    def cache_put(self, cell: Cell, result: Any) -> None:
        """Store ``result`` for ``cell`` (atomic rename, best-effort)."""
        if not self.use_cache:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        path = self._cache_path(cell)
        tmp = path + ".tmp.%d" % os.getpid()
        document = {"cell": cell.id, "kind": cell.kind,
                    "params": cell.params, "result": result}
        try:
            with open(tmp, "w") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- running --------------------------------------------------------------

    def run(self, cells: Iterable[Cell]) -> "Dict[str, Any]":
        """Execute every cell; return ``{cell.id: result}`` in cell order.

        Cached cells are served from disk; the rest fan out over the pool
        (or run inline).  The merge is deterministic: insertion order is
        the submitted cell order regardless of completion order.
        """
        cells = list(cells)
        seen = set()
        for cell in cells:
            if cell.kind not in CELL_KINDS:
                raise ValueError("unknown cell kind %r" % (cell.kind,))
            if cell.id in seen:
                raise ValueError("duplicate cell id %r" % (cell.id,))
            seen.add(cell.id)

        hb = None
        if self.heartbeat:
            from ..obs.telemetry import Heartbeat
            hb = Heartbeat("runner")

        resolved: Dict[str, Any] = {}
        pending: List[Cell] = []
        for cell in cells:
            cached = self.cache_get(cell)
            if cached is not None:
                self.cache_hits += 1
                resolved[cell.id] = cached
            else:
                self.cache_misses += 1
                pending.append(cell)

        if pending:
            if self.jobs is None or self.jobs <= 1 or len(pending) == 1:
                for cell in pending:
                    _cell_id, result = _execute_cell(self._spec(cell))
                    self.cache_put(cell, result)
                    resolved[cell.id] = result
                    if hb is not None:
                        hb.progress(len(resolved), len(cells),
                                    self.cache_hits)
            else:
                by_id = {cell.id: cell for cell in pending}
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    futures = {pool.submit(_execute_cell, self._spec(cell))
                               for cell in pending}
                    while futures:
                        done, futures = wait(futures,
                                             return_when=FIRST_COMPLETED)
                        for future in done:
                            cell_id, result = future.result()
                            self.cache_put(by_id[cell_id], result)
                            resolved[cell_id] = result
                        if hb is not None:
                            hb.progress(len(resolved), len(cells),
                                        self.cache_hits)
        if hb is not None:
            hb.progress(len(resolved), len(cells), self.cache_hits,
                        force=True)

        # Deterministic merge: submitted order, never completion order.
        merged = {cell.id: resolved[cell.id] for cell in cells}
        self._collect_telemetry(cells, merged)
        return merged

    def _collect_telemetry(self, cells: List[Cell],
                           merged: Dict[str, Any]) -> None:
        """Strip ``"__telemetry__"`` snapshots out of results and fold them.

        Per-cell snapshots land in :attr:`telemetry_by_cell`; the
        aggregate (folded in submitted-cell order) in :attr:`telemetry`.
        Results without the key are untouched, so runs with telemetry
        off pay one dict lookup per cell here and nothing else.
        """
        self.telemetry_by_cell = {}
        for cell in cells:
            result = merged[cell.id]
            if isinstance(result, dict) and "__telemetry__" in result:
                self.telemetry_by_cell[cell.id] = result.pop("__telemetry__")
        if self.telemetry_by_cell:
            from ..obs.telemetry import merge_snapshots
            self.telemetry = merge_snapshots(
                [snapshot for _cell_id, snapshot
                 in sorted(self.telemetry_by_cell.items())])
        else:
            self.telemetry = None

    @staticmethod
    def _spec(cell: Cell) -> Tuple[str, str, str]:
        return (cell.id, cell.kind,
                json.dumps(cell.params, sort_keys=True))


# -- built-in cell kinds ------------------------------------------------------
# One function per experiment family.  All imports are lazy so the module
# stays importable from anywhere in the package (and cheap for workers),
# and every function returns plain JSON-able data.


@cell_kind("quick")
def _cell_quick(kind: str, san: bool = False,
                telemetry: bool = False, shards: int = 0) -> Dict[str, Any]:
    """The ``repro quick`` smoke row for one stack kind.

    ``san=True`` runs the same workload under the runtime sanitizers
    (:mod:`repro.check.simsan`); the result is byte-identical unless a
    check fires, in which case the cell raises.  ``telemetry=True``
    attaches the streaming collector; its snapshot rides along under
    ``"__telemetry__"`` (stripped by the runner) and the measured fields
    stay byte-identical.  ``shards=1`` builds the stack on a one-shard
    calendar (:func:`~repro.core.comparison.placement_shard`); the
    result stays byte-identical, which CI's scale-smoke job enforces.
    """
    from .comparison import make_stack, placement_shard

    stack = make_stack(kind, san=san, telemetry=telemetry,
                       sim=placement_shard(shards, san=san))
    client = stack.client

    def work():
        yield from client.mkdir("/d")
        fd = yield from client.creat("/d/f")
        yield from client.write(fd, 16_384)
        yield from client.close(fd)
        yield from client.stat("/d/f")

    snap = stack.snapshot()
    stack.run(work())
    stack.quiesce()
    stack.check()
    delta = stack.delta(snap)
    result: Dict[str, Any] = {
        "messages": delta.messages, "bytes": delta.total_bytes,
        "now_s": stack.now}
    if stack.telemetry is not None:
        result["__telemetry__"] = stack.telemetry.snapshot()
    return result


@cell_kind("syscall_table")
def _cell_syscall_table(kind: str, depth: int, warm: bool,
                        shards: int = 0) -> Dict[str, int]:
    """One (stack, depth) column of Table 2 (cold) or Table 3 (warm)."""
    from ..workloads import run_syscall_table

    table = run_syscall_table(kinds=(kind,), depths=(depth,), warm=warm,
                              shards=shards)
    return {op: row[kind] for op, row in table[depth].items()}


@cell_kind("seqrand")
def _cell_seqrand(kind: str, mode: str, mb: int,
                  rtt: Optional[float] = None) -> Dict[str, Any]:
    """One streaming-I/O cell of Table 4 / Figure 6."""
    from ..workloads import SeqRandWorkload

    workload = SeqRandWorkload(kind, file_mb=mb, rtt=rtt)
    if mode == "seq-read":
        result = workload.run_read(True)
    elif mode == "rand-read":
        result = workload.run_read(False)
    elif mode == "seq-write":
        result = workload.run_write(True)
    elif mode == "rand-write":
        result = workload.run_write(False)
    else:
        raise ValueError("unknown mode %r" % (mode,))
    return {"completion_time": result.completion_time,
            "messages": result.messages, "bytes": result.bytes,
            "retransmissions": result.retransmissions}


@cell_kind("seqrand_table")
def _cell_seqrand_table(kind: str, mb: int, shards: int = 0) -> Dict[str, Any]:
    """All four Table 4 modes for one stack, on one shared workload.

    One cell, not four: the workload's shuffle RNG is shared across the
    modes (rand-write sees the state rand-read left behind), so splitting
    the modes into separate cells would change the random-write chunk
    order and drift the message counts.
    """
    from ..workloads import SeqRandWorkload

    workload = SeqRandWorkload(kind, file_mb=mb, shards=shards)
    results = {}
    for mode, result in (
        ("seq-read", workload.run_read(True)),
        ("rand-read", workload.run_read(False)),
        ("seq-write", workload.run_write(True)),
        ("rand-write", workload.run_write(False)),
    ):
        results[mode] = {"completion_time": result.completion_time,
                         "messages": result.messages, "bytes": result.bytes,
                         "retransmissions": result.retransmissions}
    return results


@cell_kind("scale_point")
def _cell_scale_point(groups: int, clients_per_group: int, requests: int,
                      nshards: int) -> Dict[str, Any]:
    """Deterministic metrics of one ``repro scale`` sweep point.

    Runs the sharded-kernel storm (:func:`repro.sim.perf.run_shard_storm`)
    on the *sequential* executor — cells must be pure functions of their
    parameters, and the storm's measured outcome is partition-invariant,
    so this one cell certifies the numbers every timed sweep point (any
    executor, any job count) must reproduce.  ``nshards=0`` is the flat
    single-calendar reference.
    """
    from ..sim.perf import run_shard_storm

    result = run_shard_storm(groups=groups,
                             clients_per_group=clients_per_group,
                             requests=requests, nshards=nshards,
                             executor="sequential")
    return {"clients": result["clients"],
            "completed": result["completed"],
            "records": result["records"],
            "makespan": result["makespan"]}


@cell_kind("farm_point")
def _cell_farm_point(protocol: str, nclients: int, nservers: int,
                     connections: int, sharing: float, requests: int,
                     nshards: int) -> Dict[str, Any]:
    """One farm-sweep point (:func:`repro.sim.farm.run_farm`).

    Like ``scale_point``, the cell runs on the sequential executor and
    certifies the machine-independent outcome every partitioning of the
    same point must reproduce; the partition-dependent shard ``report``
    is dropped so the cell value is a pure function of its parameters.
    """
    from ..sim.farm import run_farm

    result = run_farm(protocol=protocol, nclients=nclients,
                      nservers=nservers, connections=connections,
                      sharing=sharing, requests=requests, nshards=nshards,
                      executor="sequential")
    result.pop("report")
    return result


@cell_kind("postmark")
def _cell_postmark(kind: str, files: int, transactions: int) -> Dict[str, Any]:
    """One PostMark row (Tables 5 and 9/10 share this kind)."""
    from ..workloads import PostMark

    result = PostMark(kind, file_count=files, transactions=transactions).run()
    return {"completion_time": result.completion_time,
            "messages": result.messages,
            "server_cpu": result.server_cpu, "client_cpu": result.client_cpu}


@cell_kind("tpcc")
def _cell_tpcc(kind: str, transactions: int) -> Dict[str, Any]:
    """One TPC-C-like OLTP row (Tables 6 and 9/10)."""
    from ..workloads import TpccWorkload

    result = TpccWorkload(kind, transactions=transactions).run()
    return {"throughput": result.throughput, "messages": result.messages,
            "server_cpu": result.server_cpu, "client_cpu": result.client_cpu}


@cell_kind("tpch")
def _cell_tpch(kind: str, queries: int, mb: int) -> Dict[str, Any]:
    """One TPC-H-like DSS row (Tables 7 and 9/10)."""
    from ..workloads import TpchWorkload

    result = TpchWorkload(kind, queries=queries, database_mb=mb).run()
    return {"throughput": result.throughput, "messages": result.messages,
            "server_cpu": result.server_cpu, "client_cpu": result.client_cpu}


@cell_kind("kernel_tree")
def _cell_kernel_tree(kind: str, dirs: int) -> Dict[str, Any]:
    """One kernel-tree-operations row of Table 8."""
    from ..workloads import KernelTreeOps, TreeSpec

    spec = TreeSpec(top_dirs=dirs)
    result = KernelTreeOps(kind, spec).run_all()
    return {"tar_seconds": result.tar_seconds,
            "ls_seconds": result.ls_seconds,
            "make_seconds": result.make_seconds,
            "rm_seconds": result.rm_seconds,
            "total_files": spec.total_files}


@cell_kind("batching")
def _cell_batching(op: str, batch: int) -> float:
    """One batch-size point of Figure 3 (amortized messages/op)."""
    from ..workloads import run_batching_sweep

    return run_batching_sweep(op, batch_sizes=(batch,))[batch]


@cell_kind("depth_point")
def _cell_depth_point(op: str, kind: str, depth: int, warm: bool) -> int:
    """One (stack, depth) point of Figure 4."""
    from ..workloads import run_depth_sweep

    return run_depth_sweep(op, kind, depths=(depth,), warm=warm)[depth]


@cell_kind("io_size_point")
def _cell_io_size_point(kind: str, mode: str, size: int) -> int:
    """One (stack, mode, size) point of Figure 5."""
    from ..workloads import run_io_size_sweep

    return run_io_size_sweep(kind, mode, sizes=(size,))[size]


@cell_kind("sharing")
def _cell_sharing(profile: str, limit: int) -> List[Dict[str, float]]:
    """Figure 7 sharing analysis for one trace profile."""
    from ..traces import (CAMPUS_PROFILE, EECS_PROFILE, TraceGenerator,
                          analyze_sharing)

    profiles = {"eecs": EECS_PROFILE, "campus": CAMPUS_PROFILE}
    chosen = profiles[profile]
    events = list(TraceGenerator(chosen).events(limit=limit))
    return [
        {"interval": point.interval,
         "read_by_one": point.read_by_one,
         "read_by_multiple": point.read_by_multiple,
         "written_by_one": point.written_by_one,
         "written_by_multiple": point.written_by_multiple,
         "read_write_shared": point.read_write_shared}
        for point in analyze_sharing(events)
    ]


@cell_kind("metadata_cache")
def _cell_metadata_cache(limit: int) -> Dict[str, Dict[str, Any]]:
    """The Section-7 consistent-meta-data-cache sweep (EECS-like trace)."""
    from ..traces import EECS_PROFILE, TraceGenerator, sweep_cache_sizes

    events = list(TraceGenerator(EECS_PROFILE).events(limit=limit))
    out = {}
    for size, result in sweep_cache_sizes(events).items():
        out[str(size)] = {
            "baseline_messages": result.baseline_messages,
            "consistent_messages": result.consistent_messages,
            "reduction": result.reduction,
            "callback_ratio": result.callback_ratio,
        }
    return out


@cell_kind("bench_case")
def _cell_bench_case(workload: str, stack: str, san: bool = False,
                     telemetry: bool = False) -> Dict[str, Any]:
    """One traced case of a ``repro bench`` suite."""
    from ..obs.bench import run_case

    return run_case(workload, stack, san=san, telemetry=telemetry)


@cell_kind("faults_scenario")
def _cell_faults_scenario(kind: str, workload: str, plan: Any,
                          seed: int = 0, san: bool = False,
                          telemetry: bool = False) -> Dict[str, Any]:
    """One (stack, workload, fault plan) degraded-mode scenario.

    ``plan`` is a preset name or an inline JSON spec (cells must be pure
    functions of JSON params, so file paths are resolved by the CLI
    before the cell is built).  The fault clock starts with the workload;
    the quiesce runs after, so recovery traffic is part of the counts.

    ``san=True`` attaches the runtime sanitizers in *report* mode: a
    faulted run legitimately abandons in-flight exchanges, so findings
    are returned under ``result["sanitizer"]`` instead of raising.
    """
    from ..faults import resolve_plan
    from ..obs.bench import WORKLOADS
    from .comparison import make_stack

    fault_plan = resolve_plan(plan, seed=seed)
    stack = make_stack(kind, fault_plan=fault_plan, san=san,
                       telemetry=telemetry)
    snap = stack.snapshot()
    start = stack.now
    stack.run(WORKLOADS[workload](stack.client), name=workload)
    elapsed = stack.now - start
    stack.quiesce()
    delta = stack.delta(snap)

    result: Dict[str, Any] = {
        "stack": kind,
        "workload": workload,
        "completion_time_s": round(elapsed, 9),
        "total_time_s": round(stack.now, 9),
        "messages": delta.messages,
        "bytes": delta.total_bytes,
        "retransmissions": delta.retransmissions,
        "faults": (stack.fault_injector.summary()
                   if stack.fault_injector is not None else None),
    }
    recovery: Dict[str, Any] = {}
    if stack.server is not None:
        recovery["server_restarts"] = stack.server.restarts
    if stack.initiator is not None:
        recovery["session_drops"] = stack.initiator.session_drops
        recovery["relogins"] = stack.initiator.logins
        recovery["requeued_commands"] = stack.initiator.requeued_commands
    recovery["degraded_reads"] = stack.raid.degraded_reads
    recovery["degraded_writes"] = stack.raid.degraded_writes
    recovery["rebuild_writes"] = stack.raid.rebuild_writes
    result["recovery"] = recovery
    if san:
        result["sanitizer"] = [
            {"code": finding.code, "message": finding.message}
            for finding in stack.check(strict=False)
        ]
    if stack.telemetry is not None:
        result["__telemetry__"] = stack.telemetry.snapshot()
    return result


@cell_kind("telemetry_run")
def _cell_telemetry_run(kind: str, workload: str,
                        heartbeat: bool = False) -> Dict[str, Any]:
    """One telemetry-first run for ``repro dash``: workload + snapshot.

    The snapshot rides under ``"__telemetry__"`` like everywhere else,
    so the runner's aggregation and the per-cell dashboards both work.
    ``heartbeat=True`` prints in-simulation progress lines to stderr
    while the cell runs.
    """
    from ..obs.bench import WORKLOADS
    from .comparison import make_stack

    if workload not in WORKLOADS:
        raise ValueError("unknown workload %r; one of %s"
                         % (workload, sorted(WORKLOADS)))
    stack = make_stack(kind, telemetry=True, heartbeat=heartbeat)
    start = stack.now
    stack.run(WORKLOADS[workload](stack.client), name=workload)
    elapsed = stack.now - start
    stack.quiesce()
    return {
        "stack": kind,
        "workload": workload,
        "completion_time_s": round(elapsed, 9),
        "total_time_s": round(stack.now, 9),
        "__telemetry__": stack.telemetry.snapshot(),
    }


@cell_kind("explain_pair")
def _cell_explain_pair(workload: str, stack_a: str, stack_b: str,
                       telemetry: bool = False,
                       top: int = 8) -> Dict[str, Any]:
    """One differential-diagnosis report for a workload on two stacks.

    Runs the workload traced on ``stack_a`` and ``stack_b`` and returns
    :func:`repro.obs.explain.explain_runs`'s report — deterministic and
    JSON-round-trippable, so the result is cacheable and byte-identical
    across ``--jobs``.  ``telemetry=True`` carries the streaming
    collector on both sides and adds the series-delta section.
    """
    from ..obs.explain import explain_runs, run_side

    side_a = run_side(workload, stack_a, telemetry=telemetry)
    side_b = run_side(workload, stack_b, telemetry=telemetry)
    return explain_runs(side_a, side_b, top=top)
