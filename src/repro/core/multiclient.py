"""A multi-client NFS testbed.

The paper deliberately studies the *unshared* case — one client per data
store — and notes that NFS's costs (consistency checks, synchronous
meta-data updates) exist to pay for sharing.  This module builds the
configuration those costs were designed for: **several client machines
mounting NFS exports**, each over its own Gigabit link.

It is the live counterpart to the Section-7 trace simulation: with the
enhancements enabled, cache-invalidation callbacks and directory-
delegation recalls actually travel between real protocol endpoints here.

Two axes of scale:

* ``nservers=M`` builds M independent server machines (host + RAID +
  ext3 + delegation state); client *i* mounts server ``i % M``.  Per-
  server traffic is visible through :attr:`messages_by_server` and
  :attr:`callbacks_by_server`.  With ``striped=True`` every client
  instead connects to *every* server and routes each path to its
  pNFS-style layout home (:mod:`repro.nfs.pnfs`): server 0 doubles as
  the metadata server answering ``LAYOUTGET``, and a cross-server
  namespace is striped over all M exports.
* ``shards=K`` partitions the whole testbed over K shards of a
  :class:`~repro.sim.shard.ShardedSimulator`: server *s* lands on shard
  ``s % K``, client *i* on shard ``i % K``, and each client-server pair
  is wired with a :class:`~repro.net.transport.ShardedTransport` — the
  transport is the shard boundary.  Workloads are then registered as
  factories (:meth:`SharedNfsTestbed.add_workload`) and driven in
  phases (:meth:`SharedNfsTestbed.run_phase`); the phase API works
  identically in the unsharded case, where it spawns everything on the
  one flat calendar, so the same driver code can be compared across
  shardings.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..client.host import Host
from ..fs.ext3 import Ext3Fs
from ..net.link import Link
from ..net.rpc import RetransmitPolicy, RpcPeer
from ..net.transport import DuplexTransport, ShardedTransport
from ..nfs.client import NfsClient
from ..nfs.pnfs import StripeLayout, StripedNfsClient
from ..nfs.server import NfsServer, ServerState
from ..sim import Simulator
from ..storage.raid import Raid5Volume
from .comparison import StorageStack
from .counters import MessageCounters
from .params import TestbedParams

__all__ = ["SharedNfsTestbed"]


class _MergedCounters:
    """Per-client accounting facade over a :class:`ShardedTransport`.

    Keeps ``bed.counters[i].messages`` working in sharded mode, where
    the two transport halves each count only the direction they send.
    """

    __slots__ = ("transport",)

    def __init__(self, transport: ShardedTransport):
        self.transport = transport

    @property
    def messages(self) -> int:
        return (self.transport.client_half.counters.requests
                + self.transport.server_half.counters.requests)

    def snapshot(self):
        return self.transport.merged_counters()


class _FanoutCounters:
    """Per-client accounting over a striped one-transport-per-server fan.

    ``per_server[s]`` is the counter facade for this client's connection
    to server ``s`` (a :class:`MessageCounters` when flat, a
    :class:`_MergedCounters` when sharded); ``messages`` sums the fan.
    """

    __slots__ = ("per_server",)

    def __init__(self, per_server: List[Any]):
        self.per_server = list(per_server)

    @property
    def messages(self) -> int:
        return sum(counters.messages for counters in self.per_server)


class SharedNfsTestbed:
    """``nclients`` NFS clients sharing ``nservers`` servers."""

    def __init__(
        self,
        nclients: int = 2,
        kind: str = "nfsv3",
        params: Optional[TestbedParams] = None,
        nservers: int = 1,
        shards: int = 1,
        executor: str = "thread",
        jobs: Optional[int] = None,
        striped: bool = False,
    ):
        if kind == "iscsi":
            raise ValueError(
                "iSCSI volumes are single-client by design (Section 2.3); "
                "a shared testbed requires an NFS kind"
            )
        if nclients < 2:
            raise ValueError("a shared testbed needs at least two clients")
        if nservers < 1:
            raise ValueError("nservers must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.kind = kind
        self.nservers = nservers
        self.shards = shards
        # pNFS-style export striping (repro.nfs.pnfs): every client
        # connects to every server and routes each path to its layout
        # home; striped=False keeps the classic client-mounts-one-server
        # wiring (and its event sequence) untouched.
        self.striped = striped
        self.layout = StripeLayout(nservers) if striped else None
        self.params = StorageStack._specialize_params(
            kind, params if params is not None else TestbedParams()
        )
        if shards > 1:
            if self.params.nfs.transport == "udp":
                raise ValueError(
                    "a sharded testbed needs a reliable transport: the lossy "
                    "UDP mode mutates deliveries in flight, which the "
                    "conservative window protocol does not model"
                )
            if executor == "fork":
                raise ValueError(
                    "the sharded testbed reads client/server state in the "
                    "driving process, so it supports the in-process "
                    "executors ('sequential', 'thread'); use "
                    "repro.sim.perf.run_shard_storm for fork-executor runs"
                )
            from ..sim.shard import ShardedSimulator

            # Lookahead = the minimum cross-shard link latency.  Every
            # transport here uses the testbed's one network config, so
            # that minimum is simply rtt/2; a zero-RTT network is
            # rejected by ShardedSimulator (no conservative window).
            self.sharded: Optional[ShardedSimulator] = ShardedSimulator(
                shards, self.params.network.rtt / 2.0,
                executor=executor, jobs=jobs)
            self.sim = None
        else:
            self.sharded = None
            self.sim = Simulator()
        self.server_hosts: List[Host] = []
        self.raids: List[Raid5Volume] = []
        self.filesystems: List[Ext3Fs] = []
        self.states: List[ServerState] = []
        for index in range(nservers):
            self._add_server(index)
        if striped:
            for state in self.states:
                state.layout = self.layout
        # Legacy single-server aliases.
        self.server_host = self.server_hosts[0]
        self.raid = self.raids[0]
        self.fs = self.filesystems[0]
        self.state = self.states[0]
        self.client_hosts: List[Host] = []
        self.clients: List[Any] = []
        self.counters: List[Any] = []
        self.servers: List[NfsServer] = []
        self._phases: dict = {}
        self._phase_seq = 0
        for index in range(nclients):
            self._add_client(index)
        if self.sharded is None:
            for fs in self.filesystems:
                self.sim.run_process(fs.mount(), name="mount")
        else:
            # Mount through the window machinery so the end-of-phase
            # barrier leaves every shard at the same instant.
            for index, fs in enumerate(self.filesystems):
                self.sharded.add_phase(
                    "mount", self.server_shard_index(index), fs.mount,
                    name="mount.s%d" % index)
            self.sharded.run_phase("mount")

    # -- placement -------------------------------------------------------------

    def client_shard_index(self, index: int) -> int:
        """Which shard client ``index`` is placed on (round-robin)."""
        return index % self.shards

    def server_shard_index(self, index: int) -> int:
        """Which shard server ``index`` is placed on (round-robin)."""
        return index % self.shards

    def server_of(self, index: int) -> int:
        """Which server client ``index`` mounts."""
        return index % self.nservers

    def _client_sim(self, index: int) -> Simulator:
        if self.sharded is None:
            return self.sim
        return self.sharded.shard(self.client_shard_index(index)).sim

    def _server_sim(self, index: int) -> Simulator:
        if self.sharded is None:
            return self.sim
        return self.sharded.shard(self.server_shard_index(index)).sim

    # -- construction ----------------------------------------------------------

    def _add_server(self, index: int) -> None:
        cpu = self.params.cpu
        sim = self._server_sim(index)
        suffix = "" if self.nservers == 1 else "%d" % index
        host = Host(sim, cpu.server_cpus, "server" + suffix)
        raid = Raid5Volume(
            sim,
            raid_params=self.params.raid,
            disk_params=self.params.disk,
            cpu=host.cpu,
            parity_cpu_per_byte=cpu.raid_parity_per_byte,
            io_cpu=cpu.disk_io_issue,
            name="array" + suffix,
        )
        fs = Ext3Fs(
            sim,
            raid,
            cache_bytes=self.params.cache.server_cache_bytes,
            params=self.params.ext3,
            cpu=host.cpu,
            cpu_params=cpu,
            readahead_blocks=8,
            testbed=self.params,
            name="server%s-ext3" % suffix,
        )
        self.server_hosts.append(host)
        self.raids.append(raid)
        self.filesystems.append(fs)
        self.states.append(ServerState())

    def _add_client(self, index: int) -> None:
        cpu = self.params.cpu
        client_sim = self._client_sim(index)
        host = Host(client_sim, cpu.client_cpus, "client%d" % index)
        self.client_hosts.append(host)
        if not self.striped:
            client, counters, server = self._connect(
                index, self.server_of(index), host)
            self.clients.append(client)
            self.counters.append(counters)
            self.servers.append(server)
            return
        # Striped: one connection per server, routed by the layout.
        inner_clients: List[NfsClient] = []
        fan: List[Any] = []
        for server_index in range(self.nservers):
            client, counters, server = self._connect(
                index, server_index, host, suffix=".s%d" % server_index)
            inner_clients.append(client)
            fan.append(counters)
            self.servers.append(server)
        self.clients.append(StripedNfsClient(
            client_sim, inner_clients, layout=self.layout))
        self.counters.append(_FanoutCounters(fan))

    def _connect(self, index: int, server_index: int, host: Host,
                 suffix: str = ""):
        """Wire client ``index`` to server ``server_index``.

        Returns ``(client, counters, server_frontend)``.  ``suffix``
        distinguishes the per-server endpoints of a striped client; the
        classic single-mount path passes the empty suffix, keeping every
        endpoint name (and the event sequence) exactly as before.
        """
        cpu = self.params.cpu
        nfs = self.params.nfs
        server_host = self.server_hosts[server_index]
        client_sim = self._client_sim(index)
        if self.sharded is None:
            link = Link(self.sim, rtt=self.params.network.rtt,
                        bandwidth=self.params.network.bandwidth)
            counters: Any = MessageCounters()
            transport: Any = DuplexTransport(
                self.sim, link, counters=counters,
                reliable=nfs.transport != "udp",
                name="%s.c%d%s" % (self.kind, index, suffix),
            )
            server_sim = self.sim
        else:
            transport = ShardedTransport(
                self.sharded.shard(self.client_shard_index(index)),
                self.sharded.shard(self.server_shard_index(server_index)),
                rtt=self.params.network.rtt,
                bandwidth=self.params.network.bandwidth,
                name="%s.c%d%s" % (self.kind, index, suffix),
            )
            counters = _MergedCounters(transport)
            server_sim = self._server_sim(server_index)
        server_rpc = RpcPeer(
            server_sim, transport.server, transport.send_from_server,
            cpu=server_host.cpu,
            per_message_cpu=(cpu.net_per_message + cpu.rpc_layer
                             + cpu.nfs_server_layer),
            per_byte_cpu=cpu.copy_per_byte,
            name="nfsd.c%d%s" % (index, suffix),
        )
        # All frontends of one server share its filesystem, its
        # delegation/cache state, and its per-inode write locks.
        server = NfsServer(server_sim, self.filesystems[server_index],
                           server_rpc, params=nfs,
                           cpu_params=cpu, state=self.states[server_index],
                           name="nfsd.c%d%s" % (index, suffix))
        client_rpc = RpcPeer(
            client_sim, transport.client, transport.send_from_client,
            cpu=host.cpu,
            per_message_cpu=cpu.net_per_message + cpu.rpc_layer,
            per_byte_cpu=cpu.copy_per_byte,
            retransmit=RetransmitPolicy(
                timeout=nfs.rpc_timeout,
                backoff=nfs.rpc_timeout_backoff,
                max_retries=nfs.rpc_max_retries,
                reset_connection=nfs.transport == "tcp",
            ),
            name="nfs.c%d%s" % (index, suffix),
        )
        client = NfsClient(
            client_sim, client_rpc, params=nfs,
            cache_params=self.params.cache, cpu_params=cpu,
            name="nfs-client%d%s" % (index, suffix),
            client_id="client%d" % index,
        )
        return client, counters, server

    # -- driving -----------------------------------------------------------------

    def run(self, coroutine: Generator, name: str = "workload"):
        """Execute the workload; returns its result record (unsharded only)."""
        if self.sharded is not None:
            raise RuntimeError(
                "a sharded testbed has no single calendar to drive; register "
                "per-client factories with add_workload() and call run_phase()"
            )
        return self.sim.run_process(coroutine, name=name)

    def add_workload(self, client_index: int,
                     factory: Callable[[], Generator],
                     phase: str = "workload") -> None:
        """Register a zero-arg workload factory for one client's shard.

        In the unsharded testbed the factories are simply remembered and
        spawned together by :meth:`run_phase`, so driver code is
        identical across shardings.
        """
        if self.sharded is not None:
            self.sharded.add_phase(
                phase, self.client_shard_index(client_index), factory,
                name="%s.c%d" % (phase, client_index))
        else:
            self._phases.setdefault(phase, []).append(
                (factory, "%s.c%d" % (phase, client_index)))

    def run_phase(self, phase: str = "workload") -> None:
        """Run every workload registered under ``phase`` to completion."""
        if self.sharded is not None:
            self.sharded.run_phase(phase)
            return
        procs = [self.sim.spawn(factory(), name=name)
                 for factory, name in self._phases.pop(phase, ())]
        if procs:
            self.sim.run_process(self._await_all(procs), name=phase)

    def _await_all(self, procs) -> Generator:
        yield self.sim.all_of(procs)

    def quiesce(self) -> None:
        """Settle all asynchronous state on every client and server."""
        if self.sharded is None:
            for client in self.clients:
                self.run(client.quiesce(), name="quiesce")
            for fs in self.filesystems:
                self.run(fs.quiesce(), name="server-quiesce")
            return
        self._phase_seq += 1
        phase = "quiesce%d" % self._phase_seq
        for index, client in enumerate(self.clients):
            self.sharded.add_phase(
                phase, self.client_shard_index(index), client.quiesce,
                name="%s.c%d" % (phase, index))
        self.sharded.run_phase(phase)
        server_phase = "server-" + phase
        for index, fs in enumerate(self.filesystems):
            self.sharded.add_phase(
                server_phase, self.server_shard_index(index), fs.quiesce,
                name="%s.s%d" % (server_phase, index))
        self.sharded.run_phase(server_phase)

    def close(self) -> None:
        """Shut the shard executor down (no-op for the unsharded bed)."""
        if self.sharded is not None:
            self.sharded.close()

    def __enter__(self) -> "SharedNfsTestbed":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- accounting --------------------------------------------------------------

    @property
    def total_messages(self) -> int:
        return sum(counters.messages for counters in self.counters)

    @property
    def callbacks_sent(self) -> int:
        return sum(state.callbacks_sent for state in self.states)

    @property
    def messages_by_server(self) -> List[int]:
        """Protocol requests that crossed each server's transports."""
        totals = [0] * self.nservers
        if self.striped:
            for counters in self.counters:
                for server, inner in enumerate(counters.per_server):
                    totals[server] += inner.messages
            return totals
        for index, counters in enumerate(self.counters):
            totals[self.server_of(index)] += counters.messages
        return totals

    @property
    def layouts_granted(self) -> int:
        """LAYOUTGET grants answered across all servers (striped only)."""
        return sum(state.layouts_granted for state in self.states)

    @property
    def callbacks_by_server(self) -> List[int]:
        return [state.callbacks_sent for state in self.states]
