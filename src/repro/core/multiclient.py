"""A multi-client NFS testbed.

The paper deliberately studies the *unshared* case — one client per data
store — and notes that NFS's costs (consistency checks, synchronous
meta-data updates) exist to pay for sharing.  This module builds the
configuration those costs were designed for: **several client machines
mounting one NFS export**, each over its own Gigabit link, all served by
one filesystem on the server.

It is the live counterpart to the Section-7 trace simulation: with the
enhancements enabled, cache-invalidation callbacks and directory-
delegation recalls actually travel between real protocol endpoints here.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..client.host import Host
from ..fs.ext3 import Ext3Fs
from ..net.link import Link
from ..net.rpc import RetransmitPolicy, RpcPeer
from ..net.transport import DuplexTransport
from ..nfs.client import NfsClient
from ..nfs.server import NfsServer, ServerState
from ..sim import Simulator
from ..storage.raid import Raid5Volume
from .comparison import StorageStack
from .counters import MessageCounters
from .params import TestbedParams

__all__ = ["SharedNfsTestbed"]


class SharedNfsTestbed:
    """``nclients`` NFS clients sharing one server and one filesystem."""

    def __init__(
        self,
        nclients: int = 2,
        kind: str = "nfsv3",
        params: Optional[TestbedParams] = None,
    ):
        if kind == "iscsi":
            raise ValueError(
                "iSCSI volumes are single-client by design (Section 2.3); "
                "a shared testbed requires an NFS kind"
            )
        if nclients < 2:
            raise ValueError("a shared testbed needs at least two clients")
        self.kind = kind
        self.params = StorageStack._specialize_params(
            kind, params if params is not None else TestbedParams()
        )
        self.sim = Simulator()
        cpu = self.params.cpu
        self.server_host = Host(self.sim, cpu.server_cpus, "server")
        self.raid = Raid5Volume(
            self.sim,
            raid_params=self.params.raid,
            disk_params=self.params.disk,
            cpu=self.server_host.cpu,
            parity_cpu_per_byte=cpu.raid_parity_per_byte,
            io_cpu=cpu.disk_io_issue,
            name="array",
        )
        self.fs = Ext3Fs(
            self.sim,
            self.raid,
            cache_bytes=self.params.cache.server_cache_bytes,
            params=self.params.ext3,
            cpu=self.server_host.cpu,
            cpu_params=cpu,
            readahead_blocks=8,
            testbed=self.params,
            name="server-ext3",
        )
        self.state = ServerState()
        self.client_hosts: List[Host] = []
        self.clients: List[NfsClient] = []
        self.counters: List[MessageCounters] = []
        self.servers: List[NfsServer] = []
        for index in range(nclients):
            self._add_client(index)
        self.sim.run_process(self.fs.mount(), name="mount")

    def _add_client(self, index: int) -> None:
        cpu = self.params.cpu
        nfs = self.params.nfs
        host = Host(self.sim, cpu.client_cpus, "client%d" % index)
        link = Link(self.sim, rtt=self.params.network.rtt,
                    bandwidth=self.params.network.bandwidth)
        counters = MessageCounters()
        transport = DuplexTransport(
            self.sim, link, counters=counters,
            reliable=nfs.transport != "udp",
            name="%s.c%d" % (self.kind, index),
        )
        server_rpc = RpcPeer(
            self.sim, transport.server, transport.send_from_server,
            cpu=self.server_host.cpu,
            per_message_cpu=(cpu.net_per_message + cpu.rpc_layer
                             + cpu.nfs_server_layer),
            per_byte_cpu=cpu.copy_per_byte,
            name="nfsd.c%d" % index,
        )
        # All frontends share the filesystem, the delegation/cache state,
        # and the per-inode write locks.
        server = NfsServer(self.sim, self.fs, server_rpc, params=nfs,
                           cpu_params=cpu, state=self.state,
                           name="nfsd.c%d" % index)
        client_rpc = RpcPeer(
            self.sim, transport.client, transport.send_from_client,
            cpu=host.cpu,
            per_message_cpu=cpu.net_per_message + cpu.rpc_layer,
            per_byte_cpu=cpu.copy_per_byte,
            retransmit=RetransmitPolicy(
                timeout=nfs.rpc_timeout,
                backoff=nfs.rpc_timeout_backoff,
                max_retries=nfs.rpc_max_retries,
                reset_connection=nfs.transport == "tcp",
            ),
            name="nfs.c%d" % index,
        )
        client = NfsClient(
            self.sim, client_rpc, params=nfs,
            cache_params=self.params.cache, cpu_params=cpu,
            name="nfs-client%d" % index,
            client_id="client%d" % index,
        )
        self.client_hosts.append(host)
        self.clients.append(client)
        self.counters.append(counters)
        self.servers.append(server)

    # -- driving -----------------------------------------------------------------

    def run(self, coroutine: Generator, name: str = "workload"):
        """Execute the workload; returns its result record."""
        return self.sim.run_process(coroutine, name=name)

    def quiesce(self) -> None:
        """Settle all asynchronous state on every client and the server."""
        for client in self.clients:
            self.run(client.quiesce(), name="quiesce")
        self.run(self.fs.quiesce(), name="server-quiesce")

    @property
    def total_messages(self) -> int:
        return sum(counters.messages for counters in self.counters)

    @property
    def callbacks_sent(self) -> int:
        return self.state.callbacks_sent
