"""Core: the comparison harness, counters, and testbed parameters.

The comparison harness is imported lazily (PEP 562) because it sits at the
top of the dependency graph: substrate modules import ``repro.core.params``
and ``repro.core.counters``, and an eager import of the harness here would
make that circular.
"""

from .counters import CountersSnapshot, MessageCounters
from .params import (
    CacheParams,
    CpuParams,
    DiskParams,
    Ext3Params,
    IscsiParams,
    NetworkParams,
    NfsParams,
    RaidParams,
    TestbedParams,
)

__all__ = [
    "CacheParams",
    "CountersSnapshot",
    "CpuParams",
    "DiskParams",
    "Ext3Params",
    "IscsiParams",
    "MessageCounters",
    "NetworkParams",
    "NfsParams",
    "RaidParams",
    "STACK_KINDS",
    "SharedNfsTestbed",
    "StorageStack",
    "TestbedParams",
    "make_stack",
]

_LAZY = {"STACK_KINDS", "StorageStack", "make_stack", "SharedNfsTestbed"}


def __getattr__(name):
    if name == "SharedNfsTestbed":
        from .multiclient import SharedNfsTestbed

        return SharedNfsTestbed
    if name in _LAZY:
        from . import comparison

        return getattr(comparison, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
