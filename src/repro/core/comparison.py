"""The comparison harness: build a complete testbed for any stack kind.

:class:`StorageStack` assembles the whole simulated testbed of Figure 2 —
client host, server host, Gigabit link, RAID-5 array, and either

* ``"nfsv2" | "nfsv3" | "nfsv4"`` — ext3 at the *server*, exported over the
  chosen NFS generation (file-access protocol), or
* ``"iscsi"`` — ext3 at the *client* over an iSCSI initiator/target pair
  (block-access protocol), or
* ``"nfs-enhanced"`` — NFS v4 plus the Section-7 enhancements
  (strongly-consistent meta-data cache + directory delegation).

Whatever the kind, ``stack.client`` exposes the same syscall surface, so a
workload runs unmodified against every stack — the paper's methodology in
code.  Message/byte counting lives on the stack's transport; CPU accounting
on its two hosts.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Generator, Optional

from ..client.host import Host
from ..fs.ext3 import Ext3Fs
from ..fs.vfs import Vfs
from ..iscsi.initiator import IscsiInitiator
from ..iscsi.target import IscsiTarget
from ..net.link import Link
from ..net.rpc import RetransmitPolicy, RpcPeer
from ..net.transport import DuplexTransport
from ..nfs.client import NfsClient
from ..nfs.server import NfsServer
from ..obs.proxy import TracedClient
from ..obs.tracer import NULL_TRACER, NullTracer, Tracer
from ..sim import Simulator
from ..storage.raid import Raid5Volume
from .counters import CountersSnapshot, MessageCounters
from .params import NfsParams, TestbedParams

__all__ = ["StorageStack", "STACK_KINDS", "make_stack", "placement_shard"]

STACK_KINDS = ("nfsv2", "nfsv3", "nfsv4", "iscsi", "nfs-enhanced")


def placement_shard(shards: int, params: Optional[TestbedParams] = None,
                    san: bool = False):
    """Resolve a ``--shards`` cell parameter to a stack placement.

    ``0`` (the default everywhere) means "no placement": the stack
    builds its own flat :class:`~repro.sim.Simulator` exactly as
    always.  ``1`` builds a one-shard
    :class:`~repro.sim.shard.ShardedSimulator` (lookahead = the
    testbed's one-way link latency) and returns its shard — the run is
    byte-identical to the unplaced one, which CI enforces.  A single
    stack is one tightly coupled unit (client, link, server share one
    calendar), so more than one shard is rejected here: within-run
    parallelism comes from *multi-stack* topologies — see
    :class:`~repro.core.multiclient.SharedNfsTestbed` and
    ``repro scale``.
    """
    if not shards:
        return None
    if shards != 1:
        raise ValueError(
            "a single stack occupies exactly one shard (got shards=%d); "
            "multi-shard runs need a multi-stack topology — see "
            "SharedNfsTestbed(shards=...) or `repro scale`" % (shards,))
    from ..sim.shard import ShardedSimulator

    testbed = params if params is not None else TestbedParams()
    return ShardedSimulator(
        1, testbed.network.rtt / 2.0, san=san).shard(0)


class StorageStack:
    """A fully wired client/server testbed for one protocol stack."""

    def __init__(self, kind: str, params: Optional[TestbedParams] = None,
                 trace: bool = False, tracer: Optional[NullTracer] = None,
                 fault_plan=None, san: bool = False,
                 telemetry: bool = False, heartbeat: bool = False,
                 recorder: bool = False, sim: Optional[Any] = None):
        if kind not in STACK_KINDS:
            raise ValueError("unknown stack kind %r; one of %s" % (kind, STACK_KINDS))
        self.kind = kind
        self.params = params if params is not None else TestbedParams()
        self.params = self._specialize_params(kind, self.params)

        # Placement: ``sim`` accepts a Simulator or a Shard
        # (repro.sim.shard) — the whole stack (both hosts, the link,
        # everything) is then built on that calendar.  A stack is a
        # tightly coupled unit; to parallelize *across* stacks, place
        # each one on its own shard.  In a multi-shard topology the
        # caller owns phase discipline: mount through a phase (see
        # SharedNfsTestbed) rather than run_process.
        if sim is not None:
            self.sim = getattr(sim, "sim", sim)  # unwrap a Shard
            if san:
                from ..check.simsan import CheckedSimulator
                if not isinstance(self.sim, CheckedSimulator):
                    raise ValueError(
                        "san=True needs a checking kernel: build the "
                        "placement on one (ShardedSimulator(..., san=True)) "
                        "or drop sim=")
        elif san:
            # Sanitizers (repro.check.simsan): built only on request, so
            # the default stack keeps the plain kernel and None hooks
            # everywhere.
            from ..check.simsan import CheckedSimulator
            self.sim = CheckedSimulator()
        else:
            self.sim = Simulator()
        # Observability: a recording Tracer when requested, else the
        # zero-overhead NULL_TRACER (identical event sequence to untraced).
        if tracer is None:
            tracer = Tracer(self.sim) if trace else NULL_TRACER
        self.tracer = tracer
        cpu = self.params.cpu
        self.client_host = Host(self.sim, cpu.client_cpus, "client")
        self.server_host = Host(self.sim, cpu.server_cpus, "server")
        self.link = Link(
            self.sim,
            rtt=self.params.network.rtt,
            bandwidth=self.params.network.bandwidth,
        )
        self.counters = MessageCounters()
        self.transport = DuplexTransport(
            self.sim,
            self.link,
            counters=self.counters,
            reliable=self.params.nfs.transport != "udp" or kind == "iscsi",
            name=kind,
            tracer=self.tracer,
        )
        self.raid = Raid5Volume(
            self.sim,
            raid_params=self.params.raid,
            disk_params=self.params.disk,
            cpu=self.server_host.cpu,
            parity_cpu_per_byte=cpu.raid_parity_per_byte,
            io_cpu=cpu.disk_io_issue,
            name="array",
            tracer=self.tracer,
        )
        if kind == "iscsi":
            self._build_iscsi()
        else:
            self._build_nfs()
        self.raw_client = self.client
        if self.tracer.enabled:
            self.client = TracedClient(self.client, self.tracer)
            self._register_probes()
        # Streaming telemetry (repro.obs.telemetry): bounded-memory
        # rollups, built only on request.  Every probe is a pure read of
        # existing accounting state, so a telemetry-on run produces the
        # same measured outputs as a plain one.
        self.telemetry = None
        if telemetry:
            from ..obs.telemetry import Heartbeat, Telemetry
            hb = Heartbeat("stack:" + kind) if heartbeat else None
            self.telemetry = Telemetry(self.sim, heartbeat=hb)
            self.transport.telem = self.telemetry
            self._register_telemetry()
            self.telemetry.start()
        # Flight recorder (repro.obs.explain): a bounded ring of recent
        # kernel events and wire messages, built only on request.  It
        # observes and never schedules, so recorder-on runs keep the
        # exact same event sequence; simsan/telemetry findings dump its
        # context window as evidence.
        self.recorder = None
        if recorder:
            from ..obs.explain import FlightRecorder
            self.recorder = FlightRecorder(self.sim)
            self.sim.recorder = self.recorder
            self.transport.recorder = self.recorder
            if self.telemetry is not None:
                self.telemetry.recorder = self.recorder
        # Fault injection (repro.faults): built only for a non-empty plan,
        # so unfaulted stacks keep the exact pre-existing event sequence.
        self.fault_injector = None
        if fault_plan is not None and not fault_plan.is_empty:
            from ..faults.injector import FaultInjector
            self.fault_injector = FaultInjector(
                self.sim,
                fault_plan,
                transport=self.transport,
                link=self.link,
                raid=self.raid,
                nfs_server=self.server,
                initiator=self.initiator,
                tracer=self.tracer,
            )
            # MC/S: every connection of the session crosses the same
            # faulted wire, so reorder/loss/flap plans apply to the
            # extra transports too (the injector ctor only attached to
            # the leading one).
            for transport in self.mcs_transports:
                transport.fault = self.fault_injector
        self.sanitizer = None
        if san:
            from ..check.simsan import SimSan
            self.sanitizer = SimSan(self)
        self.mounted = False

    # -- construction ----------------------------------------------------------------

    @staticmethod
    def _specialize_params(kind: str, params: TestbedParams) -> TestbedParams:
        if kind == "iscsi":
            return params
        version_for_kind = {"nfsv2": 2, "nfsv3": 3, "nfsv4": 4}.get(kind)
        if version_for_kind is not None and params.nfs.version == version_for_kind:
            # The experimenter supplied a fully specified NfsParams for
            # this exact version: trust it verbatim.
            return params
        if kind == "nfsv2":
            nfs = NfsParams.for_version(2)
        elif kind == "nfsv3":
            nfs = NfsParams.for_version(3)
        elif kind == "nfsv4":
            nfs = NfsParams.for_version(4)
        else:  # nfs-enhanced: v4 plus the Section-7 machinery
            nfs = replace(
                NfsParams.for_version(4),
                consistent_metadata_cache=True,
                directory_delegation=True,
                writeback_delay=5.0,   # lazy like ext3's commit interval
                pages_per_flush_rpc=32,  # spatial write aggregation (§6.1)
            )
        # Carry over every field the experimenter explicitly changed from
        # the defaults (ablations twist rsize, validity windows, access
        # checks, ...); version-defining defaults stay otherwise.
        import dataclasses
        base = params.nfs
        reference = NfsParams()
        overrides = {}
        for field in dataclasses.fields(NfsParams):
            value = getattr(base, field.name)
            if value != getattr(reference, field.name):
                overrides[field.name] = value
        overrides.pop("version", None)
        nfs = replace(nfs, **overrides)
        return replace(params, nfs=nfs)

    def _build_iscsi(self) -> None:
        cpu = self.params.cpu
        iscsi = self.params.iscsi
        if iscsi.connections < 1:
            raise ValueError("iscsi connections must be >= 1 (got %d)"
                             % (iscsi.connections,))
        target_rpc = RpcPeer(
            self.sim,
            self.transport.server,
            self.transport.send_from_server,
            cpu=self.server_host.cpu,
            per_message_cpu=cpu.net_per_message,
            per_byte_cpu=cpu.copy_per_byte,
            name="iscsi.target.rpc",
            tracer=self.tracer,
            track="server",
        )
        self.target = IscsiTarget(
            self.sim, self.raid, target_rpc,
            cpu=self.server_host.cpu, cpu_params=cpu,
            tracer=self.tracer,
        )
        initiator_rpc = RpcPeer(
            self.sim,
            self.transport.client,
            self.transport.send_from_client,
            cpu=self.client_host.cpu,
            per_message_cpu=cpu.net_per_message,
            per_byte_cpu=cpu.copy_per_byte,
            name="iscsi.initiator.rpc",
            tracer=self.tracer,
            track="client",
        )
        # MC/S (repro.iscsi.mcs): extra TCP connections share the one
        # physical link (and the stack's message counters) but get their
        # own transport endpoints and RPC peers per side.  connections=1
        # builds nothing extra, keeping the original wiring (and every
        # committed output) byte-identical.
        self.session = None
        self.mcs_transports = []
        initiator_rpcs = [initiator_rpc]
        for conn in range(1, iscsi.connections):
            transport = DuplexTransport(
                self.sim,
                self.link,
                counters=self.counters,
                reliable=True,
                name="%s.mcs%d" % (self.kind, conn),
                tracer=self.tracer,
            )
            self.mcs_transports.append(transport)
            conn_target_rpc = RpcPeer(
                self.sim,
                transport.server,
                transport.send_from_server,
                cpu=self.server_host.cpu,
                per_message_cpu=cpu.net_per_message,
                per_byte_cpu=cpu.copy_per_byte,
                name="iscsi.target.rpc.c%d" % conn,
                tracer=self.tracer,
                track="server",
            )
            self.target.add_connection(conn_target_rpc)
            initiator_rpcs.append(RpcPeer(
                self.sim,
                transport.client,
                transport.send_from_client,
                cpu=self.client_host.cpu,
                per_message_cpu=cpu.net_per_message,
                per_byte_cpu=cpu.copy_per_byte,
                name="iscsi.initiator.rpc.c%d" % conn,
                tracer=self.tracer,
                track="client",
            ))
        if iscsi.connections > 1:
            from ..iscsi.mcs import McsSession
            self.session = McsSession(self.sim, initiator_rpcs,
                                      policy=iscsi.mcs_policy)
        self.initiator = IscsiInitiator(
            self.sim, initiator_rpc, nblocks=self.raid.nblocks,
            params=self.params.iscsi,
            cpu=self.client_host.cpu, cpu_params=cpu,
            tracer=self.tracer,
            session=self.session,
        )
        self.fs = Ext3Fs(
            self.sim,
            self.initiator,
            cache_bytes=self.params.cache.client_cache_bytes,
            params=self.params.ext3,
            cpu=self.client_host.cpu,
            cpu_params=cpu,
            max_coalesced_write=self.params.iscsi.max_coalesced_write,
            readahead_blocks=8,
            testbed=self.params,
            name="client-ext3",
            tracer=self.tracer,
            track="client",
        )
        self.client = Vfs(self.fs)
        self.server = None
        self.nfs_client = None

    def _build_nfs(self) -> None:
        cpu = self.params.cpu
        nfs = self.params.nfs
        self.fs = Ext3Fs(
            self.sim,
            self.raid,
            cache_bytes=self.params.cache.server_cache_bytes,
            params=self.params.ext3,
            cpu=self.server_host.cpu,
            cpu_params=cpu,
            readahead_blocks=8,
            testbed=self.params,
            name="server-ext3",
            tracer=self.tracer,
            track="server",
        )
        server_rpc = RpcPeer(
            self.sim,
            self.transport.server,
            self.transport.send_from_server,
            cpu=self.server_host.cpu,
            per_message_cpu=(
                cpu.net_per_message + cpu.rpc_layer + cpu.nfs_server_layer
            ),
            per_byte_cpu=cpu.copy_per_byte,
            name="nfsd.rpc",
            tracer=self.tracer,
            track="server",
        )
        self.server = NfsServer(
            self.sim, self.fs, server_rpc, params=nfs, cpu_params=cpu,
            tracer=self.tracer,
        )
        retransmit = RetransmitPolicy(
            timeout=nfs.rpc_timeout,
            backoff=nfs.rpc_timeout_backoff,
            max_retries=nfs.rpc_max_retries,
            reset_connection=nfs.transport == "tcp",
        )
        client_rpc = RpcPeer(
            self.sim,
            self.transport.client,
            self.transport.send_from_client,
            cpu=self.client_host.cpu,
            per_message_cpu=cpu.net_per_message + cpu.rpc_layer,
            per_byte_cpu=cpu.copy_per_byte,
            retransmit=retransmit,
            name="nfs.client.rpc",
            tracer=self.tracer,
            track="client",
        )
        self.nfs_client = NfsClient(
            self.sim,
            client_rpc,
            params=nfs,
            cache_params=self.params.cache,
            cpu_params=cpu,
            readahead_pages=4,
            tracer=self.tracer,
        )
        self.client = self.nfs_client
        self.target = None
        self.initiator = None
        self.session = None
        self.mcs_transports = []

    def _register_probes(self) -> None:
        """Attach the vmstat-style utilization probes and start sampling."""

        def cpu_probe(host: Host):
            tracker = host.cpu.tracker
            def probe() -> float:
                tracker._accumulate()
                return tracker.busy_time / tracker.capacity
            return probe

        self.tracer.add_probe(
            "cpu.client", cpu_probe(self.client_host),
            kind="cumulative", track="client",
        )
        self.tracer.add_probe(
            "cpu.server", cpu_probe(self.server_host),
            kind="cumulative", track="server",
        )
        self.tracer.add_probe(
            "link.MBps", lambda: float(self.link.total_bytes),
            kind="rate", track="wire", scale=1e-6,
        )
        self.tracer.add_probe(
            "disk.queue",
            lambda: float(sum(
                disk.queue.queue_length
                + (disk.queue.capacity - disk.queue.available)
                for disk in self.raid.disks
            )),
            kind="gauge", track="server",
        )
        self.tracer.start_sampling()

    def _register_telemetry(self) -> None:
        """Register every tier of the testbed on the telemetry collector.

        Unlike the tracer probes above, these never call
        ``_accumulate()`` or any other mutator: a probe that advanced
        the busy-time accumulators would change the *order* of float
        additions, and the reported utilization figures would depend on
        whether telemetry was enabled.  Each probe recomputes the
        current value from the raw accounting fields instead.
        """
        telem = self.telemetry
        sim = self.sim

        def busy_probe(tracker: Any, capacity: int):
            # Works for both UtilizationTracker and ResourceStats: the
            # busy-time integral extended to `now` without committing it.
            def probe() -> float:
                return (tracker.busy_time + tracker._in_service
                        * (sim.now - tracker._last_change)) / capacity
            return probe

        def depth_probe(resource: Any):
            def probe() -> float:
                return float(resource.queue_length
                             + (resource.capacity - resource.available))
            return probe

        def counter_probe(stats: Any, field: str):
            def probe() -> float:
                return float(getattr(stats, field))
            return probe

        client_cpu = self.client_host.cpu
        server_cpu = self.server_host.cpu
        telem.add_series("client.cpu.util",
                         busy_probe(client_cpu.tracker, client_cpu.capacity),
                         kind="cumulative", tag="util")
        telem.add_series("server.cpu.util",
                         busy_probe(server_cpu.tracker, server_cpu.capacity),
                         kind="cumulative", tag="util")
        telem.add_series("net.link.MBps",
                         lambda: float(self.link.total_bytes),
                         kind="rate", tag="rate", scale=1e-6)
        telem.add_series("client.inbox.depth",
                         lambda: float(len(self.transport.client.inbox)),
                         kind="gauge", tag="queue")
        telem.add_series("server.inbox.depth",
                         lambda: float(len(self.transport.server.inbox)),
                         kind="gauge", tag="queue")
        for index, disk in enumerate(self.raid.disks):
            queue = disk.queue
            telem.add_series("server.disk%02d.queue" % index,
                             depth_probe(queue), kind="gauge", tag="queue")
            telem.add_series("server.disk%02d.util" % index,
                             busy_probe(queue.stats, queue.capacity),
                             kind="cumulative", tag="util")
        raid = self.raid
        telem.add_series(
            "server.raid.degraded_s",
            lambda: float(raid.degraded_reads + raid.degraded_writes
                          + raid.rebuild_writes),
            kind="cumulative", tag="rate")
        caller, server_peer = self.rpc_peers()
        telem.add_series("client.rpc.calls_s",
                         counter_probe(caller, "calls_issued"),
                         kind="cumulative", tag="rate")
        telem.add_series("server.rpc.served_s",
                         counter_probe(server_peer, "calls_served"),
                         kind="cumulative", tag="rate")
        if self.kind == "iscsi":
            initiator = self.initiator
            telem.add_series(
                "client.iscsi.inflight",
                lambda: float(initiator.commands_issued
                              - initiator.commands_completed),
                kind="gauge", tag="queue")
            telem.add_series("client.cache.hits_s",
                             counter_probe(self.fs.cache.stats, "hits"),
                             kind="cumulative", tag="rate")
            telem.add_series("client.cache.misses_s",
                             counter_probe(self.fs.cache.stats, "misses"),
                             kind="cumulative", tag="rate")
            session = self.session
            if session is not None:
                # MC/S: per-connection PDU rates expose scheduler skew,
                # and the held gauge is the in-order completion buffer.
                for conn in range(session.nconnections):
                    telem.add_series(
                        "client.iscsi.conn%02d.pdus_s" % conn,
                        lambda conn=conn: float(
                            session.pdus_by_connection[conn]),
                        kind="cumulative", tag="rate")
                telem.add_series("client.iscsi.held",
                                 lambda: float(session.held_now),
                                 kind="gauge", tag="queue")
        else:
            telem.add_series("server.cache.hits_s",
                             counter_probe(self.fs.cache.stats, "hits"),
                             kind="cumulative", tag="rate")
            telem.add_series("server.cache.misses_s",
                             counter_probe(self.fs.cache.stats, "misses"),
                             kind="cumulative", tag="rate")
            pages = self.nfs_client._pages.stats
            telem.add_series("client.cache.hits_s",
                             counter_probe(pages, "hits"),
                             kind="cumulative", tag="rate")
            telem.add_series("client.cache.misses_s",
                             counter_probe(pages, "misses"),
                             kind="cumulative", tag="rate")

    # -- lifecycle --------------------------------------------------------------------

    def mount(self) -> None:
        """Bring the stack online (runs the mount exchanges to completion)."""
        if self.mounted:
            return
        self.run(self.fs.mount())
        self.mounted = True

    def run(self, coroutine: Generator, name: str = "workload") -> Any:
        """Drive ``coroutine`` to completion on this stack's simulator."""
        return self.sim.run_process(coroutine, name=name)

    def quiesce(self) -> None:
        """Settle all asynchronous state (client write-back, journal, cache)."""
        self.run(self.client.quiesce(), name="quiesce")
        if self.kind != "iscsi":
            self.run(self.fs.quiesce(), name="server-quiesce")

    def drop_caches(self) -> None:
        """Empty every cache but keep open file descriptors valid."""
        self.run(self.client.drop_caches(), name="drop-caches")
        if self.kind != "iscsi":
            self.run(self.fs.quiesce(), name="server-quiesce")
            self.fs.drop_caches()
            self.run(self.fs.mount(), name="server-remount")

    def make_cold(self) -> None:
        """The paper's cold-cache protocol: quiesce, drop every cache."""
        self.quiesce()
        self.run(self.client.remount_cold(), name="cold")
        if self.kind != "iscsi":
            # Restarting the NFS server empties its buffer cache too.
            self.run(self.fs.remount_cold(), name="server-cold")

    # -- measurement ------------------------------------------------------------------

    def resources(self):
        """Every contended resource in the testbed, client to spindles.

        The list feeds the queueing analytics in :mod:`repro.obs.profile`
        (each entry carries a live
        :class:`~repro.sim.stats.ResourceStats` as ``.stats``): both host
        CPUs, then every disk queue of the RAID array.
        """
        out = [self.client_host.cpu, self.server_host.cpu]
        out.extend(disk.queue for disk in self.raid.disks)
        return out

    def rpc_peers(self):
        """Both RPC peers of the stack (caller and server side)."""
        if self.kind == "iscsi":
            return [self.initiator.rpc, self.target.rpc]
        return [self.nfs_client.rpc, self.server.rpc]

    def check(self, strict: bool = True):
        """Verify the runtime sanitizers (no-op unless built with san=True).

        Returns the finding list; with ``strict`` (the default) raises
        :class:`repro.check.simsan.SanitizerError` on any finding.
        """
        if self.sanitizer is None:
            return []
        return self.sanitizer.verify(strict=strict)

    def snapshot(self) -> CountersSnapshot:
        """Return an immutable copy of the current counter values."""
        return self.counters.snapshot()

    def delta(self, since: CountersSnapshot) -> CountersSnapshot:
        """Return the traffic accumulated since ``since`` was snapshotted."""
        return self.counters.delta(since)

    def set_rtt(self, rtt: float) -> None:
        """The NISTNet knob (Fig. 6)."""
        self.link.set_rtt(rtt)

    def reset_cpu_windows(self) -> None:
        """Start fresh CPU-utilization measurement windows on both hosts."""
        self.client_host.reset_utilization_window()
        self.server_host.reset_utilization_window()

    @property
    def now(self) -> float:
        return self.sim.now


def make_stack(kind: str, params: Optional[TestbedParams] = None,
               mounted: bool = True, trace: bool = False,
               fault_plan=None, san: bool = False,
               telemetry: bool = False,
               heartbeat: bool = False,
               recorder: bool = False,
               sim: Optional[Any] = None) -> StorageStack:
    """Build (and by default mount) a stack of the given kind.

    Pass ``trace=True`` to attach a recording :class:`repro.obs.Tracer`
    (exposed as ``stack.tracer``); the default is the no-op tracer.
    Pass a non-empty :class:`repro.faults.FaultPlan` as ``fault_plan`` to
    arm fault injection; its event clock starts *after* the mount, so plan
    times are relative to the beginning of the workload.
    Pass ``san=True`` to run on a checking kernel with the runtime
    sanitizers attached (``stack.check()`` verifies at end of run); the
    checks observe only, so outputs stay bit-identical.
    Pass ``telemetry=True`` to attach the streaming telemetry collector
    (``stack.telemetry``, a :class:`repro.obs.telemetry.Telemetry`); its
    probes are pure reads, so measured outputs stay bit-identical too.
    ``heartbeat=True`` additionally prints progress lines to stderr.
    Pass ``recorder=True`` to attach a
    :class:`repro.obs.explain.FlightRecorder` (``stack.recorder``): a
    bounded ring of recent kernel events and messages that sanitizer and
    telemetry findings dump as evidence; also observe-only.
    Pass ``sim=`` (a :class:`~repro.sim.Simulator` or a
    :class:`~repro.sim.shard.Shard`) to place the stack on an existing
    calendar — the shard-placement API; with one shard the run is
    byte-identical to an unplaced stack.
    """
    stack = StorageStack(kind, params, trace=trace, fault_plan=fault_plan,
                         san=san, telemetry=telemetry, heartbeat=heartbeat,
                         recorder=recorder, sim=sim)
    if mounted:
        stack.mount()
    if stack.fault_injector is not None:
        stack.fault_injector.start()
    return stack
