"""In-memory representation of on-disk inodes.

The simulator does not store file *contents*; an inode records metadata and
the logical→physical block map.  What makes it "on-disk" is the accounting:
touching an inode requires its inode-table block to be present in the buffer
cache, and 32 inodes share each 4 KB block (``Ext3Params.inodes_per_block``)
— the meta-data locality that the paper credits for iSCSI's warm-cache wins.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["FileType", "Inode", "FileAttributes"]

POINTERS_PER_MAP_BLOCK = 1024  # 4 KB of 4-byte block pointers
DIRECT_BLOCKS = 12             # classic ext2/3 direct pointers


class FileType:
    """The three object kinds the filesystem stores."""

    REGULAR = "file"
    DIRECTORY = "dir"
    SYMLINK = "symlink"


class FileAttributes:
    """The stat-visible attribute set (what NFS GETATTR returns)."""

    __slots__ = ("ino", "itype", "mode", "uid", "gid", "nlink", "size",
                 "atime", "mtime", "ctime")

    def __init__(self, ino, itype, mode, uid, gid, nlink, size, atime, mtime, ctime):
        self.ino = ino
        self.itype = itype
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.nlink = nlink
        self.size = size
        self.atime = atime
        self.mtime = mtime
        self.ctime = ctime


class Inode:
    """One filesystem object: metadata plus block map or directory entries."""

    __slots__ = (
        "ino", "itype", "mode", "uid", "gid", "nlink", "size",
        "atime", "mtime", "ctime",
        "block_map", "map_blocks",
        "entries", "slots", "dir_blocks",
        "symlink_target", "generation", "last_child_dir_ino",
    )

    def __init__(self, ino: int, itype: str, mode: int = 0o644,
                 uid: int = 0, gid: int = 0, now: float = 0.0):
        self.ino = ino
        self.itype = itype
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.nlink = 2 if itype == FileType.DIRECTORY else 1
        self.size = 0
        self.atime = now
        self.mtime = now
        self.ctime = now
        # Regular files: logical index -> physical block, plus pointer blocks.
        self.block_map: List[int] = []
        self.map_blocks: List[int] = []
        # Directories: name -> ino, slot order (None = hole), content blocks.
        self.entries: Dict[str, int] = {}
        self.slots: List[Optional[str]] = []
        self.dir_blocks: List[int] = []
        self.symlink_target: Optional[str] = None
        # Allocation hint: where this directory's last child directory's
        # inode landed (sibling directories cluster; see Ext3Fs).
        self.last_child_dir_ino: Optional[int] = None
        # Bumped on every meta-data change; lets caches detect staleness.
        self.generation = 0

    @property
    def is_dir(self) -> bool:
        return self.itype == FileType.DIRECTORY

    @property
    def is_file(self) -> bool:
        return self.itype == FileType.REGULAR

    @property
    def is_symlink(self) -> bool:
        return self.itype == FileType.SYMLINK

    def touch_meta(self, now: float) -> None:
        """Record a meta-data change (ctime + generation)."""
        self.ctime = now
        self.generation += 1

    def attributes(self) -> FileAttributes:
        """Return this inode's stat-visible attribute record."""
        return FileAttributes(
            ino=self.ino, itype=self.itype, mode=self.mode, uid=self.uid,
            gid=self.gid, nlink=self.nlink, size=self.size,
            atime=self.atime, mtime=self.mtime, ctime=self.ctime,
        )

    # -- block map helpers (regular files) -------------------------------------

    def blocks_needed_for(self, size: int, block_size: int) -> int:
        """Number of blocks a file of ``size`` bytes occupies."""
        return (size + block_size - 1) // block_size

    def map_block_index(self, logical: int) -> Optional[int]:
        """Which pointer-block (by list index) covers ``logical``; None if direct."""
        if logical < DIRECT_BLOCKS:
            return None
        return (logical - DIRECT_BLOCKS) // POINTERS_PER_MAP_BLOCK

    def map_blocks_for_range(self, start: int, count: int) -> List[int]:
        """Physical pointer blocks needed to map logicals [start, start+count)."""
        indices = set()
        for logical in (start, start + count - 1):
            idx = self.map_block_index(logical)
            if idx is not None:
                indices.add(idx)
        if len(indices) == 2:
            lo = self.map_block_index(start)
            hi = self.map_block_index(start + count - 1)
            indices.update(range(lo, hi + 1))
        return [self.map_blocks[i] for i in sorted(indices) if i < len(self.map_blocks)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Inode %d %s size=%d nlink=%d>" % (
            self.ino, self.itype, self.size, self.nlink)
