"""Inode and block allocators.

Allocation policy is goal-directed first-fit, like ext3's: a file's next
block is placed right after its previous one when free, so sequentially
written files end up physically contiguous — which is what lets the flusher
coalesce their write-back into the large requests the paper observed.

The allocator also reports which *bitmap block* an allocation examined, so
the filesystem can charge the corresponding buffer-cache reads (cold-cache
creates touch the inode and block bitmaps: part of Table 2's iSCSI counts).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set

from .errors import NoSpace

__all__ = ["IdAllocator", "ExtentAllocator"]


class IdAllocator:
    """Allocates inode numbers from ``1..capacity``."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._next = 1
        self._freed: List[int] = []
        self._in_use: Set[int] = set()

    @property
    def used(self) -> int:
        return len(self._in_use)

    def allocate(self, goal: Optional[int] = None) -> int:
        """Allocate an id, preferring the first free id at/after ``goal``.

        The goal models ext2/3 placement policy: files near their parent
        directory's inode (meta-data locality), directories spread out.
        """
        if goal is not None:
            ident = goal
            limit = min(self.capacity, goal + 1024)
            while ident <= limit:
                if ident not in self._in_use:
                    self._in_use.add(ident)
                    if ident >= self._next:
                        self._next = max(self._next, ident + 1)
                    return ident
                ident += 1
        while self._freed:
            ident = heapq.heappop(self._freed)
            if ident not in self._in_use:
                self._in_use.add(ident)
                return ident
        while self._next <= self.capacity and self._next in self._in_use:
            self._next += 1
        if self._next <= self.capacity:
            ident = self._next
            self._next += 1
            self._in_use.add(ident)
            return ident
        raise NoSpace("out of inodes (%d in use)" % len(self._in_use))

    def allocate_specific(self, ident: int) -> int:
        """Claim a specific id (used when replaying delegated creates)."""
        if ident in self._in_use:
            raise ValueError("inode %d is already allocated" % ident)
        self._in_use.add(ident)
        return ident

    def reserve_range(self, count: int) -> List[int]:
        """Pre-claim ``count`` fresh ids (a delegation's inode grant)."""
        if self._next + count - 1 > self.capacity:
            raise NoSpace("cannot reserve %d inodes" % count)
        ids = list(range(self._next, self._next + count))
        self._next += count
        self._in_use.update(ids)
        return ids

    def free(self, ident: int) -> None:
        """Return an allocated id/block to the free pool."""
        if ident not in self._in_use:
            raise ValueError("inode %d is not allocated" % ident)
        self._in_use.remove(ident)
        heapq.heappush(self._freed, ident)

    def is_allocated(self, ident: int) -> bool:
        """True if the id/block is currently allocated."""
        return ident in self._in_use


class ExtentAllocator:
    """Allocates data blocks in ``[start, start+capacity)`` with goal hints."""

    def __init__(self, start: int, capacity: int):
        self.start = start
        self.capacity = capacity
        self._high_water = start
        self._freed: List[int] = []
        self._freed_set: Set[int] = set()
        self._in_use: Set[int] = set()

    @property
    def used(self) -> int:
        return len(self._in_use)

    @property
    def free_count(self) -> int:
        return self.capacity - len(self._in_use)

    def allocate(self, goal: Optional[int] = None) -> int:
        """Allocate one block, preferring the block right at ``goal``."""
        if goal is not None:
            candidate = goal
            if (
                self.start <= candidate < self.start + self.capacity
                and candidate not in self._in_use
            ):
                self._claim(candidate)
                return candidate
        while self._freed:
            block = heapq.heappop(self._freed)
            self._freed_set.discard(block)
            if block not in self._in_use:
                self._in_use.add(block)
                return block
        end = self.start + self.capacity
        while self._high_water < end and self._high_water in self._in_use:
            self._high_water += 1  # skip blocks claimed via goal hints
        if self._high_water < end:
            block = self._high_water
            self._high_water += 1
            self._in_use.add(block)
            return block
        raise NoSpace("out of data blocks (%d in use)" % len(self._in_use))

    def allocate_run(self, count: int, goal: Optional[int] = None) -> List[int]:
        """Allocate ``count`` blocks, contiguous when space allows."""
        blocks: List[int] = []
        next_goal = goal
        for _ in range(count):
            block = self.allocate(next_goal)
            blocks.append(block)
            next_goal = block + 1
        return blocks

    def free(self, block: int) -> None:
        """Return an allocated id/block to the free pool."""
        if block not in self._in_use:
            raise ValueError("block %d is not allocated" % block)
        self._in_use.remove(block)
        if block == self._high_water - 1:
            self._high_water -= 1
        elif block not in self._freed_set:
            heapq.heappush(self._freed, block)
            self._freed_set.add(block)

    def is_allocated(self, block: int) -> bool:
        """True if the id/block is currently allocated."""
        return block in self._in_use

    def _claim(self, block: int) -> None:
        self._in_use.add(block)
        if block == self._high_water:
            self._high_water += 1
