"""VFS layer: path resolution and the syscall-level interface.

:class:`Vfs` exposes the system calls of the paper's Table 1 over a local
:class:`~repro.fs.ext3.Ext3Fs`.  In the iSCSI setup this *is* the client's
interface (the filesystem runs at the client over the remote block device);
the NFS client implements the same call surface over RPCs, so workloads run
unchanged against either stack.

Path walking reads, per component, the directory's content block(s) to find
the entry and then the child's inode-table block — two (cached) block
accesses per level, which is where iSCSI's cold-cache depth sensitivity in
Figure 4 comes from.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from .errors import FileNotFound, InvalidArgument, NotADirectory
from .ext3 import Ext3Fs, ROOT_INO
from .inode import Inode

__all__ = ["Vfs"]

MAX_SYMLINK_DEPTH = 8

O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 0o100
O_TRUNC = 0o1000


class _OpenFile:
    __slots__ = ("inode", "offset")

    def __init__(self, inode: Inode):
        self.inode = inode
        self.offset = 0


class Vfs:
    """Path-based syscalls over a mounted filesystem."""

    def __init__(self, fs: Ext3Fs):
        self.fs = fs
        self.cwd_ino = ROOT_INO
        self._fds: Dict[int, _OpenFile] = {}
        self._next_fd = 3

    # -- path resolution -------------------------------------------------------------

    def _split(self, path: str) -> Tuple[int, List[str]]:
        if not path:
            raise InvalidArgument("empty path")
        start = ROOT_INO if path.startswith("/") else self.cwd_ino
        parts = [p for p in path.split("/") if p and p != "."]
        return start, parts

    def resolve(self, path: str, follow: bool = True, _depth: int = 0) -> Generator:
        """Coroutine: walk ``path`` to its inode."""
        if _depth > MAX_SYMLINK_DEPTH:
            raise InvalidArgument("too many levels of symbolic links")
        start, parts = self._split(path)
        inode = yield from self.fs.iget(start)
        for i, name in enumerate(parts):
            if not inode.is_dir:
                raise NotADirectory(name)
            ino = yield from self.fs.dir_lookup(inode, name)
            inode = yield from self.fs.iget(ino)
            last = i == len(parts) - 1
            if inode.is_symlink and (follow or not last):
                target = yield from self.fs.readlink(inode)
                rest = "/".join(parts[i + 1:])
                full = target + ("/" + rest if rest else "")
                # The remainder of the path was folded into `full`.
                inode = yield from self.resolve(full, follow, _depth + 1)
                return inode
        return inode

    def resolve_parent(self, path: str) -> Generator:
        """Coroutine: walk to the parent directory; returns (parent, name)."""
        start, parts = self._split(path)
        if not parts:
            raise InvalidArgument("path %r has no final component" % path)
        inode = yield from self.fs.iget(start)
        for name in parts[:-1]:
            if not inode.is_dir:
                raise NotADirectory(name)
            ino = yield from self.fs.dir_lookup(inode, name)
            inode = yield from self.fs.iget(ino)
        if not inode.is_dir:
            raise NotADirectory(parts[-1])
        return inode, parts[-1]

    # -- directory syscalls ------------------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755) -> Generator:
        """Coroutine: create a directory at ``path``."""
        parent, name = yield from self.resolve_parent(path)
        yield from self.fs.mkdir(parent, name, mode)
        return None

    def rmdir(self, path: str) -> Generator:
        """Coroutine: remove the empty directory at ``path``."""
        parent, name = yield from self.resolve_parent(path)
        yield from self.fs.rmdir(parent, name)
        return None

    def chdir(self, path: str) -> Generator:
        """Coroutine: change the working directory to ``path``."""
        inode = yield from self.resolve(path)
        if not inode.is_dir:
            raise NotADirectory(path)
        self.cwd_ino = inode.ino
        return None

    def readdir(self, path: str) -> Generator:
        """Coroutine: list the names in the directory at ``path``."""
        inode = yield from self.resolve(path)
        names = yield from self.fs.readdir(inode)
        return names

    def symlink(self, target: str, path: str) -> Generator:
        """Coroutine: create a symbolic link ``path`` -> ``target``."""
        parent, name = yield from self.resolve_parent(path)
        yield from self.fs.symlink(parent, name, target)
        return None

    def readlink(self, path: str) -> Generator:
        """Coroutine: return the target of the symlink at ``path``."""
        inode = yield from self.resolve(path, follow=False)
        value = yield from self.fs.readlink(inode)
        return value

    # -- file syscalls -------------------------------------------------------------------

    def creat(self, path: str, mode: int = 0o644) -> Generator:
        """Coroutine: create/truncate a file; returns a descriptor."""
        fd = yield from self.open(path, O_WRONLY | O_CREAT | O_TRUNC, mode)
        return fd

    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> Generator:
        """Coroutine: open ``path`` (O_CREAT/O_TRUNC honored); returns a descriptor."""
        parent, name = yield from self.resolve_parent(path)
        try:
            ino = yield from self.fs.dir_lookup(parent, name)
            inode = yield from self.fs.iget(ino)
            if inode.is_symlink:
                inode = yield from self.resolve(path)
            if flags & O_TRUNC and inode.is_file:
                yield from self.fs.truncate(inode, 0)
        except FileNotFound:
            if not flags & O_CREAT:
                raise
            inode = yield from self.fs.create(parent, name, mode)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _OpenFile(inode)
        return fd

    def close(self, fd: int) -> Generator:
        """Coroutine: release the descriptor (close-to-open semantics apply)."""
        if fd not in self._fds:
            raise InvalidArgument("bad fd %d" % fd)
        del self._fds[fd]
        return None
        yield  # pragma: no cover - makes close a coroutine like NfsClient's

    def unlink(self, path: str) -> Generator:
        """Coroutine: remove the file at ``path``."""
        parent, name = yield from self.resolve_parent(path)
        yield from self.fs.unlink(parent, name)
        return None

    def link(self, existing: str, new: str) -> Generator:
        """Coroutine: hard-link ``existing`` as ``new``."""
        target = yield from self.resolve(existing)
        parent, name = yield from self.resolve_parent(new)
        yield from self.fs.link(parent, name, target)
        return None

    def rename(self, old: str, new: str) -> Generator:
        """Coroutine: atomically rename ``old`` to ``new``."""
        src_parent, src_name = yield from self.resolve_parent(old)
        dst_parent, dst_name = yield from self.resolve_parent(new)
        yield from self.fs.rename(src_parent, src_name, dst_parent, dst_name)
        return None

    def truncate(self, path: str, size: int) -> Generator:
        """Coroutine: set the file at ``path`` to ``size`` bytes."""
        inode = yield from self.resolve(path)
        yield from self.fs.truncate(inode, size)
        return None

    def chmod(self, path: str, mode: int) -> Generator:
        """Coroutine: change the mode bits of ``path``."""
        inode = yield from self.resolve(path)
        yield from self.fs.setattr(inode, mode=mode)
        return None

    def chown(self, path: str, uid: int, gid: int = 0) -> Generator:
        """Coroutine: change the ownership of ``path``."""
        inode = yield from self.resolve(path)
        yield from self.fs.setattr(inode, uid=uid, gid=gid)
        return None

    def access(self, path: str, want: int = 4) -> Generator:
        """Coroutine: permission check on ``path``; returns a boolean."""
        inode = yield from self.resolve(path)
        return self.fs.access(inode, want)

    def stat(self, path: str) -> Generator:
        """Coroutine: return the file attributes of ``path``."""
        inode = yield from self.resolve(path)
        return self.fs.getattr(inode)

    def utime(self, path: str, atime: Optional[float] = None,
              mtime: Optional[float] = None) -> Generator:
        """Coroutine: set access/modification times of ``path``."""
        inode = yield from self.resolve(path)
        now = self.fs.sim.now
        yield from self.fs.setattr(
            inode,
            atime=atime if atime is not None else now,
            mtime=mtime if mtime is not None else now,
        )
        return None

    # -- data syscalls ---------------------------------------------------------------------

    def read(self, fd: int, size: int) -> Generator:
        """Coroutine: read up to ``size`` bytes at the descriptor's offset."""
        handle = self._handle(fd)
        done = yield from self.fs.read_file(handle.inode, handle.offset, size)
        handle.offset += done
        return done

    def write(self, fd: int, size: int) -> Generator:
        """Coroutine: write ``size`` bytes at the descriptor's offset."""
        handle = self._handle(fd)
        done = yield from self.fs.write_file(handle.inode, handle.offset, size)
        handle.offset += done
        return done

    def pread(self, fd: int, size: int, offset: int) -> Generator:
        """Coroutine: read ``size`` bytes at an explicit ``offset``."""
        handle = self._handle(fd)
        done = yield from self.fs.read_file(handle.inode, offset, size)
        return done

    def pwrite(self, fd: int, size: int, offset: int) -> Generator:
        """Coroutine: write ``size`` bytes at an explicit ``offset``."""
        handle = self._handle(fd)
        done = yield from self.fs.write_file(handle.inode, offset, size)
        return done

    def lseek(self, fd: int, offset: int) -> None:
        """Reposition the descriptor's offset."""
        self._handle(fd).offset = offset

    def fstat(self, fd: int) -> Generator:
        """Coroutine: return the open file's attributes."""
        return self.fs.getattr(self._handle(fd).inode)
        yield  # pragma: no cover - makes fstat a coroutine like NfsClient's

    def fsync(self, fd: int) -> Generator:
        """Coroutine: force the file's data and meta-data to stable storage."""
        handle = self._handle(fd)
        yield from self.fs.fsync(handle.inode)
        return None

    # -- maintenance --------------------------------------------------------------------------

    def quiesce(self) -> Generator:
        """Coroutine: settle all asynchronous write-back (journal + cache)."""
        yield from self.fs.quiesce()
        return None

    def drop_caches(self) -> Generator:
        """Coroutine: drain and drop caches but keep open file handles."""
        yield from self.fs.quiesce()
        self.fs.drop_caches()
        yield from self.fs.mount()
        return None

    def remount_cold(self) -> Generator:
        """Coroutine: quiesce, drop every cache, and re-mount (cold-cache protocol)."""
        yield from self.fs.remount_cold()
        self.cwd_ino = ROOT_INO
        self._fds.clear()
        return None

    def _handle(self, fd: int) -> _OpenFile:
        handle = self._fds.get(fd)
        if handle is None:
            raise InvalidArgument("bad fd %d" % fd)
        return handle
