"""ext3-like journaling filesystem substrate."""

from .alloc import ExtentAllocator, IdAllocator
from .errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    FsError,
    InvalidArgument,
    IsADirectory,
    NoSpace,
    NotADirectory,
    PermissionDenied,
)
from .ext3 import Ext3Fs, ROOT_INO
from .inode import FileAttributes, FileType, Inode
from .journal import Journal
from .layout import DiskLayout
from .vfs import Vfs

__all__ = [
    "DirectoryNotEmpty",
    "DiskLayout",
    "ExtentAllocator",
    "Ext3Fs",
    "FileAttributes",
    "FileExists",
    "FileNotFound",
    "FileType",
    "FsError",
    "IdAllocator",
    "Inode",
    "InvalidArgument",
    "IsADirectory",
    "Journal",
    "NoSpace",
    "NotADirectory",
    "PermissionDenied",
    "ROOT_INO",
    "Vfs",
]
