"""Filesystem error types (mirroring the POSIX errnos the syscalls raise)."""

from __future__ import annotations

__all__ = [
    "FsError",
    "FileNotFound",
    "FileExists",
    "NotADirectory",
    "IsADirectory",
    "DirectoryNotEmpty",
    "NoSpace",
    "PermissionDenied",
    "InvalidArgument",
]


class FsError(OSError):
    """Base class for simulated filesystem errors."""

    errno_name = "EIO"


class FileNotFound(FsError):
    """ENOENT: the path or inode does not exist."""

    errno_name = "ENOENT"


class FileExists(FsError):
    """EEXIST: the name is already taken."""

    errno_name = "EEXIST"


class NotADirectory(FsError):
    """ENOTDIR: a directory operation hit a non-directory."""

    errno_name = "ENOTDIR"


class IsADirectory(FsError):
    """EISDIR: a file operation hit a directory."""

    errno_name = "EISDIR"


class DirectoryNotEmpty(FsError):
    """ENOTEMPTY: rmdir of a non-empty directory."""

    errno_name = "ENOTEMPTY"


class NoSpace(FsError):
    """ENOSPC: out of inodes or data blocks."""

    errno_name = "ENOSPC"


class PermissionDenied(FsError):
    """EACCES: the mode bits forbid the access."""

    errno_name = "EACCES"


class InvalidArgument(FsError):
    """EINVAL: a malformed path, fd, or parameter."""

    errno_name = "EINVAL"
