"""A jbd-style journal (ext3 ordered-mode, simplified).

Meta-data updates join the *running transaction*.  Every
``journal_commit_interval`` seconds (the paper's 5 s) — or on fsync — the
transaction commits:

1. (ordered mode) data blocks dirtied under the transaction are flushed
   first, so committed meta-data never references unwritten data;
2. a descriptor block, the transaction's meta-data block images, and a
   commit block are written *sequentially* into the journal area, coalesced
   into writes of at most ``journal_segment_bytes``;
3. the in-place meta-data blocks stay dirty in the buffer cache and are
   checkpointed later by the normal flusher.

Step 2 is the paper's **update aggregation**: however many times a block
was modified during the interval, it is journaled once — Figure 3's
amortization curve is this mechanism.
"""

from __future__ import annotations

from typing import Generator, Optional, Set

from ..cache.block_cache import BlockCache
from ..core.params import Ext3Params
from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Simulator
from .layout import DiskLayout

__all__ = ["Journal"]


class Journal:
    """The running transaction plus the commit machinery."""

    def __init__(
        self,
        sim: Simulator,
        cache: BlockCache,
        layout: DiskLayout,
        params: Optional[Ext3Params] = None,
        name: str = "journal",
        tracer: Optional[NullTracer] = None,
        track: str = "server",
    ):
        self.sim = sim
        self.cache = cache
        self.layout = layout
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.track = track
        self.params = params if params is not None else Ext3Params()
        self.name = name
        self._metadata: Set[int] = set()
        self._ordered_data: Set[int] = set()
        self._head = 0  # journal-area write offset (wraps)
        self._stopped = False
        self._committing = False
        self.commits = 0
        self.blocks_journaled = 0
        # Blocks whose durable copy lives in the journal; written in place
        # only when journal space runs low (a checkpoint) or on unmount.
        self._checkpoint_pending: Set[int] = set()
        self.checkpoints = 0
        self._timer = sim.spawn(self._commit_loop(), name=name + ".commit")

    # -- transaction membership -----------------------------------------------------

    def add_metadata(self, block: int) -> None:
        """Join ``block`` to the running transaction (idempotent)."""
        self._metadata.add(block)

    def add_ordered_data(self, block: int) -> None:
        """Data block that must reach disk before the next commit."""
        self._ordered_data.add(block)

    def forget_data(self, blocks) -> None:
        """Drop freed blocks from all pending sets (file/directory deleted).

        A freed block needs neither ordered flushing, journaling, nor
        checkpointing — its contents are dead.
        """
        self._ordered_data.difference_update(blocks)
        self._metadata.difference_update(blocks)
        self._checkpoint_pending.difference_update(blocks)

    @property
    def pending_metadata(self) -> int:
        return len(self._metadata)

    # -- committing --------------------------------------------------------------------

    def commit(self) -> Generator:
        """Coroutine: commit the running transaction (no-op when empty)."""
        if self._committing:
            # A racing fsync piggybacks on the in-flight commit; simplest
            # faithful behavior is to wait out one commit interval's worth
            # of progress by re-checking after the flush completes.
            return None
        if not self._metadata and not self._ordered_data:
            return None
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin_span(
                "journal.commit", cat="journal", track=self.track,
                metadata=len(self._metadata), ordered=len(self._ordered_data),
            )
        self._committing = True
        try:
            metadata, self._metadata = sorted(self._metadata), set()
            ordered, self._ordered_data = self._ordered_data, set()
            if ordered:
                yield from self.cache.flush(ordered)
            if metadata:
                # Descriptor + block images in one sequential write, then
                # the commit record as a separate barrier write (ext3's
                # ordering guarantee: the commit record must not be
                # reordered before the blocks it commits).
                yield from self._write_journal(len(metadata) + 1)
                yield from self._write_journal(1)
                self.blocks_journaled += len(metadata)
                # The journal now holds the durable copies: the in-place
                # buffers stop being the flusher's problem and await a
                # checkpoint instead.
                self.cache.mark_clean(metadata)
                self._checkpoint_pending.update(metadata)
            self.commits += 1
        finally:
            self._committing = False
            if span is not None:
                self.tracer.end_span(span)
        if len(self._checkpoint_pending) * 3 > self.layout.journal_blocks:
            yield from self.checkpoint()
        return None

    def checkpoint(self) -> Generator:
        """Coroutine: write journaled blocks in place, reclaiming journal space."""
        blocks = sorted(self._checkpoint_pending)
        self._checkpoint_pending.clear()
        if not blocks:
            return None
        if self.tracer.enabled:
            result = yield from self.tracer.wrap(
                "journal.checkpoint", self._checkpoint_runs(blocks),
                cat="journal", track=self.track, blocks=len(blocks),
            )
            return result
        yield from self._checkpoint_runs(blocks)
        return None

    def _checkpoint_runs(self, blocks) -> Generator:
        self.checkpoints += 1
        segment = max(1, self.params.journal_segment_bytes // self.params.block_size)
        run_start: int = blocks[0]
        run_len = 1
        for block in blocks[1:]:
            if block == run_start + run_len and run_len < segment:
                run_len += 1
            else:
                yield from self.cache.write_through(run_start, run_len)
                run_start, run_len = block, 1
        yield from self.cache.write_through(run_start, run_len)
        return None

    def _write_journal(self, nblocks: int) -> Generator:
        """Sequential journal-area writes, segmented by the coalescing cap."""
        segment_blocks = max(
            1, self.params.journal_segment_bytes // self.params.block_size
        )
        remaining = nblocks
        while remaining > 0:
            chunk = min(remaining, segment_blocks)
            start = self.layout.journal_block(self._head)
            # Clip at the wrap point so each write is physically contiguous.
            to_region_end = self.layout.journal_blocks - (self._head % self.layout.journal_blocks)
            chunk = min(chunk, to_region_end)
            yield from self.cache.write_through(start, chunk)
            self._head += chunk
            remaining -= chunk
        return None

    def _commit_loop(self) -> Generator:
        interval = self.params.journal_commit_interval
        while not self._stopped:
            yield self.sim.timeout(interval)
            if self._stopped:
                return
            yield from self.commit()

    def stop(self) -> None:
        """Stop the background timer (used by unmount)."""
        self._stopped = True
