"""An ext3-like journaling filesystem over a block device.

This is the filesystem of the paper's testbed, at the granularity its
analysis needs.  It runs in two places:

* at the **server** for the NFS setups (exported by the NFS server), and
* at the **client** for the iSCSI setup (over the initiator's remote
  block device) — the placement difference of Figure 1.

Faithfully modeled mechanisms:

* block-granular meta-data: 32 inodes per inode-table block, 4 KB
  directory blocks, block/inode bitmaps — reading one inode caches its 31
  neighbours (meta-data locality);
* path walks read two blocks per component when cold: the directory's
  inode-table block and its content block (Section 4.3's "two extra
  messages per level of depth");
* meta-data updates dirty buffer-cache blocks and join the running journal
  transaction; commits every 5 s aggregate them (Figure 3);
* file data is written back asynchronously and coalesced by the flusher;
* goal-directed allocation keeps sequential files physically contiguous;
* optional sequential read-ahead pipelines block reads without changing
  the number of commands issued.

File *contents* are not stored — only metadata and block placement; every
operation's cost is the block traffic it generates.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..cache.block_cache import BlockCache
from ..core.params import CpuParams, Ext3Params, TestbedParams
from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Resource, Simulator
from ..storage.blockdev import BlockDevice
from .alloc import ExtentAllocator, IdAllocator
from .errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from .inode import DIRECT_BLOCKS, FileAttributes, FileType, Inode, POINTERS_PER_MAP_BLOCK
from .journal import Journal
from .layout import DiskLayout

__all__ = ["Ext3Fs"]

ROOT_INO = 1


class Ext3Fs:
    """The filesystem instance (one per mounted volume)."""

    def __init__(
        self,
        sim: Simulator,
        device: BlockDevice,
        cache_bytes: int,
        params: Optional[Ext3Params] = None,
        cpu: Optional[Resource] = None,
        cpu_params: Optional[CpuParams] = None,
        max_coalesced_write: int = 128 * 1024,
        readahead_blocks: int = 0,
        testbed: Optional[TestbedParams] = None,
        name: str = "ext3",
        tracer: Optional[NullTracer] = None,
        track: str = "server",
    ):
        self.sim = sim
        self.device = device
        self.params = params if params is not None else Ext3Params()
        self.cpu = cpu
        self.cpu_params = cpu_params if cpu_params is not None else CpuParams()
        self.readahead_blocks = readahead_blocks
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.track = track
        self.layout = DiskLayout(device.nblocks, params=self.params)
        cache_params = testbed.cache if testbed is not None else None
        self.cache = BlockCache(
            sim,
            device,
            capacity_bytes=cache_bytes,
            params=cache_params,
            max_coalesced_bytes=max_coalesced_write,
            name=name + ".cache",
            tracer=self.tracer,
            track=track,
        )
        self.journal = Journal(sim, self.cache, self.layout, self.params,
                               name=name + ".jbd", tracer=self.tracer,
                               track=track)
        self.inode_alloc = IdAllocator(self.layout.max_inodes)
        self.block_alloc = ExtentAllocator(self.layout.data_start, self.layout.data_blocks)
        self.inodes: Dict[int, Inode] = {}
        self._last_read_logical: Dict[int, int] = {}  # readahead state
        self._next_dir_goal = 1 + self.params.inodes_per_block
        self.mounted = False
        self.mkfs()

    # -- lifecycle ----------------------------------------------------------------

    def mkfs(self) -> None:
        """Initialize an empty filesystem image (offline; no I/O charged)."""
        self.inodes.clear()
        root = Inode(ROOT_INO, FileType.DIRECTORY, mode=0o755, now=self.sim.now)
        self.inodes[ROOT_INO] = root
        self.inode_alloc.allocate()  # ino 1
        root.dir_blocks.append(self.block_alloc.allocate())
        root.size = self.params.block_size

    def mount(self) -> Generator:
        """Coroutine: bring the volume online.

        Reads the superblock and group descriptors; the root inode is
        *pinned* in core for the life of the mount (so touching it never
        charges I/O) — exactly the state a just-mounted ext3 is in, which
        is why the paper's cold-cache numbers do not charge for it.
        """
        yield from self.cache.read(self.layout.superblock)
        yield from self.cache.read(self.layout.group_desc)
        self.mounted = True
        return None

    def unmount(self) -> Generator:
        """Coroutine: quiesce, checkpoint the journal, and detach."""
        yield from self.quiesce()
        yield from self.journal.checkpoint()
        self.mounted = False
        return None

    def quiesce(self) -> Generator:
        """Coroutine: force a journal commit and flush all dirty blocks."""
        yield from self.journal.commit()
        yield from self.cache.sync()
        return None

    def drop_caches(self) -> None:
        """Cold-cache reset: empty the buffer cache (disk state persists)."""
        self.cache.invalidate_all()
        self._last_read_logical.clear()

    def remount_cold(self) -> Generator:
        """Coroutine: the paper's cold-cache protocol — flush, drop, re-mount."""
        yield from self.quiesce()
        self.drop_caches()
        yield from self.mount()
        return None

    # -- inode access ----------------------------------------------------------------

    def iget(self, ino: int) -> Generator:
        """Coroutine: load inode ``ino`` (reads its inode-table block)."""
        inode = self.inodes.get(ino)
        if inode is None:
            raise FileNotFound("inode %d" % ino)
        yield from self._charge(self.cpu_params.fs_block_op)
        if ino != ROOT_INO:  # the root inode is pinned by the mount
            yield from self.cache.read(self.layout.inode_table_block(ino))
        return inode

    def _dirty_inode(self, inode: Inode) -> Generator:
        block = self.layout.inode_table_block(inode.ino)
        yield from self.cache.write(block)
        self.journal.add_metadata(block)
        return None

    # -- directory internals ------------------------------------------------------------

    def _entry_block_index(self, dir_inode: Inode, name: str) -> int:
        slot = dir_inode.slots.index(name)
        return slot // self.params.dir_entries_per_block

    def dir_lookup(self, dir_inode: Inode, name: str) -> Generator:
        """Coroutine: find ``name``; returns the child ino or raises.

        Scans content blocks from the start, as the real readdir-based
        lookup does: a hit reads blocks up to the entry's; a miss reads
        them all.
        """
        if not dir_inode.is_dir:
            raise NotADirectory("inode %d" % dir_inode.ino)
        yield from self._charge(self.cpu_params.vfs_op)
        ino = dir_inode.entries.get(name)
        if ino is None:
            yield from self._read_dir_blocks(dir_inode, len(dir_inode.dir_blocks))
            raise FileNotFound(name)
        yield from self._read_dir_blocks(
            dir_inode, self._entry_block_index(dir_inode, name) + 1
        )
        return ino

    def _read_dir_blocks(self, dir_inode: Inode, nblocks: int) -> Generator:
        for block in dir_inode.dir_blocks[:max(1, nblocks)]:
            yield from self.cache.read(block)
        return None

    def _dir_add_entry(self, dir_inode: Inode, name: str, ino: int) -> Generator:
        per_block = self.params.dir_entries_per_block
        try:
            slot = dir_inode.slots.index(None)
        except ValueError:
            slot = len(dir_inode.slots)
            dir_inode.slots.append(None)
        block_index = slot // per_block
        if block_index >= len(dir_inode.dir_blocks):
            goal = dir_inode.dir_blocks[-1] + 1 if dir_inode.dir_blocks else None
            new_block = yield from self._allocate_blocks(1, goal)
            dir_inode.dir_blocks.append(new_block[0])
            dir_inode.size = len(dir_inode.dir_blocks) * self.params.block_size
        content_block = dir_inode.dir_blocks[block_index]
        yield from self.cache.read(content_block)
        dir_inode.slots[slot] = name
        dir_inode.entries[name] = ino
        yield from self.cache.write(content_block)
        self.journal.add_metadata(content_block)
        dir_inode.mtime = self.sim.now
        dir_inode.touch_meta(self.sim.now)
        yield from self._dirty_inode(dir_inode)
        return None

    def _dir_remove_entry(self, dir_inode: Inode, name: str) -> Generator:
        slot = dir_inode.slots.index(name)
        content_block = dir_inode.dir_blocks[slot // self.params.dir_entries_per_block]
        yield from self.cache.read(content_block)
        dir_inode.slots[slot] = None
        del dir_inode.entries[name]
        yield from self.cache.write(content_block)
        self.journal.add_metadata(content_block)
        dir_inode.mtime = self.sim.now
        dir_inode.touch_meta(self.sim.now)
        yield from self._dirty_inode(dir_inode)
        return None

    # -- allocation internals -------------------------------------------------------------

    def _allocate_blocks(self, count: int, goal: Optional[int] = None) -> Generator:
        """Coroutine: allocate data blocks, charging bitmap-block traffic."""
        blocks = self.block_alloc.allocate_run(count, goal)
        bitmap_blocks = sorted({self.layout.block_bitmap_block(b) for b in blocks})
        for bitmap in bitmap_blocks:
            yield from self.cache.read(bitmap)
            yield from self.cache.write(bitmap)
            self.journal.add_metadata(bitmap)
        return blocks

    def _free_blocks(self, blocks: List[int]) -> Generator:
        bitmap_blocks = sorted({self.layout.block_bitmap_block(b) for b in blocks})
        # Freed blocks' dirty buffers are dropped, not written back.
        self.cache.discard(blocks)
        self.journal.forget_data(blocks)
        for block in blocks:
            self.block_alloc.free(block)
        for bitmap in bitmap_blocks:
            yield from self.cache.read(bitmap)
            yield from self.cache.write(bitmap)
            self.journal.add_metadata(bitmap)
        return None

    def _allocate_inode(
        self,
        itype: str,
        mode: int,
        ino: Optional[int] = None,
        parent: Optional[Inode] = None,
    ) -> Generator:
        if ino is None:
            # ext2/3 placement policy: directories spread across the inode
            # space (each tends to start a fresh inode-table block); files
            # cluster right after their parent directory's inode — the
            # meta-data locality behind Table 3's warm-cache iSCSI wins.
            if itype == FileType.DIRECTORY:
                # Orlov-style: a parent's first child directory starts a
                # fresh inode-table block; later siblings cluster with it.
                sibling = parent.last_child_dir_ino if parent is not None else None
                if sibling is not None:
                    goal = sibling + 1
                else:
                    goal = self._next_dir_goal
                    self._next_dir_goal += self.params.inodes_per_block
                    if self._next_dir_goal > self.layout.max_inodes:
                        self._next_dir_goal = 2
                ino = self.inode_alloc.allocate(goal)
                if parent is not None:
                    parent.last_child_dir_ino = ino
            else:
                goal = parent.ino + 1 if parent is not None else None
                ino = self.inode_alloc.allocate(goal)
        # else: the caller holds a reservation for this ino (delegated create).
        bitmap = self.layout.inode_bitmap_block(ino)
        yield from self.cache.read(bitmap)
        yield from self.cache.write(bitmap)
        self.journal.add_metadata(bitmap)
        inode = Inode(ino, itype, mode=mode, now=self.sim.now)
        self.inodes[ino] = inode
        # The new inode shares its table block with neighbours: read-modify.
        table_block = self.layout.inode_table_block(ino)
        yield from self.cache.read(table_block)
        yield from self._dirty_inode(inode)
        return inode

    def _free_inode(self, inode: Inode) -> Generator:
        bitmap = self.layout.inode_bitmap_block(inode.ino)
        yield from self.cache.read(bitmap)
        yield from self.cache.write(bitmap)
        self.journal.add_metadata(bitmap)
        self.inode_alloc.free(inode.ino)
        del self.inodes[inode.ino]
        yield from self._dirty_inode(inode)
        return None

    # -- namespace operations ----------------------------------------------------------------

    def create(self, dir_inode: Inode, name: str, mode: int = 0o644,
               ino: Optional[int] = None) -> Generator:
        """Coroutine: create a regular file in ``dir_inode``."""
        yield from self._ensure_absent(dir_inode, name)
        inode = yield from self._allocate_inode(
            FileType.REGULAR, mode, ino=ino, parent=dir_inode
        )
        yield from self._dir_add_entry(dir_inode, name, inode.ino)
        return inode

    def mkdir(self, dir_inode: Inode, name: str, mode: int = 0o755,
              ino: Optional[int] = None) -> Generator:
        """Coroutine: create a directory (allocates its first content block)."""
        yield from self._ensure_absent(dir_inode, name)
        inode = yield from self._allocate_inode(
            FileType.DIRECTORY, mode, ino=ino, parent=dir_inode
        )
        first = yield from self._allocate_blocks(1)
        inode.dir_blocks.append(first[0])
        inode.size = self.params.block_size
        yield from self.cache.write(first[0])   # "." and ".." entries
        self.journal.add_metadata(first[0])
        yield from self._dir_add_entry(dir_inode, name, inode.ino)
        dir_inode.nlink += 1                     # the child's ".."
        yield from self._dirty_inode(dir_inode)
        return inode

    def symlink(self, dir_inode: Inode, name: str, target: str) -> Generator:
        """Coroutine: create a (fast) symlink — target stored in the inode."""
        yield from self._ensure_absent(dir_inode, name)
        inode = yield from self._allocate_inode(
            FileType.SYMLINK, 0o777, parent=dir_inode
        )
        inode.symlink_target = target
        inode.size = len(target)
        yield from self._dirty_inode(inode)
        yield from self._dir_add_entry(dir_inode, name, inode.ino)
        return inode

    def readlink(self, inode: Inode) -> Generator:
        """Coroutine: return the target of the symlink at ``path``."""
        if not inode.is_symlink:
            raise InvalidArgument("inode %d is not a symlink" % inode.ino)
        yield from self._update_atime(inode)
        return inode.symlink_target

    def link(self, dir_inode: Inode, name: str, target: Inode) -> Generator:
        """Coroutine: hard-link ``target`` as ``name`` in ``dir_inode``."""
        if target.is_dir:
            raise IsADirectory("cannot hard-link a directory")
        yield from self._ensure_absent(dir_inode, name)
        target.nlink += 1
        target.touch_meta(self.sim.now)
        yield from self._dirty_inode(target)
        yield from self._dir_add_entry(dir_inode, name, target.ino)
        return None

    def unlink(self, dir_inode: Inode, name: str) -> Generator:
        """Coroutine: remove a non-directory entry; frees at nlink == 0."""
        ino = yield from self.dir_lookup(dir_inode, name)
        inode = yield from self.iget(ino)
        if inode.is_dir:
            raise IsADirectory(name)
        yield from self._dir_remove_entry(dir_inode, name)
        inode.nlink -= 1
        inode.touch_meta(self.sim.now)
        if inode.nlink == 0:
            if inode.block_map or inode.map_blocks:
                doomed = [b for b in inode.block_map if b >= 0]
                doomed += inode.map_blocks
                yield from self._free_blocks(doomed)
            yield from self._free_inode(inode)
        else:
            yield from self._dirty_inode(inode)
        return None

    def rmdir(self, dir_inode: Inode, name: str) -> Generator:
        """Coroutine: remove an empty directory."""
        ino = yield from self.dir_lookup(dir_inode, name)
        inode = yield from self.iget(ino)
        if not inode.is_dir:
            raise NotADirectory(name)
        yield from self._read_dir_blocks(inode, len(inode.dir_blocks))  # empty?
        if inode.entries:
            raise DirectoryNotEmpty(name)
        yield from self._dir_remove_entry(dir_inode, name)
        yield from self._free_blocks(list(inode.dir_blocks))
        yield from self._free_inode(inode)
        dir_inode.nlink -= 1
        yield from self._dirty_inode(dir_inode)
        return None

    def rename(
        self,
        src_dir: Inode,
        src_name: str,
        dst_dir: Inode,
        dst_name: str,
    ) -> Generator:
        """Coroutine: atomic rename (replaces an existing target)."""
        ino = yield from self.dir_lookup(src_dir, src_name)
        inode = yield from self.iget(ino)
        existing = dst_dir.entries.get(dst_name)
        if existing is not None:
            if inode.is_dir:
                raise FileExists(dst_name)
            yield from self.unlink(dst_dir, dst_name)
        yield from self._dir_remove_entry(src_dir, src_name)
        yield from self._dir_add_entry(dst_dir, dst_name, ino)
        if inode.is_dir and src_dir.ino != dst_dir.ino:
            src_dir.nlink -= 1
            dst_dir.nlink += 1
            yield from self._dirty_inode(src_dir)
            yield from self._dirty_inode(dst_dir)
        inode.touch_meta(self.sim.now)
        yield from self._dirty_inode(inode)
        return None

    def readdir(self, dir_inode: Inode) -> Generator:
        """Coroutine: list entry names (reads all content blocks + atime)."""
        if not dir_inode.is_dir:
            raise NotADirectory("inode %d" % dir_inode.ino)
        yield from self._read_dir_blocks(dir_inode, len(dir_inode.dir_blocks))
        yield from self._update_atime(dir_inode)
        return sorted(dir_inode.entries)

    # -- attributes ---------------------------------------------------------------------------

    def getattr(self, inode: Inode) -> FileAttributes:
        """Return the stat-visible attributes of ``inode``."""
        return inode.attributes()

    def setattr(
        self,
        inode: Inode,
        mode: Optional[int] = None,
        uid: Optional[int] = None,
        gid: Optional[int] = None,
        size: Optional[int] = None,
        atime: Optional[float] = None,
        mtime: Optional[float] = None,
    ) -> Generator:
        """Coroutine: chmod/chown/utime/truncate-style attribute updates."""
        if size is not None:
            yield from self.truncate(inode, size)
        if mode is not None:
            inode.mode = mode
        if uid is not None:
            inode.uid = uid
        if gid is not None:
            inode.gid = gid
        if atime is not None:
            inode.atime = atime
        if mtime is not None:
            inode.mtime = mtime
        inode.touch_meta(self.sim.now)
        yield from self._dirty_inode(inode)
        return None

    def access(self, inode: Inode, want: int, uid: int = 0) -> bool:
        """Permission check (pure; root always passes)."""
        if uid == 0:
            return True
        mode = inode.mode
        if uid == inode.uid:
            mode >>= 6
        granted = mode & 0o7
        return (granted & want) == want

    def truncate(self, inode: Inode, size: int) -> Generator:
        """Coroutine: grow or shrink a regular file."""
        if not inode.is_file:
            raise IsADirectory("truncate on inode %d" % inode.ino)
        bs = self.params.block_size
        new_blocks = (size + bs - 1) // bs
        old_blocks = len(inode.block_map)
        if new_blocks < old_blocks:
            doomed = inode.block_map[new_blocks:]
            del inode.block_map[new_blocks:]
            doomed = [b for b in doomed if b >= 0]
            needed_maps = self._map_blocks_needed(new_blocks)
            if needed_maps < len(inode.map_blocks):
                doomed += inode.map_blocks[needed_maps:]
                del inode.map_blocks[needed_maps:]
            if doomed:
                yield from self._free_blocks(doomed)
        inode.size = size
        inode.mtime = self.sim.now
        inode.touch_meta(self.sim.now)
        yield from self._dirty_inode(inode)
        return None

    # -- file data -----------------------------------------------------------------------------

    def read_file(self, inode: Inode, offset: int, length: int) -> Generator:
        """Coroutine: read ``length`` bytes at ``offset``; returns bytes read."""
        if not inode.is_file:
            raise IsADirectory("read on inode %d" % inode.ino)
        if offset >= inode.size:
            return 0
        length = min(length, inode.size - offset)
        if length <= 0:
            return 0
        yield from self._charge(
            self.cpu_params.vfs_op + self.cpu_params.copy_per_byte * length
        )
        bs = self.params.block_size
        first = offset // bs
        last = (offset + length - 1) // bs
        yield from self._read_map_blocks(inode, first, last - first + 1)
        physical = [inode.block_map[i] for i in range(first, last + 1)]
        for run_start, run_len in _physical_runs(physical):
            yield from self.cache.read_range(run_start, run_len)
        self._maybe_readahead(inode, first, last)
        if self.params.atime_updates:
            yield from self._update_atime(inode)
        return length

    def write_file(self, inode: Inode, offset: int, length: int) -> Generator:
        """Coroutine: write ``length`` bytes at ``offset`` (allocating)."""
        if not inode.is_file:
            raise IsADirectory("write on inode %d" % inode.ino)
        if length <= 0:
            return 0
        yield from self._charge(
            self.cpu_params.vfs_op + self.cpu_params.copy_per_byte * length
        )
        bs = self.params.block_size
        first = offset // bs
        last = (offset + length - 1) // bs
        yield from self._ensure_mapped(inode, first, last)
        physical = [inode.block_map[i] for i in range(first, last + 1)]
        for run_start, run_len in _physical_runs(physical):
            yield from self.cache.write_range(run_start, run_len)
            for block in range(run_start, run_start + run_len):
                self.journal.add_ordered_data(block)
        if offset + length > inode.size:
            inode.size = offset + length
        inode.mtime = self.sim.now
        inode.touch_meta(self.sim.now)
        yield from self._dirty_inode(inode)
        return length

    def fsync(self, inode: Inode) -> Generator:
        """Coroutine: commit the journal and flush the file's dirty data."""
        yield from self.journal.commit()
        blocks = [b for b in inode.block_map if b >= 0]
        yield from self.cache.flush(blocks)
        return None

    # -- internals -----------------------------------------------------------------------------

    def _ensure_absent(self, dir_inode: Inode, name: str) -> Generator:
        try:
            yield from self.dir_lookup(dir_inode, name)
        except FileNotFound:
            return None
        raise FileExists(name)

    def _map_blocks_needed(self, nblocks: int) -> int:
        if nblocks <= DIRECT_BLOCKS:
            return 0
        return -(-(nblocks - DIRECT_BLOCKS) // POINTERS_PER_MAP_BLOCK)

    def _read_map_blocks(self, inode: Inode, first: int, count: int) -> Generator:
        for block in inode.map_blocks_for_range(first, count):
            yield from self.cache.read(block)
        return None

    def _ensure_mapped(self, inode: Inode, first: int, last: int) -> Generator:
        """Allocate data blocks (and pointer blocks) for logicals [first, last]."""
        # Extend the map with holes up to `last`.
        while len(inode.block_map) <= last:
            inode.block_map.append(-1)
        needed_maps = self._map_blocks_needed(last + 1)
        if needed_maps > len(inode.map_blocks):
            count = needed_maps - len(inode.map_blocks)
            goal = inode.map_blocks[-1] + 1 if inode.map_blocks else None
            new_maps = yield from self._allocate_blocks(count, goal)
            inode.map_blocks.extend(new_maps)
            for block in new_maps:
                yield from self.cache.write(block)
                self.journal.add_metadata(block)
        missing = [i for i in range(first, last + 1) if inode.block_map[i] < 0]
        if missing:
            goal = None
            before = missing[0] - 1
            if before >= 0 and before < len(inode.block_map) and inode.block_map[before] >= 0:
                goal = inode.block_map[before] + 1
            new_blocks = yield from self._allocate_blocks(len(missing), goal)
            for logical, physical in zip(missing, new_blocks):
                inode.block_map[logical] = physical
            # Updated pointer blocks are meta-data.
            touched = inode.map_blocks_for_range(missing[0], missing[-1] - missing[0] + 1)
            for block in touched:
                yield from self.cache.write(block)
                self.journal.add_metadata(block)
        return None

    def _maybe_readahead(self, inode: Inode, first: int, last: int) -> None:
        """Pipelined sequential prefetch: issue, do not wait."""
        if self.readahead_blocks <= 0:
            return
        previous = self._last_read_logical.get(inode.ino)
        self._last_read_logical[inode.ino] = last
        if previous is None or first != previous + 1:
            return  # not sequential
        limit = min(last + self.readahead_blocks, len(inode.block_map) - 1)
        ahead = [
            inode.block_map[i]
            for i in range(last + 1, limit + 1)
            if inode.block_map[i] >= 0 and not self.cache.contains(inode.block_map[i])
        ]
        for run_start, run_len in _physical_runs(ahead):
            self.sim.spawn(
                self.cache.read_range(run_start, run_len),
                name=self.name + ".readahead",
            )

    def _update_atime(self, inode: Inode) -> Generator:
        if not self.params.atime_updates:
            return None
        inode.atime = self.sim.now
        yield from self._dirty_inode(inode)
        return None

    def _charge(self, cost: float) -> Generator:
        if self.cpu is not None and cost > 0:
            yield from self.cpu.use(cost)
        return None


def _physical_runs(blocks: List[int]) -> List[Tuple[int, int]]:
    """Maximal contiguous runs of physical block numbers, in order."""
    runs: List[Tuple[int, int]] = []
    for block in blocks:
        if block < 0:
            continue
        if runs and runs[-1][0] + runs[-1][1] == block:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((block, 1))
    return runs
