"""On-disk layout: where each kind of block lives.

The layout is a simplified ext3 image:

    [ superblock | group descriptors | inode bitmap | block bitmap |
      inode table | journal | data ... ]

Only the *addresses* matter — the buffer cache and the message counters see
block numbers, and distinct meta-data structures landing in distinct blocks
is exactly what makes cold-cache iSCSI operations cost several block reads
(Table 2) while co-located inodes make warm operations free (Table 3).
"""

from __future__ import annotations

from ..core.params import Ext3Params

__all__ = ["DiskLayout"]

BITS_PER_BITMAP_BLOCK = 32 * 1024  # 4 KB of bits


class DiskLayout:
    """Block-address arithmetic for the filesystem image."""

    def __init__(
        self,
        total_blocks: int,
        max_inodes: int = 65536,
        journal_blocks: int = 8192,
        params: Ext3Params = None,
    ):
        self.params = params if params is not None else Ext3Params()
        self.total_blocks = total_blocks
        self.max_inodes = max_inodes
        self.journal_blocks = journal_blocks

        self.superblock = 0
        self.group_desc = 1
        self.inode_bitmap_start = 2
        self.inode_bitmap_blocks = _ceil_div(max_inodes, BITS_PER_BITMAP_BLOCK)
        self.block_bitmap_start = self.inode_bitmap_start + self.inode_bitmap_blocks
        self.block_bitmap_blocks = _ceil_div(total_blocks, BITS_PER_BITMAP_BLOCK)
        self.inode_table_start = self.block_bitmap_start + self.block_bitmap_blocks
        self.inode_table_blocks = _ceil_div(max_inodes, self.params.inodes_per_block)
        self.journal_start = self.inode_table_start + self.inode_table_blocks
        self.data_start = self.journal_start + journal_blocks
        if self.data_start >= total_blocks:
            raise ValueError(
                "layout does not fit: meta-data needs %d blocks of %d"
                % (self.data_start, total_blocks)
            )

    @property
    def data_blocks(self) -> int:
        return self.total_blocks - self.data_start

    def inode_table_block(self, ino: int) -> int:
        """The inode-table block holding inode ``ino``."""
        if not 1 <= ino <= self.max_inodes:
            raise ValueError("inode %d out of range" % ino)
        return self.inode_table_start + (ino - 1) // self.params.inodes_per_block

    def inode_bitmap_block(self, ino: int) -> int:
        """The inode-bitmap block covering inode ``ino``."""
        if not 1 <= ino <= self.max_inodes:
            raise ValueError("inode %d out of range" % ino)
        return self.inode_bitmap_start + (ino - 1) // BITS_PER_BITMAP_BLOCK

    def block_bitmap_block(self, block: int) -> int:
        """The block-bitmap block covering ``block``."""
        if not 0 <= block < self.total_blocks:
            raise ValueError("block %d out of range" % block)
        return self.block_bitmap_start + block // BITS_PER_BITMAP_BLOCK

    def journal_block(self, offset: int) -> int:
        """The physical block for journal offset ``offset`` (wrapping)."""
        return self.journal_start + offset % self.journal_blocks


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)
