"""SCSI command vocabulary for the iSCSI transport."""

from __future__ import annotations

__all__ = ["READ_10", "WRITE_10", "SYNCHRONIZE_CACHE", "REPORT_CAPACITY",
           "LOGIN", "COMMAND_HEADER_BYTES"]

READ_10 = "SCSI_READ"
WRITE_10 = "SCSI_WRITE"
SYNCHRONIZE_CACHE = "SCSI_SYNC"
REPORT_CAPACITY = "SCSI_CAPACITY"
LOGIN = "ISCSI_LOGIN"  # session (re-)establishment exchange

COMMAND_HEADER_BYTES = 48  # iSCSI basic header segment
