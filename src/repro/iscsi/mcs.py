"""MC/S — multiple connections per iSCSI session (RFC 3720 Section 3.4.3).

The axis studied by "Performance Evaluation of Multiple TCP connections
in iSCSI" (PAPERS.md): one session fans its command PDUs over several
TCP connections to overcome per-connection bottlenecks, while the
protocol still guarantees commands *complete* in CmdSN order at the
initiator.

:class:`McsSession` implements exactly those two mechanisms over the
repo's existing RPC peers:

* **per-connection PDU scheduling** — every command allocates the next
  CmdSN and is assigned a connection by the session policy:
  ``"rr"`` (round-robin by CmdSN) or ``"qdepth"`` (the connection with
  the fewest in-flight commands, ties broken by the lowest connection
  id so scheduling stays deterministic);
* **in-order completion** — a command whose SCSI response arrives while
  a lower CmdSN is still outstanding parks on an event and is released
  only when every earlier command has completed, i.e. responses may
  arrive in any order (reorder/loss fault plans exercise this) but
  ``call`` returns strictly in CmdSN order.

A session over exactly one connection degenerates to a pass-through of
``rpcs[0].call`` plus counter updates; the stack builder keeps the
``connections=1`` configuration on the original direct-call path
anyway, so existing outputs stay byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Sequence

__all__ = ["McsSession", "MCS_POLICIES"]

MCS_POLICIES = ("rr", "qdepth")

# Completion-order evidence kept for tests/diagnostics; bounded so a
# long farm run cannot grow the session without limit.
_ORDER_LOG_LIMIT = 100_000


class McsSession:
    """One iSCSI session multiplexed over ``len(rpcs)`` connections."""

    def __init__(self, sim, rpcs: Sequence[Any], policy: str = "rr",
                 name: str = "iscsi-session"):
        if not rpcs:
            raise ValueError("an MC/S session needs at least one connection")
        if policy not in MCS_POLICIES:
            raise ValueError("unknown MC/S policy %r; one of %s"
                             % (policy, MCS_POLICIES))
        self.sim = sim
        self.rpcs = list(rpcs)
        self.policy = policy
        self.name = name
        self._cmdsn = 0           # next CmdSN to allocate
        self._next_done = 0       # lowest CmdSN not yet completed
        self._inflight: List[int] = [0] * len(self.rpcs)
        self._waiters: Dict[int, Any] = {}   # cmdsn -> parked completion
        # Counters (all deterministic, reported by telemetry and tests).
        self.pdus_by_connection: List[int] = [0] * len(self.rpcs)
        self.commands_issued = 0
        self.commands_completed = 0
        self.completions_held = 0   # responses that arrived out of order
        self.max_held = 0
        self.session_resets = 0
        # Evidence trail: (cmdsn, connection) in response-arrival order,
        # and cmdsn in release order; the in-order test asserts the
        # second is sorted even when the first is not.
        self.arrival_order: List[int] = []
        self.release_order: List[int] = []

    # -- scheduling ------------------------------------------------------------

    @property
    def nconnections(self) -> int:
        return len(self.rpcs)

    @property
    def held_now(self) -> int:
        """Completed-but-parked commands (the in-order buffer depth)."""
        return len(self._waiters)

    def _pick(self, cmdsn: int) -> int:
        if self.policy == "rr" or len(self.rpcs) == 1:
            return cmdsn % len(self.rpcs)
        # qdepth: least in-flight, ties to the lowest connection id.
        best = 0
        depth = self._inflight[0]
        for index in range(1, len(self._inflight)):
            if self._inflight[index] < depth:
                best = index
                depth = self._inflight[index]
        return best

    # -- the command path ------------------------------------------------------

    def call(self, op: str, payload_bytes: int = 0, header_bytes: int = 48,
             **body) -> Generator:
        """Coroutine: one command exchange with in-order completion.

        Returns the reply of the underlying RPC call, but only after
        every command with a lower CmdSN has returned to its caller.
        """
        cmdsn = self._cmdsn
        self._cmdsn += 1
        connection = self._pick(cmdsn)
        self._inflight[connection] += 1
        self.pdus_by_connection[connection] += 1
        self.commands_issued += 1
        reply = yield from self.rpcs[connection].call(
            op, payload_bytes=payload_bytes, header_bytes=header_bytes,
            cmdsn=cmdsn, **body)
        self._inflight[connection] -= 1
        if len(self.arrival_order) < _ORDER_LOG_LIMIT:
            self.arrival_order.append(cmdsn)
        if cmdsn != self._next_done:
            # The response beat an earlier command's: park until every
            # lower CmdSN has been released (in-order completion).
            self.completions_held += 1
            gate = self.sim.event()
            self._waiters[cmdsn] = gate
            if len(self._waiters) > self.max_held:
                self.max_held = len(self._waiters)
            yield gate
        self._release(cmdsn)
        return reply

    def _release(self, cmdsn: int) -> None:
        if len(self.release_order) < _ORDER_LOG_LIMIT:
            self.release_order.append(cmdsn)
        self.commands_completed += 1
        # max(): after a session reset the cursor has already jumped past
        # every pre-reset CmdSN, and a late release must not rewind it.
        self._next_done = max(self._next_done, cmdsn + 1)
        gate = self._waiters.pop(self._next_done, None)
        if gate is not None:
            gate.trigger(None)

    # -- session recovery (repro.faults) ---------------------------------------

    def reset(self) -> None:
        """Session reinstatement: forfeit in-flight CmdSN state.

        Called on an iSCSI session drop (link flap / target crash).
        Commands abandoned mid-flight never complete under their old
        CmdSN, so the completion cursor jumps past every allocated
        sequence number and parked completions are released — their
        responses did arrive; only the ordering barrier died with the
        session.  Per-connection depth restarts at zero.
        """
        self.session_resets += 1
        self._next_done = self._cmdsn
        self._inflight = [0] * len(self.rpcs)
        waiters = sorted(self._waiters.items())
        self._waiters = {}
        for _cmdsn, gate in waiters:
            gate.trigger(None)
