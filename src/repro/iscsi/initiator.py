"""The iSCSI initiator: a remote volume presented as a local block device.

The initiator implements the :class:`~repro.storage.blockdev.BlockDevice`
interface, so the client-side ext3 mounts it exactly like a local disk —
the defining property of a block-access protocol (Figure 1b).

Each ``read``/``write`` call becomes one or more SCSI command exchanges,
split at ``max_coalesced_read/write`` (128 KB by default: the block-layer
merge limit that produced the paper's ~128 KB mean write request).  The
command PDU is the counted "message"; data and status ride the exchange.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..core.params import CpuParams, IscsiParams
from ..net.rpc import RpcPeer
from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Resource, Simulator
from ..storage.blockdev import BlockDevice
from . import scsi

__all__ = ["IscsiInitiator"]


class IscsiInitiator(BlockDevice):
    """Client-side session issuing SCSI commands over the transport."""

    def __init__(
        self,
        sim: Simulator,
        rpc: RpcPeer,
        nblocks: int,
        params: Optional[IscsiParams] = None,
        cpu: Optional[Resource] = None,
        cpu_params: Optional[CpuParams] = None,
        name: str = "iscsi-initiator",
        tracer: Optional[NullTracer] = None,
    ):
        super().__init__(nblocks, name=name)
        self.sim = sim
        self.rpc = rpc
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.params = params if params is not None else IscsiParams()
        self.cpu = cpu
        self.cpu_params = cpu_params if cpu_params is not None else CpuParams()
        self.commands_issued = 0

    # -- BlockDevice interface ------------------------------------------------

    def read(self, start: int, count: int = 1) -> Generator:
        """Coroutine: READ(10) exchange(s) covering ``count`` blocks."""
        self.check_range(start, count)
        limit = max(1, self.params.max_coalesced_read // self.block_size)
        at = start
        remaining = count
        while remaining > 0:
            chunk = min(remaining, limit)
            yield from self._command(
                scsi.READ_10, lba=at, count=chunk, payload=0
            )
            at += chunk
            remaining -= chunk
        self.stats.note_read(count)
        return None

    def write(self, start: int, count: int = 1) -> Generator:
        """Coroutine: WRITE(10) exchange(s) covering ``count`` blocks."""
        self.check_range(start, count)
        limit = max(1, self.params.max_coalesced_write // self.block_size)
        at = start
        remaining = count
        while remaining > 0:
            chunk = min(remaining, limit)
            yield from self._command(
                scsi.WRITE_10, lba=at, count=chunk,
                payload=chunk * self.block_size,
            )
            at += chunk
            remaining -= chunk
        self.stats.note_write(count)
        return None

    def synchronize_cache(self) -> Generator:
        """Coroutine: issue a SYNCHRONIZE CACHE command."""
        yield from self._command(scsi.SYNCHRONIZE_CACHE, lba=0, count=0, payload=0)
        return None

    # -- internals ---------------------------------------------------------------

    def _command(self, op: str, lba: int, count: int, payload: int) -> Generator:
        self.commands_issued += 1
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin_span(
                "scsi:" + op, cat="scsi", track="client", lba=lba, count=count,
            )
        try:
            yield from self._charge(
                self.cpu_params.scsi_layer + self.cpu_params.driver_layer
            )
            yield from self.rpc.call(
                op,
                payload_bytes=payload,
                header_bytes=self.params.command_header_bytes,
                lba=lba,
                count=count,
            )
        finally:
            if span is not None:
                self.tracer.end_span(span)
        return None

    def _charge(self, cost: float) -> Generator:
        if self.cpu is not None and cost > 0:
            yield from self.cpu.use(cost)
        return None
