"""The iSCSI initiator: a remote volume presented as a local block device.

The initiator implements the :class:`~repro.storage.blockdev.BlockDevice`
interface, so the client-side ext3 mounts it exactly like a local disk —
the defining property of a block-access protocol (Figure 1b).

Each ``read``/``write`` call becomes one or more SCSI command exchanges,
split at ``max_coalesced_read/write`` (128 KB by default: the block-layer
merge limit that produced the paper's ~128 KB mean write request).  The
command PDU is the counted "message"; data and status ride the exchange.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..core.params import CpuParams, IscsiParams
from ..net.rpc import RpcPeer
from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Resource, Simulator
from ..storage.blockdev import BlockDevice
from . import scsi

__all__ = ["IscsiInitiator"]


class IscsiInitiator(BlockDevice):
    """Client-side session issuing SCSI commands over the transport."""

    def __init__(
        self,
        sim: Simulator,
        rpc: RpcPeer,
        nblocks: int,
        params: Optional[IscsiParams] = None,
        cpu: Optional[Resource] = None,
        cpu_params: Optional[CpuParams] = None,
        name: str = "iscsi-initiator",
        tracer: Optional[NullTracer] = None,
        session=None,
    ):
        super().__init__(nblocks, name=name)
        self.sim = sim
        self.rpc = rpc
        # MC/S (repro.iscsi.mcs): when a multi-connection session is
        # attached, command exchanges route through its PDU scheduler and
        # in-order completion buffer; session=None keeps the original
        # direct rpc.call path (and event sequence) byte-identical.
        self.session = session
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.params = params if params is not None else IscsiParams()
        self.cpu = cpu
        self.cpu_params = cpu_params if cpu_params is not None else CpuParams()
        self.commands_issued = 0
        # Completions mirror issues; the simsan task-set check (S406)
        # asserts the two agree at end of run.
        self.commands_completed = 0
        # Session-recovery machinery (repro.faults).  Dormant by default:
        # fault_mode=False keeps the original direct-call path (and event
        # sequence) for every unfaulted run.
        self.fault_mode = False
        self.relogin_delay = 0.02   # s; TCP reconnect + login round trip setup
        self.login_timeout = 0.5    # s; retry cadence while the wire is dark
        self._session_up = True
        self._drop_event = None     # fires when the current session dies
        self._up_event = None       # fires when the next login completes
        self.session_drops = 0
        self.logins = 0
        self.requeued_commands = 0

    # -- BlockDevice interface ------------------------------------------------

    def read(self, start: int, count: int = 1) -> Generator:
        """Coroutine: READ(10) exchange(s) covering ``count`` blocks."""
        self.check_range(start, count)
        limit = max(1, self.params.max_coalesced_read // self.block_size)
        at = start
        remaining = count
        while remaining > 0:
            chunk = min(remaining, limit)
            yield from self._command(
                scsi.READ_10, lba=at, count=chunk, payload=0
            )
            at += chunk
            remaining -= chunk
        self.stats.note_read(count)
        return None

    def write(self, start: int, count: int = 1) -> Generator:
        """Coroutine: WRITE(10) exchange(s) covering ``count`` blocks."""
        self.check_range(start, count)
        limit = max(1, self.params.max_coalesced_write // self.block_size)
        at = start
        remaining = count
        while remaining > 0:
            chunk = min(remaining, limit)
            yield from self._command(
                scsi.WRITE_10, lba=at, count=chunk,
                payload=chunk * self.block_size,
            )
            at += chunk
            remaining -= chunk
        self.stats.note_write(count)
        return None

    def synchronize_cache(self) -> Generator:
        """Coroutine: issue a SYNCHRONIZE CACHE command."""
        yield from self._command(scsi.SYNCHRONIZE_CACHE, lba=0, count=0, payload=0)
        return None

    # -- session recovery (repro.faults) --------------------------------------

    def enable_fault_mode(self) -> None:
        """Arm session-recovery: commands race the session-drop event."""
        if self.fault_mode:
            return
        self.fault_mode = True
        self._drop_event = self.sim.event()

    def session_drop(self) -> None:
        """The session died (link flap, target crash): re-login, re-queue.

        In-flight commands lose their race against the drop event and
        re-issue once the re-login completes; commands arriving while the
        session is down queue on the login-completion event.
        """
        if not self.fault_mode or not self._session_up:
            return
        self.session_drops += 1
        if self.session is not None:
            # MC/S session reinstatement: forfeit CmdSN ordering state so
            # post-relogin commands are not held for abandoned ones.
            self.session.reset()
        self._session_up = False
        self._up_event = self.sim.event()
        dropped = self._drop_event
        self._drop_event = self.sim.event()
        dropped.trigger(None)
        if self.tracer.enabled:
            self.tracer.instant("iscsi.session-drop", cat="fault",
                                track="client", dev=self.name)
        self.sim.spawn(self._relogin(), name=self.name + ".relogin")

    def _relogin(self) -> Generator:
        yield self.sim.timeout(self.relogin_delay)
        while True:
            attempt = self.sim.spawn(
                self.rpc.call(
                    scsi.LOGIN,
                    header_bytes=self.params.command_header_bytes,
                ),
                name=self.name + ".login",
            )
            winner, _value = yield self.sim.any_of(
                [attempt, self.sim.timeout(self.login_timeout)])
            if winner is attempt:
                break
            # No answer (wire still dark): try a fresh login exchange.
        self.logins += 1
        self._session_up = True
        self._up_event.trigger(None)
        if self.tracer.enabled:
            self.tracer.instant("iscsi.relogin", cat="fault",
                                track="client", dev=self.name)
        return None

    def _exchange(self, op: str, payload: int, **body) -> Generator:
        """One command exchange, re-queued across session drops."""
        header = self.params.command_header_bytes
        call = self.rpc.call if self.session is None else self.session.call
        if not self.fault_mode:
            reply = yield from call(
                op, payload_bytes=payload, header_bytes=header, **body)
            return reply
        while True:
            if not self._session_up:
                yield self._up_event
            attempt = self.sim.spawn(
                call(op, payload_bytes=payload, header_bytes=header, **body),
                name=self.name + "." + op,
            )
            winner, value = yield self.sim.any_of([attempt, self._drop_event])
            if winner is attempt:
                return value
            # Session died with the command in flight: wait for the
            # re-login, then issue it again (iSCSI command re-queue).
            self.requeued_commands += 1

    # -- internals ---------------------------------------------------------------

    def _command(self, op: str, lba: int, count: int, payload: int) -> Generator:
        self.commands_issued += 1
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin_span(
                "scsi:" + op, cat="scsi", track="client", lba=lba, count=count,
            )
        try:
            yield from self._charge(
                self.cpu_params.scsi_layer + self.cpu_params.driver_layer
            )
            yield from self._exchange(op, payload, lba=lba, count=count)
            self.commands_completed += 1
        finally:
            if span is not None:
                self.tracer.end_span(span)
        return None

    def _charge(self, cost: float) -> Generator:
        if self.cpu is not None and cost > 0:
            yield from self.cpu.use(cost)
        return None
