"""The iSCSI target: serves a RAID volume over the wire.

The target is deliberately thin — the paper's Table 9 hinges on exactly
this: a block request at the server traverses only the network layer, the
SCSI server layer, and the block driver, roughly half the processing path
of an NFS request (which additionally crosses the NFS server, VFS, the
filesystem, and the block layer).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..core.params import CpuParams
from ..net.message import Message
from ..net.rpc import RpcPeer
from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Resource, Simulator
from ..storage.blockdev import BlockDevice
from . import scsi

__all__ = ["IscsiTarget"]


class IscsiTarget:
    """Command dispatch onto the backing volume."""

    def __init__(
        self,
        sim: Simulator,
        volume: BlockDevice,
        rpc: RpcPeer,
        cpu: Optional[Resource] = None,
        cpu_params: Optional[CpuParams] = None,
        name: str = "iscsi-target",
        tracer: Optional[NullTracer] = None,
    ):
        self.sim = sim
        self.volume = volume
        self.rpc = rpc
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cpu = cpu
        self.cpu_params = cpu_params if cpu_params is not None else CpuParams()
        self.name = name
        self.commands_served = 0
        self.logins_served = 0
        rpc.set_handler(self.handle)
        # MC/S: every connection of the session dispatches into this one
        # target (shared volume, shared counters); connections[0] is the
        # leading connection that also serves LOGIN.
        self.connections = [rpc]

    def add_connection(self, rpc: RpcPeer) -> None:
        """Register an additional per-connection RPC peer (MC/S)."""
        rpc.set_handler(self.handle)
        self.connections.append(rpc)

    def handle(self, message: Message) -> Generator:
        """RPC handler: dispatch one SCSI command to the backing volume."""
        if self.tracer.enabled:
            result = yield from self.tracer.wrap(
                "scsi.serve:" + message.op, self._handle_inner(message),
                cat="scsi", track="server",
            )
            return result
        result = yield from self._handle_inner(message)
        return result

    def _handle_inner(self, message: Message) -> Generator:
        self.commands_served += 1
        op = message.op
        body = message.body
        yield from self._charge(
            self.cpu_params.scsi_layer + self.cpu_params.driver_layer
        )
        if op == scsi.READ_10:
            start, count = body["lba"], body["count"]
            yield from self.volume.read(start, count)
            return count * self.volume.block_size, {"status": "good"}
        if op == scsi.WRITE_10:
            start, count = body["lba"], body["count"]
            yield from self.volume.write(start, count)
            return 8, {"status": "good"}
        if op == scsi.SYNCHRONIZE_CACHE:
            return 8, {"status": "good"}
        if op == scsi.REPORT_CAPACITY:
            return 16, {"status": "good", "nblocks": self.volume.nblocks}
        if op == scsi.LOGIN:
            # A fresh session: command-sequence state from the old one
            # (the duplicate-reply cache) is discarded.
            self.logins_served += 1
            self.rpc.session_reset()
            return 48, {"status": "good"}
        return 0, {"status": "check_condition", "op": op}

    def _charge(self, cost: float) -> Generator:
        if self.cpu is not None and cost > 0:
            yield from self.cpu.use(cost)
        return None
