"""iSCSI protocol stack: initiator (client) and target (server)."""

from . import scsi
from .initiator import IscsiInitiator
from .target import IscsiTarget

__all__ = ["IscsiInitiator", "IscsiTarget", "scsi"]
