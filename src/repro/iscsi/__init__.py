"""iSCSI protocol stack: initiator (client), target (server), MC/S."""

from . import scsi
from .initiator import IscsiInitiator
from .mcs import MCS_POLICIES, McsSession
from .target import IscsiTarget

__all__ = ["IscsiInitiator", "IscsiTarget", "MCS_POLICIES", "McsSession",
           "scsi"]
