"""repro — a simulation-based reproduction of
"A Performance Comparison of NFS and iSCSI for IP-Networked Storage"
(Radkov, Yin, Goyal, Sarkar, Shenoy — FAST 2004).

The package builds complete, instrumented models of both IP-storage
stacks of the paper — NFS v2/v3/v4 (file-access) and iSCSI over an
ext3-like client filesystem (block-access) — on a discrete-event
simulator, and re-runs every experiment in the paper's evaluation.

Quickstart
----------
>>> from repro import make_stack
>>> stack = make_stack("iscsi")
>>> client = stack.client
>>> def work():
...     yield from client.mkdir("/data")
...     fd = yield from client.creat("/data/hello")
...     yield from client.write(fd, 4096)
...     yield from client.close(fd)
>>> snap = stack.snapshot()
>>> stack.run(work())
>>> stack.quiesce()
>>> stack.delta(snap).messages  # SCSI commands this took
"""

from .core.comparison import STACK_KINDS, StorageStack, make_stack
from .core.counters import CountersSnapshot, MessageCounters
from .core.params import (
    CacheParams,
    CpuParams,
    DiskParams,
    Ext3Params,
    IscsiParams,
    NetworkParams,
    NfsParams,
    RaidParams,
    TestbedParams,
)
from .obs import Tracer
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "CacheParams",
    "CountersSnapshot",
    "CpuParams",
    "DiskParams",
    "Ext3Params",
    "IscsiParams",
    "MessageCounters",
    "NetworkParams",
    "NfsParams",
    "RaidParams",
    "STACK_KINDS",
    "Simulator",
    "StorageStack",
    "TestbedParams",
    "Tracer",
    "make_stack",
    "__version__",
]
