"""Kernel-source-tree operations (Table 8).

The paper's four simple macro-benchmarks over a Linux source tree:

* ``tar -xzf`` — create the whole tree (meta-data + data writes);
* ``ls -lR``  — walk and stat every object (meta-data reads);
* ``make``    — read sources, compute, write objects (CPU-bound);
* ``rm -rf``  — remove everything (meta-data updates).

The synthetic tree mirrors a 2.4-era kernel's shape at a configurable
scale: nested directories, many small C files, a long-tailed size
distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..core.comparison import make_stack
from ..core.params import TestbedParams

__all__ = ["TreeSpec", "KernelTreeResult", "KernelTreeOps"]


@dataclass
class TreeSpec:
    """Shape of the synthetic source tree."""

    top_dirs: int = 12
    subdirs_per_dir: int = 4
    files_per_dir: int = 25
    mean_file_size: int = 12 * 1024
    seed: int = 17

    @property
    def total_dirs(self) -> int:
        return self.top_dirs * (1 + self.subdirs_per_dir)

    @property
    def total_files(self) -> int:
        return self.total_dirs * self.files_per_dir


@dataclass
class KernelTreeResult:
    """Completion times for the four operations (Table 8 rows)."""

    tar_seconds: float = 0.0
    ls_seconds: float = 0.0
    make_seconds: float = 0.0
    rm_seconds: float = 0.0
    messages: Dict[str, int] = field(default_factory=dict)


class KernelTreeOps:
    """Run tar/ls/make/rm against one stack."""

    def __init__(
        self,
        kind: str,
        spec: Optional[TreeSpec] = None,
        compile_cpu_per_file: float = 0.010,
        params: Optional[TestbedParams] = None,
    ):
        self.kind = kind
        self.spec = spec if spec is not None else TreeSpec()
        self.compile_cpu_per_file = compile_cpu_per_file
        self.params = params

    def _paths(self) -> Tuple[List[str], List[Tuple[str, int]]]:
        rng = random.Random(self.spec.seed)
        dirs: List[str] = []
        files: List[Tuple[str, int]] = []
        for t in range(self.spec.top_dirs):
            top = "/linux/d%02d" % t
            dirs.append(top)
            children = [top] + [
                "%s/s%d" % (top, s) for s in range(self.spec.subdirs_per_dir)
            ]
            dirs.extend(children[1:])
            for d in children:
                for f in range(self.spec.files_per_dir):
                    size = max(256, int(rng.expovariate(1.0 / self.spec.mean_file_size)))
                    files.append(("%s/f%02d.c" % (d, f), size))
        return dirs, files

    def run_all(self) -> KernelTreeResult:
        """tar, ls -lR, make, rm -rf — in the paper's order, one mount."""
        stack = make_stack(self.kind, self.params)
        client = stack.client
        dirs, files = self._paths()
        result = KernelTreeResult()

        def timed(coro, label: str) -> float:
            snap = stack.snapshot()
            start = stack.now
            stack.run(coro, name=label)
            elapsed = stack.now - start
            stack.quiesce()
            result.messages[label] = stack.delta(snap).messages
            return elapsed

        def tar() -> Generator:
            yield from client.mkdir("/linux")
            for d in dirs:
                yield from client.mkdir(d)
            for path, size in files:
                fd = yield from client.creat(path)
                yield from client.write(fd, size)
                yield from client.close(fd)
            return None

        def ls() -> Generator:
            yield from client.readdir("/linux")
            for d in dirs:
                yield from client.readdir(d)
            for path, _size in files:
                yield from client.stat(path)
            return None

        def make() -> Generator:
            for path, size in files:
                fd = yield from client.open(path)
                yield from client.read(fd, size)
                yield from client.close(fd)
                yield from stack.client_host.cpu.use(self.compile_cpu_per_file)
                obj = path[:-2] + ".o"
                fd = yield from client.creat(obj)
                yield from client.write(fd, max(256, size // 2))
                yield from client.close(fd)
            return None

        def rm() -> Generator:
            for path, _size in files:
                yield from client.unlink(path)
                yield from client.unlink(path[:-2] + ".o")
            for d in reversed(dirs):
                yield from client.rmdir(d)
            yield from client.rmdir("/linux")
            return None

        result.tar_seconds = timed(tar(), "tar")
        stack.make_cold()   # each command ran separately in the paper
        result.ls_seconds = timed(ls(), "ls")
        result.make_seconds = timed(make(), "make")
        result.rm_seconds = timed(rm(), "rm")
        return result
