"""Sequential and random streaming I/O (Table 4, Figure 6).

The paper's protocol: a 128 MB file accessed in 4 KB chunks, sequentially
or in a random permutation of its 32 K blocks.  Completion time is the
application's elapsed time; message/byte counts include the asynchronous
flush that follows (the packet capture keeps running), which is how iSCSI
reports 2 s yet ~143 MB of traffic for sequential writes.

Figure 6 reruns the same workloads under NISTNet-style RTT inflation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.comparison import StorageStack, make_stack
from ..core.counters import CountersSnapshot
from ..core.params import TestbedParams

__all__ = ["IoResult", "SeqRandWorkload", "run_table4", "run_latency_sweep"]

CHUNK = 4096


@dataclass
class IoResult:
    """One cell group of Table 4."""

    completion_time: float
    messages: int
    bytes: int
    retransmissions: int

    def __str__(self) -> str:  # pragma: no cover - convenience
        return "%.1fs  %d msgs  %.1f MB" % (
            self.completion_time, self.messages, self.bytes / 1e6)


class SeqRandWorkload:
    """128 MB (scalable) streaming reads/writes over any stack."""

    def __init__(
        self,
        kind: str,
        file_mb: int = 128,
        chunk: int = CHUNK,
        params: Optional[TestbedParams] = None,
        rtt: Optional[float] = None,
        seed: int = 42,
        shards: int = 0,
    ):
        self.kind = kind
        self.file_bytes = file_mb * 1024 * 1024
        self.chunk = chunk
        self.params = params
        self.rtt = rtt
        self.shards = shards
        self.rng = random.Random(seed)

    @property
    def nchunks(self) -> int:
        return self.file_bytes // self.chunk

    def _stack(self) -> StorageStack:
        from ..core.comparison import placement_shard

        stack = make_stack(self.kind, self.params,
                           sim=placement_shard(self.shards, self.params))
        if self.rtt is not None:
            stack.set_rtt(self.rtt)
        return stack

    # -- writes ------------------------------------------------------------------

    def run_write(self, sequential: bool) -> IoResult:
        """Coroutine driver: the write variant (sequential or random)."""
        stack = self._stack()
        client = stack.client
        order = list(range(self.nchunks))
        if not sequential:
            self.rng.shuffle(order)

        def work():
            fd = yield from client.creat("/big")
            if sequential:
                for _ in range(self.nchunks):
                    yield from client.write(fd, self.chunk)
            else:
                for index in order:
                    yield from client.pwrite(fd, self.chunk, index * self.chunk)
            yield from client.close(fd)
            return None

        snap = stack.snapshot()
        start = stack.now
        stack.run(work(), name="write")
        elapsed = stack.now - start
        stack.quiesce()   # the capture sees the flush; the app already exited
        return self._result(stack, snap, elapsed)

    # -- reads --------------------------------------------------------------------

    def run_read(self, sequential: bool) -> IoResult:
        """Coroutine driver: the read variant (sequential or random)."""
        stack = self._stack()
        client = stack.client
        order = list(range(self.nchunks))
        if not sequential:
            self.rng.shuffle(order)

        def prepare():
            fd = yield from client.creat("/big")
            for _ in range(self.nchunks):
                yield from client.write(fd, self.chunk)
            yield from client.close(fd)
            return None

        stack.run(prepare(), name="prepare")
        stack.quiesce()
        stack.make_cold()

        def work():
            fd = yield from client.open("/big")
            if sequential:
                for _ in range(self.nchunks):
                    yield from client.read(fd, self.chunk)
            else:
                for index in order:
                    yield from client.pread(fd, self.chunk, index * self.chunk)
            yield from client.close(fd)
            return None

        snap = stack.snapshot()
        start = stack.now
        stack.run(work(), name="read")
        elapsed = stack.now - start
        stack.quiesce()
        return self._result(stack, snap, elapsed)

    @staticmethod
    def _result(stack: StorageStack, snap: CountersSnapshot, elapsed: float) -> IoResult:
        delta = stack.delta(snap)
        return IoResult(
            completion_time=elapsed,
            messages=delta.messages,
            bytes=delta.total_bytes,
            retransmissions=delta.retransmissions,
        )


def run_table4(
    file_mb: int = 128,
    params: Optional[TestbedParams] = None,
) -> dict:
    """Full Table 4: NFS v3 vs iSCSI, seq/random reads and writes."""
    table = {}
    for kind in ("nfsv3", "iscsi"):
        for mode in ("seq-read", "rand-read", "seq-write", "rand-write"):
            workload = SeqRandWorkload(kind, file_mb=file_mb, params=params)
            sequential = mode.startswith("seq")
            if mode.endswith("read"):
                table[(kind, mode)] = workload.run_read(sequential)
            else:
                table[(kind, mode)] = workload.run_write(sequential)
    return table


def run_latency_sweep(
    rtts=(0.010, 0.030, 0.050, 0.070, 0.090),
    mode: str = "seq-read",
    file_mb: int = 128,
    params: Optional[TestbedParams] = None,
) -> dict:
    """Figure 6: completion time vs RTT for both stacks."""
    results = {}
    sequential = mode.startswith("seq")
    read = mode.endswith("read")
    for kind in ("nfsv3", "iscsi"):
        for rtt in rtts:
            workload = SeqRandWorkload(kind, file_mb=file_mb, params=params, rtt=rtt)
            if read:
                results[(kind, rtt)] = workload.run_read(sequential)
            else:
                results[(kind, rtt)] = workload.run_write(sequential)
    return results
