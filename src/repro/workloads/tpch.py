"""A TPC-H-like decision-support workload (Table 7).

The paper ran TPC-H at scale factor 1 (a 1 GB database, 4 KB pages,
32 KB extents) and reported normalized QphH.  To the storage stacks a
DSS query stream is: long sequential scans of large table files in
extent-sized (32 KB) reads, some scattered index probes, and heavy
client-side CPU (joins, aggregation) — the client saturates, and the
vast majority of messages are data reads.

NFS fetches each 32 KB extent in rsize-limited RPCs while iSCSI's block
layer turns it into a single command — the ~4x message gap of Table 7
falls straight out of that difference.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional

from ..core.comparison import make_stack
from ..core.params import TestbedParams

__all__ = ["DssResult", "TpchWorkload"]

PAGE = 4096
EXTENT = 32 * 1024


@dataclass
class DssResult:
    queries: int
    elapsed: float
    throughput: float          # queries per hour (QphH-like)
    messages: int
    bytes: int
    server_cpu: float
    client_cpu: float


class TpchWorkload:
    """The DSS driver (one stack per run)."""

    def __init__(
        self,
        kind: str,
        queries: int = 6,
        database_mb: int = 256,
        ntables: int = 4,
        scan_fraction: float = 0.6,
        probes_per_query: int = 200,
        cpu_per_mb: float = 0.045,
        params: Optional[TestbedParams] = None,
        seed: int = 13,
    ):
        self.kind = kind
        self.queries = queries
        self.database_bytes = database_mb * 1024 * 1024
        self.ntables = ntables
        self.scan_fraction = scan_fraction
        self.probes_per_query = probes_per_query
        self.cpu_per_mb = cpu_per_mb
        self.params = params
        self.seed = seed

    def run(self) -> DssResult:
        """Execute the workload; returns its result record."""
        stack = make_stack(self.kind, self.params)
        client = stack.client
        rng = random.Random(self.seed)
        table_bytes = self.database_bytes // self.ntables
        fds: List[int] = []

        def setup() -> Generator:
            for t in range(self.ntables):
                fd = yield from client.creat("/lineitem%d" % t)
                written = 0
                while written < table_bytes:
                    chunk = min(128 * 1024, table_bytes - written)
                    yield from client.write(fd, chunk)
                    written += chunk
                yield from client.close(fd)
            return None

        def reopen() -> Generator:
            for t in range(self.ntables):
                fd = yield from client.open("/lineitem%d" % t)
                fds.append(fd)
            return None

        def query(qnum: int) -> Generator:
            # Scan phase: sequential extent reads over a subset of tables.
            for t in range(self.ntables):
                if rng.random() > self.scan_fraction and t > 0:
                    continue
                fd = fds[t]
                offset = 0
                while offset < table_bytes:
                    done = yield from client.pread(fd, EXTENT, offset)
                    if done <= 0:
                        break
                    offset += EXTENT
                    # per-tuple CPU (joins/aggregation) keeps the client hot
                    yield from stack.client_host.cpu.use(
                        self.cpu_per_mb * EXTENT / (1024.0 * 1024.0)
                    )
            # Probe phase: scattered index lookups.
            for _ in range(self.probes_per_query):
                fd = fds[rng.randrange(self.ntables)]
                page = rng.randrange(table_bytes // PAGE)
                yield from client.pread(fd, PAGE, page * PAGE)
            return None

        def phase() -> Generator:
            for qnum in range(self.queries):
                yield from query(qnum)
            return None

        stack.run(setup(), name="tpch-setup")
        stack.quiesce()
        stack.make_cold()
        stack.run(reopen(), name="tpch-open")
        stack.reset_cpu_windows()
        snap = stack.snapshot()
        start = stack.now
        stack.run(phase(), name="tpch")
        elapsed = stack.now - start
        server_cpu = stack.server_host.cpu_utilization()
        client_cpu = stack.client_host.cpu_utilization()
        stack.quiesce()
        delta = stack.delta(snap)
        return DssResult(
            queries=self.queries,
            elapsed=elapsed,
            throughput=self.queries / elapsed * 3600.0,
            messages=delta.messages,
            bytes=delta.total_bytes,
            server_cpu=server_cpu,
            client_cpu=client_cpu,
        )
