"""A TPC-C-like OLTP workload (Table 6).

The paper ran IBM DB2 with 300 warehouses and 30 clients and reported
normalized tpmC.  What the storage stacks see from such a database is
well-characterized (and is all that matters here): small (4 KB) page I/Os
to a handful of large table/index files, two-thirds reads, uniformly
scattered, plus sequential write-ahead-log appends and periodic log
forces, with the *client* CPU saturated by SQL processing.

We reproduce that I/O and CPU profile: a buffer-pool-less page layer over
the stack's syscall interface, a transaction mix doing ~10 page reads and
~5 page writes plus a log force, and per-transaction CPU work sized to
saturate the 1 GHz client, so throughput differences between stacks come
from their I/O path efficiency — as in the paper, where iSCSI edged NFS
by 8%.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional

from ..core.comparison import make_stack
from ..core.params import CacheParams, TestbedParams

__all__ = ["OltpResult", "TpccWorkload"]

PAGE = 4096


@dataclass
class OltpResult:
    transactions: int
    elapsed: float
    throughput: float          # transactions per minute (tpmC-like)
    messages: int
    bytes: int
    server_cpu: float
    client_cpu: float


class TpccWorkload:
    """The OLTP driver (one stack per run)."""

    def __init__(
        self,
        kind: str,
        transactions: int = 2000,
        table_mb: int = 96,
        ntables: int = 8,
        reads_per_txn: int = 10,
        writes_per_txn: int = 5,
        cpu_per_txn: float = 0.010,
        workers: int = 10,
        mincommit: int = 4,
        params: Optional[TestbedParams] = None,
        seed: int = 11,
    ):
        self.kind = kind
        self.transactions = transactions
        self.workers = workers
        self.table_bytes = table_mb * 1024 * 1024
        self.ntables = ntables
        self.reads_per_txn = reads_per_txn
        self.writes_per_txn = writes_per_txn
        self.cpu_per_txn = cpu_per_txn
        self.mincommit = mincommit
        if params is None:
            # The paper's 300-warehouse database is ~20x the testbed's
            # combined RAM.  The scaled database must keep that regime, so
            # the default testbed shrinks both caches accordingly.
            params = TestbedParams(
                cache=CacheParams(
                    client_cache_bytes=32 * 1024 * 1024,
                    server_cache_bytes=48 * 1024 * 1024,
                )
            )
        self.params = params
        self.seed = seed

    def run(self) -> OltpResult:
        """Execute the workload; returns its result record."""
        stack = make_stack(self.kind, self.params)
        client = stack.client
        rng = random.Random(self.seed)
        pages_per_table = self.table_bytes // PAGE
        fds: List[int] = []
        log_offset = [0]

        def setup() -> Generator:
            # Database tables are preallocated once (DB2 extends its
            # tablespaces at load time); the load phase is not measured.
            for t in range(self.ntables):
                fd = yield from client.creat("/table%02d" % t)
                written = 0
                while written < self.table_bytes:
                    chunk = min(128 * 1024, self.table_bytes - written)
                    yield from client.write(fd, chunk)
                    written += chunk
                yield from client.close(fd)
            return None

        def reopen() -> Generator:
            for t in range(self.ntables):
                fd = yield from client.open("/table%02d" % t)
                fds.append(fd)
            fd = yield from client.creat("/db2log")
            fds.append(fd)
            return None

        txn_counter = [0]

        def transaction() -> Generator:
            yield from stack.client_host.cpu.use(self.cpu_per_txn)
            for _ in range(self.reads_per_txn):
                fd = fds[rng.randrange(self.ntables)]
                page = rng.randrange(pages_per_table)
                yield from client.pread(fd, PAGE, page * PAGE)
            for _ in range(self.writes_per_txn):
                fd = fds[rng.randrange(self.ntables)]
                page = rng.randrange(pages_per_table)
                yield from client.pwrite(fd, PAGE, page * PAGE)
            # WAL append; group commit forces the log every `mincommit`
            # transactions (DB2's MINCOMMIT tuning, standard for TPC-C).
            log_fd = fds[-1]
            yield from client.pwrite(log_fd, PAGE, log_offset[0])
            log_offset[0] += PAGE
            txn_counter[0] += 1
            if txn_counter[0] % self.mincommit == 0:
                yield from client.fsync(log_fd)
            return None

        def worker(count: int) -> Generator:
            for _ in range(count):
                yield from transaction()
            return None

        def phase() -> Generator:
            # The paper drove 30 concurrent terminals; concurrency is what
            # lets the client overlap SQL CPU with outstanding page I/O.
            share = self.transactions // self.workers
            jobs = [
                stack.sim.spawn(worker(share), name="tpcc-w%d" % i)
                for i in range(self.workers)
            ]
            yield stack.sim.all_of(jobs)
            return None

        stack.run(setup(), name="tpcc-setup")
        stack.quiesce()
        # The paper's 300-warehouse database dwarfs both machines' RAM;
        # starting cold keeps the scaled-down database from fitting in
        # either cache and preserving that regime.
        stack.make_cold()
        stack.run(reopen(), name="tpcc-open")
        stack.reset_cpu_windows()
        snap = stack.snapshot()
        start = stack.now
        stack.run(phase(), name="tpcc")
        elapsed = stack.now - start
        server_cpu = stack.server_host.cpu_utilization()
        client_cpu = stack.client_host.cpu_utilization()
        stack.quiesce()
        delta = stack.delta(snap)
        return OltpResult(
            transactions=self.transactions,
            elapsed=elapsed,
            throughput=self.transactions / elapsed * 60.0,
            messages=delta.messages,
            bytes=delta.total_bytes,
            server_cpu=server_cpu,
            client_cpu=client_cpu,
        )
