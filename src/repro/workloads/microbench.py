"""Micro-benchmarks: per-syscall network message overheads.

Reproduces the methodology of Section 4:

* **Tables 2-3** — the sixteen-plus system calls of Table 1, measured cold
  (fresh mount, server restarted) and warm (the call repeated with
  *similar but not identical* parameters, per the paper's footnote: name-
  creating ops reuse the parent with a new name; attribute ops repeat on
  the same object);
* **Figure 3** — iSCSI meta-data update aggregation: amortized messages
  per op for batches of 1..1024;
* **Figure 4** — message overhead vs. directory depth 0..16;
* **Figure 5** — message overhead vs. read/write size 128 B..64 KB.

Cold measurements include the deferred journal/write-back traffic the
operation provokes (the capture runs until the system quiesces); the
write-size sweep intentionally does *not* quiesce, matching the paper's
observation that v3/v4 asynchronous writes leave the capture window.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..core.comparison import StorageStack, make_stack
from ..core.params import TestbedParams

__all__ = [
    "SYSCALL_OPS",
    "SyscallMicrobench",
    "run_syscall_table",
    "run_batching_sweep",
    "run_depth_sweep",
    "run_io_size_sweep",
]

SYSCALL_OPS = [
    "mkdir", "chdir", "readdir", "symlink", "readlink", "unlink", "rmdir",
    "creat", "open", "link", "rename", "trunc", "chmod", "chown",
    "access", "stat", "utime",
]

#: ops whose warm repetition uses a fresh name; the rest repeat the object
_FRESH_NAME_OPS = {
    "mkdir", "symlink", "unlink", "rmdir", "creat", "link", "rename",
}


class SyscallMicrobench:
    """Cold/warm message counts for one syscall at one directory depth."""

    def __init__(self, kind: str, depth: int = 0,
                 params: Optional[TestbedParams] = None, shards: int = 0):
        self.kind = kind
        self.depth = depth
        self.params = params
        self.shards = shards
        self.base = "/" + "/".join("dir%d" % i for i in range(1, depth + 1)) \
            if depth else ""

    # -- environment -----------------------------------------------------------

    def _fresh_stack(self) -> StorageStack:
        from ..core.comparison import placement_shard

        stack = make_stack(self.kind, self.params,
                           sim=placement_shard(self.shards, self.params))
        stack.run(self._setup(stack.client), name="setup")
        stack.quiesce()
        return stack

    def _setup(self, c) -> Generator:
        """Create the directory chain and variant-0 prerequisites."""
        path = ""
        for i in range(1, self.depth + 1):
            path += "/dir%d" % i
            yield from c.mkdir(path)
        base = self.base
        yield from c.mkdir(base + "/subdir")
        yield from c.symlink("subdir", base + "/sl0")
        for v in (0, 1):
            fd = yield from c.creat(base + "/file%d" % v)
            yield from c.write(fd, 2048)
            yield from c.close(fd)
        yield from self._make_consumables(c, 0)
        return None

    def _make_consumables(self, c, v: int) -> Generator:
        """Objects an op run consumes (one set per variant)."""
        base = self.base
        fd = yield from c.creat(base + "/junk%d" % v)
        yield from c.close(fd)
        yield from c.mkdir(base + "/rd%d" % v)
        fd = yield from c.creat(base + "/rn%d" % v)
        yield from c.close(fd)
        return None

    def _op(self, c, op: str, variant: int) -> Generator:
        """Invoke ``op`` (variant 0 = first call, 1 = the warm repeat)."""
        base = self.base
        v = variant if op in _FRESH_NAME_OPS else 0
        if op == "mkdir":
            yield from c.mkdir(base + "/new%d" % v)
        elif op == "chdir":
            yield from c.chdir(base + "/subdir" if base else "/subdir")
        elif op == "readdir":
            yield from c.readdir(base + "/subdir")
        elif op == "symlink":
            yield from c.symlink("subdir", base + "/newsl%d" % v)
        elif op == "readlink":
            yield from c.readlink(base + "/sl0")
        elif op == "unlink":
            yield from c.unlink(base + "/junk%d" % v)
        elif op == "rmdir":
            yield from c.rmdir(base + "/rd%d" % v)
        elif op == "creat":
            fd = yield from c.creat(base + "/newf%d" % v)
            yield from c.close(fd)
        elif op == "open":
            fd = yield from c.open(base + "/file%d" % v)
            yield from c.close(fd)
        elif op == "link":
            yield from c.link(base + "/file0", base + "/ln%d" % v)
        elif op == "rename":
            yield from c.rename(base + "/rn%d" % v, base + "/rn%dx" % v)
        elif op == "trunc":
            yield from c.truncate(base + "/file0", 512 * variant)
        elif op == "chmod":
            yield from c.chmod(base + "/file0", 0o640 + variant)
        elif op == "chown":
            yield from c.chown(base + "/file0", variant + 1)
        elif op == "access":
            yield from c.access(base + "/file%d" % v)
        elif op == "stat":
            yield from c.stat(base + "/file%d" % v)
        elif op == "utime":
            yield from c.utime(base + "/file0")
        else:
            raise ValueError("unknown micro-benchmark op %r" % op)
        return None

    # -- measurements ----------------------------------------------------------------

    def measure_cold(self, op: str) -> int:
        """Messages for the op's first invocation after a cold mount."""
        stack = self._fresh_stack()
        stack.make_cold()
        snap = stack.snapshot()
        stack.run(self._op(stack.client, op, 0), name="cold-" + op)
        stack.quiesce()
        return stack.delta(snap).messages

    def measure_warm(self, op: str) -> int:
        """Messages for the repeat invocation (warm caches).

        Mirrors the paper's protocol: invoke on a cold cache, then repeat
        with similar-but-not-identical parameters.  The repeat's fresh
        consumables are created after the cold mount (so they are truly
        cached), and a few seconds elapse between the runs — long enough
        for NFS *file* attributes (3 s validity) to need revalidation but
        not directory entries (30 s), which is the regime the Table 3
        numbers reflect.
        """
        stack = self._fresh_stack()
        stack.make_cold()
        stack.run(self._op(stack.client, op, 0), name="prime-" + op)
        stack.run(self._make_consumables(stack.client, 1), name="prep")
        stack.quiesce()
        stack.run(_sleep(stack, 4.0), name="age")
        stack.quiesce()
        snap = stack.snapshot()
        stack.run(self._op(stack.client, op, 1), name="warm-" + op)
        stack.quiesce()
        return stack.delta(snap).messages


def run_syscall_table(
    kinds: Tuple[str, ...] = ("nfsv2", "nfsv3", "nfsv4", "iscsi"),
    depths: Tuple[int, ...] = (0, 3),
    ops: Optional[List[str]] = None,
    warm: bool = False,
    params: Optional[TestbedParams] = None,
    shards: int = 0,
) -> Dict[int, Dict[str, Dict[str, int]]]:
    """Compute a Table 2 (cold) or Table 3 (warm) equivalent.

    Returns ``{depth: {op: {kind: messages}}}``.  ``shards=1`` builds
    every stack on a one-shard calendar (byte-identical placement check).
    """
    ops = ops if ops is not None else list(SYSCALL_OPS)
    table: Dict[int, Dict[str, Dict[str, int]]] = {}
    for depth in depths:
        table[depth] = {}
        for op in ops:
            row: Dict[str, int] = {}
            for kind in kinds:
                bench = SyscallMicrobench(kind, depth, params, shards=shards)
                if warm:
                    row[kind] = bench.measure_warm(op)
                else:
                    row[kind] = bench.measure_cold(op)
            table[depth][op] = row
    return table


BATCH_OPS = ["creat", "link", "rename", "chmod", "stat", "access", "write", "mkdir"]


def run_batching_sweep(
    op: str,
    batch_sizes: Tuple[int, ...] = (1, 4, 16, 64, 256, 1024),
    kind: str = "iscsi",
    params: Optional[TestbedParams] = None,
) -> Dict[int, float]:
    """Figure 3: amortized messages/op for batches of meta-data operations.

    Each batch starts from a cold cache; the whole batch (plus the flush it
    provokes) is counted and divided by the batch size.
    """
    if op not in BATCH_OPS:
        raise ValueError("op %r not in %s" % (op, BATCH_OPS))
    results: Dict[int, float] = {}
    for n in batch_sizes:
        stack = make_stack(kind, params)
        client = stack.client

        def setup(client=client, n=n):
            if op in ("link", "rename", "chmod", "stat", "access", "write"):
                fd = yield from client.creat("/seed")
                yield from client.write(fd, 1024)
                yield from client.close(fd)
            if op == "rename":
                for i in range(n):
                    fd = yield from client.creat("/r%d" % i)
                    yield from client.close(fd)
            if op == "write":
                fd = yield from client.creat("/wfile")
                yield from client.close(fd)
            return None

        stack.run(setup(), name="setup")
        stack.quiesce()
        stack.make_cold()
        snap = stack.snapshot()

        def batch(client=client, n=n):
            for i in range(n):
                if op == "creat":
                    fd = yield from client.creat("/b%d" % i)
                    yield from client.close(fd)
                elif op == "mkdir":
                    yield from client.mkdir("/d%d" % i)
                elif op == "link":
                    yield from client.link("/seed", "/l%d" % i)
                elif op == "rename":
                    yield from client.rename("/r%d" % i, "/r%dx" % i)
                elif op == "chmod":
                    yield from client.chmod("/seed", 0o600 + (i % 64))
                elif op == "stat":
                    yield from client.stat("/seed")
                elif op == "access":
                    yield from client.access("/seed")
            return None

        if op == "write":
            def batch(client=client, n=n):
                fd = yield from client.open("/wfile", 1)  # O_WRONLY
                for i in range(n):
                    yield from client.pwrite(fd, 512, (i % 8) * 512)
                yield from client.close(fd)
                return None

        stack.run(batch(), name="batch")
        stack.quiesce()
        results[n] = stack.delta(snap).messages / float(n)
    return results


def run_depth_sweep(
    op: str,
    kind: str,
    depths: Tuple[int, ...] = tuple(range(0, 17, 2)),
    warm: bool = False,
    params: Optional[TestbedParams] = None,
) -> Dict[int, int]:
    """Figure 4: messages vs. directory depth for one op and stack."""
    results: Dict[int, int] = {}
    for depth in depths:
        bench = SyscallMicrobench(kind, depth, params)
        if warm:
            results[depth] = bench.measure_warm(op)
        else:
            results[depth] = bench.measure_cold(op)
    return results


def run_io_size_sweep(
    kind: str,
    mode: str,
    sizes: Tuple[int, ...] = tuple(2 ** e for e in range(7, 17)),
    params: Optional[TestbedParams] = None,
) -> Dict[int, int]:
    """Figure 5: messages vs. I/O size.

    ``mode`` is ``"cold-read"``, ``"warm-read"``, or ``"cold-write"``.
    Reads measure the read() call against an already-open descriptor (plus
    any consistency traffic it provokes, quiesced); cold writes measure
    creat+write *without* quiescing — asynchronous write-back leaves the
    capture window, as the paper observed for v3/v4.
    """
    if mode not in ("cold-read", "warm-read", "cold-write"):
        raise ValueError("unknown mode %r" % mode)
    results: Dict[int, int] = {}
    for size in sizes:
        stack = make_stack(kind, params)
        client = stack.client

        if mode in ("cold-read", "warm-read"):
            def setup(client=client):
                fd = yield from client.creat("/data")
                yield from client.write(fd, 128 * 1024)
                yield from client.close(fd)
                fd = yield from client.open("/data")
                return fd

            fd = stack.run(setup(), name="setup")
            stack.quiesce()
            if mode == "cold-read":
                stack.drop_caches()
            else:
                # Warm: read the file fully first, then wait out the
                # attribute validity window (the paper's re-reads arrive
                # after prior runs), then measure.
                def prime(client=client, fd=fd):
                    yield from client.pread(fd, 128 * 1024, 0)
                    return None
                stack.run(prime(), name="prime")
                stack.quiesce()
                stack.run(_sleep(stack, 4.0), name="age")

            snap = stack.snapshot()

            def measure(client=client, fd=fd, size=size):
                yield from client.pread(fd, size, 0)
                return None

            stack.run(measure(), name=mode)
            stack.quiesce()
            results[size] = stack.delta(snap).messages
        else:  # cold-write
            stack.make_cold()
            snap = stack.snapshot()

            def measure(client=client, size=size):
                fd = yield from client.creat("/newfile")
                yield from client.write(fd, size)
                return fd

            stack.run(measure(), name=mode)
            # deliberately no quiesce: async write-back escapes the capture
            results[size] = stack.delta(snap).messages
    return results


def _sleep(stack: StorageStack, seconds: float) -> Generator:
    yield stack.sim.timeout(seconds)
    return None
