"""Workload generators for every experiment in the paper's evaluation."""

from .kernel_tree import KernelTreeOps, KernelTreeResult, TreeSpec
from .microbench import (
    BATCH_OPS,
    SYSCALL_OPS,
    SyscallMicrobench,
    run_batching_sweep,
    run_depth_sweep,
    run_io_size_sweep,
    run_syscall_table,
)
from .postmark import PostMark, PostmarkResult
from .seqrand import IoResult, SeqRandWorkload, run_latency_sweep, run_table4
from .tpcc import OltpResult, TpccWorkload
from .tpch import DssResult, TpchWorkload

__all__ = [
    "BATCH_OPS",
    "DssResult",
    "IoResult",
    "KernelTreeOps",
    "KernelTreeResult",
    "OltpResult",
    "PostMark",
    "PostmarkResult",
    "SYSCALL_OPS",
    "SeqRandWorkload",
    "SyscallMicrobench",
    "TpccWorkload",
    "TpchWorkload",
    "TreeSpec",
    "run_batching_sweep",
    "run_depth_sweep",
    "run_io_size_sweep",
    "run_latency_sweep",
    "run_syscall_table",
    "run_table4",
]
