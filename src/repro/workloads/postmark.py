"""PostMark (Table 5): the meta-data-intensive small-file benchmark.

Faithful to Katcher's benchmark as the paper used it: an initial pool of
small random-size text files in one directory, then N transactions, each
one of

* create (write a whole new file) or delete (a random existing file), and
* read (a whole random file) or append (a random amount to a random file),

chosen with equal predisposition.  Completion time covers the transaction
phase; message counts include the asynchronous flush tail (the packet
capture outlives the process), which is exactly how iSCSI can finish in
seconds yet still owe a journal commit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from ..core.comparison import make_stack
from ..core.params import TestbedParams

__all__ = ["PostmarkResult", "PostMark"]


@dataclass
class PostmarkResult:
    """One row-pair of Table 5 for one stack."""

    files: int
    transactions: int
    completion_time: float
    messages: int
    bytes: int
    server_cpu: float
    client_cpu: float


class PostMark:
    """The benchmark runner (one stack per run)."""

    def __init__(
        self,
        kind: str,
        file_count: int = 1000,
        transactions: int = 100_000,
        min_size: int = 512,
        max_size: int = 9770,
        params: Optional[TestbedParams] = None,
        seed: int = 7,
    ):
        self.kind = kind
        self.file_count = file_count
        self.transactions = transactions
        self.min_size = min_size
        self.max_size = max_size
        self.params = params
        self.seed = seed

    def run(self) -> PostmarkResult:
        """Execute the workload; returns its result record."""
        stack = make_stack(self.kind, self.params)
        client = stack.client
        rng = random.Random(self.seed)
        live = []          # file names currently in the pool
        next_id = [0]

        def fname() -> str:
            name = "/pm%06d" % next_id[0]
            next_id[0] += 1
            return name

        def create_file() -> Generator:
            name = fname()
            size = rng.randint(self.min_size, self.max_size)
            fd = yield from client.creat(name)
            yield from client.write(fd, size)
            yield from client.close(fd)
            live.append(name)
            return None

        def setup() -> Generator:
            for _ in range(self.file_count):
                yield from create_file()
            return None

        def transaction() -> Generator:
            # create-or-delete
            if rng.random() < 0.5:
                yield from create_file()
            elif len(live) > 1:
                victim = live.pop(rng.randrange(len(live)))
                yield from client.unlink(victim)
            # read-or-append
            if not live:
                return None
            target = live[rng.randrange(len(live))]
            if rng.random() < 0.5:
                fd = yield from client.open(target)
                yield from client.read(fd, self.max_size)
                yield from client.close(fd)
            else:
                fd = yield from client.open(target, 1)  # O_WRONLY
                st = yield from client.fstat(fd)
                amount = rng.randint(self.min_size, self.max_size // 2)
                yield from client.pwrite(fd, amount, st.size)
                yield from client.close(fd)
            return None

        def phase() -> Generator:
            for _ in range(self.transactions):
                yield from transaction()
            return None

        stack.run(setup(), name="postmark-setup")
        stack.quiesce()
        stack.reset_cpu_windows()
        snap = stack.snapshot()
        start = stack.now
        stack.run(phase(), name="postmark")
        elapsed = stack.now - start
        server_cpu = stack.server_host.cpu_utilization()
        client_cpu = stack.client_host.cpu_utilization()
        stack.quiesce()
        delta = stack.delta(snap)
        return PostmarkResult(
            files=self.file_count,
            transactions=self.transactions,
            completion_time=elapsed,
            messages=delta.messages,
            bytes=delta.total_bytes,
            server_cpu=server_cpu,
            client_cpu=client_cpu,
        )
