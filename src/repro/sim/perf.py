"""Kernel micro-benchmarks: tight synthetic loads on the hot paths.

Three storms exercise the three costs the kernel optimization targets —
calendar churn (:func:`event_storm`), process spawn/teardown
(:func:`spawn_storm`), and contended resource hand-off
(:func:`resource_storm`).  Each returns the number of calendar records it
dispatched, so a harness can report events/second.

They are deliberately *simulated-time* workloads measured in *wall-clock*
time: the simulation outcome is deterministic (same final ``sim.now``,
same event count, forever), so any wall-clock movement is pure
interpreter/kernel overhead.  Two consumers share them:

* ``benchmarks/perf_kernel.py`` — pytest-benchmark timings for humans;
* ``benchmarks/perf_smoke.py`` — the CI wall-clock gate, which times the
  storms plus the traced quick suite and fails on a big regression
  against the committed ``BENCH_perf.json``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Tuple

from .kernel import Simulator
from .resources import Resource

__all__ = ["event_storm", "spawn_storm", "resource_storm",
           "MICROBENCHES", "time_callable"]


def event_storm(events: int = 50_000) -> int:
    """One process sleeping ``events`` times: pure calendar churn."""
    sim = Simulator()

    def sleeper():
        for _ in range(events):
            yield sim.timeout(0.001)

    sim.run_process(sleeper(), name="sleeper")
    return events


def spawn_storm(processes: int = 5_000) -> int:
    """Spawn short-lived child processes and join each one."""
    sim = Simulator()

    def child():
        yield sim.timeout(0.001)
        return None

    def parent():
        for _ in range(processes):
            yield sim.spawn(child())

    sim.run_process(parent(), name="parent")
    return processes


def resource_storm(workers: int = 50, rounds: int = 200) -> int:
    """``workers`` processes fighting over a capacity-2 resource."""
    sim = Simulator()
    resource = Resource(sim, capacity=2, name="disk")

    def worker():
        for _ in range(rounds):
            yield from resource.use(0.001)

    for index in range(workers):
        sim.spawn(worker(), name="w%d" % index)
    sim.run()
    return workers * rounds


# name -> (callable, kwargs): the suite perf_smoke and perf_kernel share.
MICROBENCHES: Dict[str, Tuple[Callable[..., int], Dict[str, Any]]] = {
    "event_storm": (event_storm, {"events": 50_000}),
    "spawn_storm": (spawn_storm, {"processes": 5_000}),
    "resource_storm": (resource_storm, {"workers": 50, "rounds": 200}),
}


def time_callable(fn: Callable[..., Any], kwargs: Dict[str, Any],
                  repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for one ``fn(**kwargs)`` call.

    Best-of (not mean) because scheduling noise only ever adds time; the
    minimum is the closest observable to the code's intrinsic cost.
    """
    best = float("inf")
    for _ in range(repeat):
        # Wall-clock on purpose: this harness measures *host* runtime of
        # the kernel, not simulated time.
        start = time.perf_counter()  # simlint: disable=D101
        fn(**kwargs)
        best = min(best, time.perf_counter() - start)  # simlint: disable=D101
    return best
