"""Kernel micro-benchmarks: tight synthetic loads on the hot paths.

Three storms exercise the three costs the kernel optimization targets —
calendar churn (:func:`event_storm`), process spawn/teardown
(:func:`spawn_storm`), and contended resource hand-off
(:func:`resource_storm`).  Each returns the number of calendar records it
dispatched, so a harness can report events/second.

A fourth, :func:`shard_storm`, exercises the *sharded* kernel
(:mod:`repro.sim.shard`): hub-and-clients groups exchanging
request/reply traffic across group boundaries, runnable on one flat
calendar (the reference) or partitioned over N shards with any
executor.  Its simulated outcome — completions, records dispatched, and
makespan — is engineered to be identical for every partitioning (every
client gets a distinct think-time offset, so no two events ever tie
across a shard boundary), which is what lets the scale CLI ``cmp`` a
sharded run's output against the sequential kernel's byte for byte.

They are deliberately *simulated-time* workloads measured in *wall-clock*
time: the simulation outcome is deterministic (same final ``sim.now``,
same event count, forever), so any wall-clock movement is pure
interpreter/kernel overhead.  Two consumers share them:

* ``benchmarks/perf_kernel.py`` — pytest-benchmark timings for humans;
* ``benchmarks/perf_smoke.py`` — the CI wall-clock gate, which times the
  storms plus the traced quick suite and fails on a big regression
  against the committed ``BENCH_perf.json``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Tuple

from .kernel import Simulator
from .resources import Resource, Store
from .shard import ShardedSimulator, default_parallel_executor

__all__ = ["event_storm", "spawn_storm", "resource_storm", "shard_storm",
           "run_shard_storm", "MICROBENCHES", "time_callable"]


def event_storm(events: int = 50_000) -> int:
    """One process sleeping ``events`` times: pure calendar churn."""
    sim = Simulator()

    def sleeper():
        for _ in range(events):
            yield sim.timeout(0.001)

    sim.run_process(sleeper(), name="sleeper")
    return events


def spawn_storm(processes: int = 5_000) -> int:
    """Spawn short-lived child processes and join each one."""
    sim = Simulator()

    def child():
        yield sim.timeout(0.001)
        return None

    def parent():
        for _ in range(processes):
            yield sim.spawn(child())

    sim.run_process(parent(), name="parent")
    return processes


def resource_storm(workers: int = 50, rounds: int = 200) -> int:
    """``workers`` processes fighting over a capacity-2 resource."""
    sim = Simulator()
    resource = Resource(sim, capacity=2, name="disk")

    def worker():
        for _ in range(rounds):
            yield from resource.use(0.001)

    for index in range(workers):
        sim.spawn(worker(), name="w%d" % index)
    sim.run()
    return workers * rounds


# -- the sharded storm --------------------------------------------------------
# Written once against a tiny "fabric" facade so the reference (one flat
# calendar) and the sharded run execute the *same actor code*: the only
# difference is where posts land.  _LocalFabric.post makes exactly the
# calendar record Shard.post's co-located fast path makes, which is why
# the two runs agree record for record.


class _LocalFabric:
    """All groups on one flat calendar: the sequential reference."""

    __slots__ = ("sim", "ports")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.ports: Dict[str, Callable[[Any], None]] = {}

    def sim_for(self, _group: int) -> Simulator:
        return self.sim

    def bind(self, _group: int, port: str,
             handler: Callable[[Any], None]) -> None:
        self.ports[port] = handler

    def post(self, _src: int, _dst: int, port: str, payload: Any,
             delay: float) -> None:
        self.sim._schedule_call1(self.ports[port], payload, delay)


class _ShardFabric:
    """Groups mapped round-robin onto the shards of a ShardedSimulator."""

    __slots__ = ("sharded", "nshards")

    def __init__(self, sharded: ShardedSimulator):
        self.sharded = sharded
        self.nshards = len(sharded.shards)

    def shard_of(self, group: int) -> int:
        return group % self.nshards

    def sim_for(self, group: int) -> Simulator:
        return self.sharded.shard(self.shard_of(group)).sim

    def bind(self, group: int, port: str,
             handler: Callable[[Any], None]) -> None:
        self.sharded.shard(self.shard_of(group)).bind(port, handler)

    def post(self, src: int, dst: int, port: str, payload: Any,
             delay: float) -> None:
        self.sharded.shard(self.shard_of(src)).post(
            self.shard_of(dst), port, payload, delay)


def _storm_group(fabric, group: int, clients_per_group: int, requests: int,
                 groups: int, think: float, service: float, latency: float,
                 remote_every: int, sink: list):
    """Build one hub + its clients; return the client factories."""
    sim = fabric.sim_for(group)
    hub_box = Store(sim, name="hub%d" % group)
    fabric.bind(group, "hub%d" % group, hub_box.put)

    def hub():
        while True:
            src_group, src_index, seq = yield from hub_box.get()
            yield sim.hold(service)
            fabric.post(group, src_group,
                        "c%d.%d" % (src_group, src_index), seq, latency)

    sim.spawn(hub(), name="hub%d" % group)

    factories = []
    for index in range(clients_per_group):
        box = Store(sim, name="c%d.%d" % (group, index))
        fabric.bind(group, "c%d.%d" % (group, index), box.put)
        factories.append(_storm_client(
            fabric, sim, box, group, index, clients_per_group, groups,
            requests, think, latency, remote_every, sink))
    return factories


def _storm_client(fabric, sim, box, group, index, clients_per_group, groups,
                  requests, think, latency, remote_every, sink):
    # Every client gets its own think time: arrival instants across the
    # whole topology are pairwise distinct, so no equal-`when` tie ever
    # straddles a shard boundary and the outcome is partition-invariant.
    client_id = group * clients_per_group + index
    my_think = think * (1.0 + client_id * 7.3e-5)

    def client():
        completed = 0
        for seq in range(requests):
            yield sim.hold(my_think)
            if groups > 1 and seq % remote_every == 0:
                target = (group + 1) % groups
            else:
                target = group
            fabric.post(group, target, "hub%d" % target,
                        (group, index, seq), latency)
            yield from box.get()
            completed += 1
        sink.append((client_id, sim.now, completed))

    return client


def _dispatched(sim: Simulator) -> int:
    """Records actually fired: everything scheduled minus the leftovers."""
    return sim._sequence - len(sim._calendar)


def run_shard_storm(groups: int = 4, clients_per_group: int = 16,
                    requests: int = 25, nshards: int = 1,
                    executor: Optional[str] = None,
                    jobs: Optional[int] = None,
                    san: bool = False,
                    think: float = 0.002, service: float = 0.0004,
                    latency: float = 0.0005,
                    remote_every: int = 4) -> Dict[str, Any]:
    """Run the hub/client storm; return its metrics (and shard report).

    ``nshards=0`` runs the pure-sequential reference on one flat
    calendar; ``nshards>=1`` partitions the groups round-robin over
    that many shards (``executor`` defaults to the platform's parallel
    one).  The ``completed``/``records``/``makespan`` fields are
    identical for every value of ``nshards``/``executor``/``jobs`` —
    that invariance is the scale CLI's byte-identity contract — while
    ``report`` carries the partition-dependent synchronization stats
    (``None`` for the reference).
    """
    if executor is None:
        executor = default_parallel_executor()
    total_clients = groups * clients_per_group

    if nshards == 0:
        sim = Simulator()
        fabric = _LocalFabric(sim)
        sink: list = []
        for group in range(groups):
            for factory in _storm_group(
                    fabric, group, clients_per_group, requests, groups,
                    think, service, latency, remote_every, sink):
                sim.spawn(factory(), name="client")
        sim.run()
        finishes = sorted(sink)
        records = _dispatched(sim)
        report = None
    else:
        sharded = ShardedSimulator(nshards, latency, san=san,
                                   executor=executor, jobs=jobs)
        fabric = _ShardFabric(sharded)
        sinks = [[] for _ in range(nshards)]
        for group in range(groups):
            shard = sharded.shard(fabric.shard_of(group))
            group_sink = sinks[shard.id]
            for factory in _storm_group(
                    fabric, group, clients_per_group, requests, groups,
                    think, service, latency, remote_every, group_sink):
                shard.add_phase("storm", factory, name="client")
        for shard, group_sink in zip(sharded.shards, sinks):
            shard.set_collector(_storm_collector(shard, group_sink))
        sharded.run_phase("storm")
        collected = sharded.collect()
        sharded.close()
        if san and sharded.findings:
            from ..check.simsan import SanitizerError
            raise SanitizerError(sharded.findings)
        merged: list = []
        records = 0
        for _shard_id, (shard_sink, shard_records) in sorted(
                collected.items()):
            merged.extend(shard_sink)
            records += shard_records
        finishes = sorted(merged)
        report = sharded.report()

    return {
        "groups": groups,
        "clients": total_clients,
        "requests_per_client": requests,
        "completed": sum(entry[2] for entry in finishes),
        "records": records,
        "makespan": max(entry[1] for entry in finishes),
        "report": report,
    }


def _storm_collector(shard, sink):
    def collect():
        return (list(sink), _dispatched(shard.sim))
    return collect


def shard_storm(groups: int = 4, clients_per_group: int = 16,
                requests: int = 25, nshards: int = 2,
                executor: Optional[str] = None,
                jobs: Optional[int] = None) -> int:
    """Microbench entry point: run the storm, return records dispatched."""
    return run_shard_storm(groups=groups, clients_per_group=clients_per_group,
                           requests=requests, nshards=nshards,
                           executor=executor, jobs=jobs)["records"]


# name -> (callable, kwargs): the suite perf_smoke and perf_kernel share.
MICROBENCHES: Dict[str, Tuple[Callable[..., int], Dict[str, Any]]] = {
    "event_storm": (event_storm, {"events": 50_000}),
    "spawn_storm": (spawn_storm, {"processes": 5_000}),
    "resource_storm": (resource_storm, {"workers": 50, "rounds": 200}),
    # Sharded-kernel storms: same topology, two partitionings.  They use
    # the platform's parallel executor (fork on POSIX), so their
    # wall-clock tracks the real cost of windowed synchronization plus
    # whatever speedup the host's cores allow.
    "shard_storm_2": (shard_storm, {"groups": 8, "clients_per_group": 16,
                                    "requests": 25, "nshards": 2}),
    "shard_storm_4": (shard_storm, {"groups": 8, "clients_per_group": 16,
                                    "requests": 25, "nshards": 4}),
}


def time_callable(fn: Callable[..., Any], kwargs: Dict[str, Any],
                  repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for one ``fn(**kwargs)`` call.

    Best-of (not mean) because scheduling noise only ever adds time; the
    minimum is the closest observable to the code's intrinsic cost.
    """
    best = float("inf")
    for _ in range(repeat):
        # Wall-clock on purpose: this harness measures *host* runtime of
        # the kernel, not simulated time.
        start = time.perf_counter()  # simlint: disable=D101 -- perf harness measures host runtime by design
        fn(**kwargs)
        best = min(best, time.perf_counter() - start)  # simlint: disable=D101 -- perf harness measures host runtime by design
    return best
