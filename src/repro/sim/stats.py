"""Measurement primitives shared by the kernel and the observability layer.

Two classes live here because both the simulation substrate and
``repro.obs`` need them without importing each other:

* :class:`LatencyHistogram` — fixed geometric buckets with an explicit
  overflow bucket and exact min/max tracking, used for span latencies
  (``repro.obs``) and resource wait times (:class:`ResourceStats`);
* :class:`ResourceStats` — first-class queueing statistics for one
  :class:`~repro.sim.resources.Resource`: utilization, wait-time
  accounting, and the queue-depth integral that makes Little's law an
  exact checkable identity instead of an approximation.

The accounting is pure arithmetic on the simulated clock — it never
creates events — so instrumented and uninstrumented runs execute the
exact same event sequence.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["LatencyHistogram", "ResourceStats"]


class LatencyHistogram:
    """Fixed geometric buckets over latencies, 1 us to ~2 minutes.

    Buckets double from 1 microsecond; values beyond the last edge land
    in an explicit overflow bucket (:attr:`overflow`).  The exact minimum
    and maximum are tracked alongside the buckets, and every percentile
    answer is clamped into ``[min, max]`` — so empty and single-sample
    histograms, and values above the top bucket, never mis-report:

    * empty histogram — percentiles are 0.0 (nothing observed);
    * single sample — every percentile is exactly that sample;
    * overflow values — the high percentiles report the exact maximum,
      not a bucket edge that does not exist.

    Within a populated bucket the answer is the bucket's upper edge,
    which bounds the error to one bucket width — the standard
    fixed-bucket trade-off.
    """

    __slots__ = ("counts", "count", "total", "min", "max")

    EDGES: Tuple[float, ...] = tuple(1e-6 * (2.0 ** i) for i in range(28))

    def __init__(self):
        self.counts: List[int] = [0] * (len(self.EDGES) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, seconds: float) -> None:
        """Add one observation (in simulated seconds)."""
        # First edge >= seconds, i.e. the bucket whose upper edge bounds
        # the value; past the last edge this lands in the overflow bucket.
        index = bisect_left(self.EDGES, seconds)
        self.counts[index] += 1
        self.count += 1
        self.total += seconds
        if self.min is None:
            self.min = self.max = seconds
        else:
            if seconds < self.min:
                self.min = seconds
            if seconds > self.max:
                self.max = seconds

    @property
    def overflow(self) -> int:
        """Observations that fell above the top bucket edge."""
        return self.counts[-1]

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (associative, commutative).

        Fixed buckets make the merge exact: bucket counts add, totals
        add, and the exact min/max combine — the property the streaming
        telemetry layer relies on to aggregate rollups across
        process-pool workers.
        """
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min,
                                                              other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max,
                                                              other.max)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (sparse buckets: ``{index: count}``)."""
        return {
            "buckets": {str(i): c for i, c in enumerate(self.counts) if c},
            "count": self.count,
            "total": round(self.total, 9),
            "min": None if self.min is None else round(self.min, 9),
            "max": None if self.max is None else round(self.max, 9),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`as_dict` output."""
        hist = cls()
        for index, count in data.get("buckets", {}).items():
            hist.counts[int(index)] = count
        hist.count = data.get("count", 0)
        hist.total = data.get("total", 0.0)
        hist.min = data.get("min")
        hist.max = data.get("max")
        return hist

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        if not self.count:
            return 0.0
        return self.total / self.count

    def percentile(self, fraction: float) -> float:
        """Latency at the given fraction (0.5 = p50), from bucket edges.

        The raw bucket answer (upper edge; exact max for the overflow
        bucket) is clamped into the observed ``[min, max]`` range.
        Returns 0.0 for an empty histogram.  A partially restored
        histogram (bucket counts without min/max, e.g. a trimmed
        :meth:`from_dict` document) answers from bucket edges alone
        instead of claiming 0.0 — the diff engines rely on percentiles
        staying defined for every count > 0.
        """
        if not self.count:
            return 0.0
        if fraction <= 0.0:
            return self.min if self.min is not None else self._bucket_floor()
        target = fraction * self.count
        seen = 0
        result = None
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= target and count:
                if index < len(self.EDGES):
                    result = self.EDGES[index]
                else:
                    result = self.max
                break
        if result is None:
            result = self.max if self.max is not None else self.EDGES[-1]
        if self.min is not None and self.max is not None:
            return min(max(result, self.min), self.max)
        return result

    def _bucket_floor(self) -> float:
        """Lower edge of the first populated bucket (min/max unknown)."""
        for index, count in enumerate(self.counts):
            if count:
                return self.EDGES[index - 1] if index else 0.0
        return 0.0


class ResourceStats:
    """First-class queueing statistics for one resource.

    This generalizes the old scattered ``busy_time`` counters into a
    single accumulator maintained by ``Resource.acquire``/``release``:

    * **utilization** — busy time integrated over the in-service count,
      divided by ``capacity * elapsed`` (what vmstat would report);
    * **wait accounting** — every acquisition records its queueing delay;
      contended waits (> 0) additionally feed a
      :class:`LatencyHistogram`, so p95/p99 wait times are available;
    * **queue-depth integral** — ``integral(queue_length dt)`` maintained
      at every enqueue/dequeue, giving the exact time-average queue
      length without sampling.

    Little's law (``L = lambda * W``) is an exact identity here: over any
    interval that begins and ends with an empty queue, the queue-depth
    integral equals the sum of all waits.
    :meth:`littles_law_residual` exposes the difference so tests can
    assert the accounting is conservative.
    """

    __slots__ = ("_resource", "_sim", "window_start", "acquisitions",
                 "contended", "total_wait", "max_wait", "wait_hist",
                 "busy_time", "_in_service", "_queue_len",
                 "_queue_integral", "_last_change")

    def __init__(self, resource: Any):
        self._resource = resource
        self._sim = resource.sim
        self.window_start = self._sim.now
        self.acquisitions = 0          # total successful acquires
        self.contended = 0             # acquires that had to queue
        self.total_wait = 0.0          # sum of all queueing delays
        self.max_wait = 0.0
        self.wait_hist = LatencyHistogram()   # contended waits only
        self.busy_time = 0.0           # integral of the in-service count
        self._in_service = 0
        self._queue_len = 0
        self._queue_integral = 0.0
        self._last_change = self._sim.now

    # -- accounting hooks (called by Resource) --------------------------------

    def note_enqueued(self) -> None:
        """One acquirer joined the wait queue."""
        self._accumulate()
        self._queue_len += 1

    def note_acquired(self, wait: float) -> None:
        """One acquirer entered service after waiting ``wait`` seconds.

        Acquirers that queued must call :meth:`note_wait_done` instead so
        the queue-depth integral stays conservative.
        """
        # _accumulate(), inlined: this is the per-charge hot path.
        now = self._sim.now
        dt = now - self._last_change
        if dt > 0.0:
            self.busy_time += self._in_service * dt
            self._queue_integral += self._queue_len * dt
            self._last_change = now
        self._in_service += 1
        self.acquisitions += 1
        if wait > 0.0:
            self.total_wait += wait
            self.contended += 1
            if wait > self.max_wait:
                self.max_wait = wait
            self.wait_hist.record(wait)

    def note_wait_done(self, wait: float) -> None:
        """A queued acquirer left the wait queue and entered service."""
        self._accumulate()
        self._queue_len -= 1
        self.note_acquired(wait)

    def note_released(self) -> None:
        """One unit of capacity left service."""
        # _accumulate(), inlined: this is the per-charge hot path.
        now = self._sim.now
        dt = now - self._last_change
        if dt > 0.0:
            self.busy_time += self._in_service * dt
            self._queue_integral += self._queue_len * dt
            self._last_change = now
        self._in_service -= 1

    def _accumulate(self) -> None:
        now = self._sim.now
        dt = now - self._last_change
        if dt > 0.0:
            self.busy_time += self._in_service * dt
            self._queue_integral += self._queue_len * dt
            self._last_change = now

    # -- derived figures ------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Simulated seconds since the start of the current window."""
        return self._sim.now - self.window_start

    @property
    def queue_integral(self) -> float:
        """``integral(queue_length dt)`` up to the current instant."""
        self._accumulate()
        return self._queue_integral

    def utilization(self) -> float:
        """Mean utilization over the current window, in [0, 1]."""
        self._accumulate()
        elapsed = self.elapsed
        if elapsed <= 0.0:
            return 0.0
        return self.busy_time / (self._resource.capacity * elapsed)

    def mean_wait(self) -> float:
        """Mean queueing delay over *all* acquisitions (0.0 when none)."""
        if not self.acquisitions:
            return 0.0
        return self.total_wait / self.acquisitions

    def mean_queue_length(self) -> float:
        """Exact time-average number of waiters (from the integral)."""
        elapsed = self.elapsed
        if elapsed <= 0.0:
            return 0.0
        return self.queue_integral / elapsed

    def arrival_rate(self) -> float:
        """Acquisitions per simulated second over the current window."""
        elapsed = self.elapsed
        if elapsed <= 0.0:
            return 0.0
        return self.acquisitions / elapsed

    def littles_law_residual(self) -> float:
        """``|integral(queue dt) - sum(waits)|`` — the conservation check.

        Exactly 0 (up to float addition order) whenever the wait queue is
        empty at both window edges; while acquirers are still queued the
        residual equals their accumulated-but-unfinished waiting time.
        """
        return abs(self.queue_integral - self.total_wait)

    def reset_window(self) -> None:
        """Start a fresh measurement window at the current instant.

        In-service and queued counts carry over (they are physical
        state); the integrals, wait totals, and histogram restart.
        """
        self._accumulate()
        self.window_start = self._sim.now
        self.acquisitions = 0
        self.contended = 0
        self.total_wait = 0.0
        self.max_wait = 0.0
        self.wait_hist = LatencyHistogram()
        self.busy_time = 0.0
        self._queue_integral = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (used by ``repro bench``)."""
        return {
            "capacity": self._resource.capacity,
            "utilization": round(self.utilization(), 9),
            "busy_s": round(self.busy_time, 9),
            "acquisitions": self.acquisitions,
            "contended": self.contended,
            "wait_s": round(self.total_wait, 9),
            "mean_wait_s": round(self.mean_wait(), 9),
            "max_wait_s": round(self.max_wait, 9),
            "p95_wait_s": round(self.wait_hist.percentile(0.95), 9),
            "mean_queue": round(self.mean_queue_length(), 9),
        }
