"""Discrete-event simulation substrate.

Everything in the library runs on this kernel: network links, disks,
caches, filesystems and protocol stacks are all processes and resources
scheduled on one :class:`~repro.sim.kernel.Simulator` clock.
"""

from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Resource, Store, UtilizationTracker
from .stats import LatencyHistogram, ResourceStats

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "LatencyHistogram",
    "Process",
    "Resource",
    "ResourceStats",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "UtilizationTracker",
]
