"""Queued resources for the simulation kernel.

Two primitives cover everything the storage stacks need:

* :class:`Resource` — a counting semaphore with a FIFO wait queue.  Disks,
  CPUs, and the NFS client's bounded async-write pool are resources.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``; used
  for message inboxes and request queues.

Both also keep the accounting the experiments need, so utilization
figures fall out of the same objects that provide the contention.  Every
:class:`Resource` carries a :class:`~repro.sim.stats.ResourceStats`
(``resource.stats``) with utilization, wait-time histograms, and the
queue-depth integral — the raw material for the queueing analytics in
:mod:`repro.obs.profile`.  The older :class:`UtilizationTracker` is kept
for the CPU-utilization windows of Tables 9/10.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .kernel import Event, SimulationError, Simulator
from .stats import ResourceStats

__all__ = ["Resource", "Store", "UtilizationTracker"]


class UtilizationTracker:
    """Accumulates busy time for a capacity-``n`` server.

    Utilization over a window is ``busy_time / (capacity * elapsed)``, i.e.
    the fraction of available service capacity consumed.
    """

    __slots__ = ("sim", "capacity", "busy_time", "_in_service",
                 "_last_change", "_window_start")

    def __init__(self, sim: Simulator, capacity: int = 1):
        self.sim = sim
        self.capacity = capacity
        self.busy_time = 0.0
        self._in_service = 0
        self._last_change = sim.now
        self._window_start = sim.now

    def acquire(self) -> None:
        """Record one unit of capacity entering service."""
        self._accumulate()
        self._in_service += 1

    def release(self) -> None:
        """Record one unit of capacity leaving service."""
        self._accumulate()
        if self._in_service <= 0:
            raise SimulationError("release without acquire")
        self._in_service -= 1

    def _accumulate(self) -> None:
        now = self.sim.now
        # Same-instant re-reads must not accumulate twice; this compares
        # the clock to its own earlier value, so exact float equality is
        # the correct test.
        if now != self._last_change:  # simlint: disable=D104 -- clock vs its own earlier value; exact equality is correct
            self.busy_time += self._in_service * (now - self._last_change)
            self._last_change = now

    def reset_window(self) -> None:
        """Start a fresh measurement window at the current instant."""
        self._accumulate()
        self.busy_time = 0.0
        self._window_start = self.sim.now

    def utilization(self) -> float:
        """Mean utilization since the start of the current window."""
        self._accumulate()
        elapsed = self.sim.now - self._window_start
        if elapsed <= 0.0:
            return 0.0
        return self.busy_time / (self.capacity * elapsed)


class Resource:
    """A counting semaphore with FIFO queueing and utilization tracking."""

    __slots__ = ("sim", "capacity", "name", "available", "_waiters",
                 "tracker", "stats", "total_acquisitions")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.available = capacity
        self._waiters: Deque[Event] = deque()
        self.tracker = UtilizationTracker(sim, capacity)
        self.stats = ResourceStats(self)
        self.total_acquisitions = 0

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Generator[Event, Any, None]:
        """Coroutine: block until a unit of capacity is held."""
        if self.available > 0 and not self._waiters:
            self.available -= 1
            self.stats.note_acquired(0.0)
        else:
            arrived = self.sim.now
            gate = self.sim.event()
            self.stats.note_enqueued()
            self._waiters.append(gate)
            yield gate
            self.stats.note_wait_done(self.sim.now - arrived)
        self.total_acquisitions += 1
        # UtilizationTracker.acquire is plain bookkeeping, not the
        # coroutine Resource.acquire — nothing to yield here.
        self.tracker.acquire()  # simlint: disable=P203 -- bookkeeping method, not the coroutine acquire
        return None

    def release(self) -> None:
        """Return one unit of capacity; wakes the oldest waiter, if any."""
        self.tracker.release()
        self.stats.note_released()
        if self._waiters:
            self._waiters.popleft().trigger()
        else:
            if self.available >= self.capacity:
                raise SimulationError(
                    "resource %r released more than acquired" % (self.name,)
                )
            self.available += 1

    def use(self, duration: float) -> Generator[Event, Any, None]:
        """Coroutine: acquire, hold for ``duration``, release.

        The acquire is inlined (same logic as :meth:`acquire`) so the
        per-charge hot path costs one generator, not two nested ones.
        """
        if self.available > 0 and not self._waiters:
            self.available -= 1
            self.stats.note_acquired(0.0)
        else:
            arrived = self.sim.now
            gate = Event(self.sim)
            self.stats.note_enqueued()
            self._waiters.append(gate)
            yield gate
            self.stats.note_wait_done(self.sim.now - arrived)
        self.total_acquisitions += 1
        # Bookkeeping call (see acquire() above), not the coroutine.
        self.tracker.acquire()  # simlint: disable=P203 -- bookkeeping method, not the coroutine acquire
        try:
            yield self.sim.hold(duration)
        finally:
            self.release()
        return None


class Store:
    """An unbounded FIFO with blocking ``get`` (message inbox)."""

    __slots__ = ("sim", "name", "_items", "_getters", "total_put")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        # Blocked getters park their Process directly (no gate Event):
        # put() hands the item straight to the oldest parked process.
        self._getters: Deque[Any] = deque()
        self.total_put = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter."""
        self.total_put += 1
        if self._getters:
            self.sim.unpark(self._getters.popleft(), item)
        else:
            self._items.append(item)

    def get(self) -> Generator[Any, Any, Any]:
        """Coroutine: return the oldest item, blocking while empty."""
        if self._items:
            return self._items.popleft()
        sim = self.sim
        self._getters.append(sim._active_process)
        item = yield sim.park()
        return item

    def get_nowait(self) -> Optional[Any]:
        """Return the oldest item or ``None`` without blocking."""
        if self._items:
            return self._items.popleft()
        return None

    def drain(self) -> List[Any]:
        """Remove and return all queued items."""
        items = list(self._items)
        self._items.clear()
        return items
