"""Server-farm storm: protocol-aware scale-out on the sharded kernel.

Where :func:`repro.sim.perf.run_shard_storm` stresses the *kernel* with
an abstract hub/client topology, this storm models the paper's two
protocols at farm scale: ``nclients`` clients (each issuing over
``connections`` concurrent channels, the MC/S / nconnect queue-depth
axis) against ``nservers`` servers.

* ``protocol="nfs"`` stripes one namespace over all servers the pNFS
  way (:class:`repro.nfs.pnfs.StripeLayout`): server 0 doubles as the
  metadata server, and the first touch of a file costs a ``LAYOUTGET``
  round trip before the I/O is sent to the file's home server.  A
  ``sharing`` fraction of requests lands in a small shared-file pool
  (the cross-client sharing the paper's Section 7 studies); the rest
  hit per-client private files.
* ``protocol="iscsi"`` is block access: each client owns its volume and
  talks only to its portal server (``client % nservers``) — no metadata
  hop, no sharing (volumes are single-client by design, Section 2.3).

Every figure the storm returns is **machine-independent simulated
outcome** — completions, makespan, message counts, and per-server
queueing integrals read from :class:`~repro.sim.stats.ResourceStats` —
so a committed baseline can be diffed exactly across hosts.  It is also
**partition-invariant**: every (client, worker) pair gets a pairwise
distinct think time, so no two events ever tie across a shard boundary
and ``nshards=0`` (flat reference), ``nshards=1``, and any parallel
partitioning produce identical outcomes.  Per-server figures are
collected as raw integrals (``busy_time``, ``queue_integral``,
``total_wait`` all stop growing once a server goes idle) and divided by
the partition-invariant makespan at merge time — never by a shard-local
clock, which runs past the last event to the conservative watermark.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..nfs.pnfs import StripeLayout
from .kernel import Simulator
from .perf import _dispatched, _LocalFabric, _ShardFabric
from .resources import Resource, Store
from .shard import ShardedSimulator, default_parallel_executor

__all__ = ["run_farm", "FARM_PROTOCOLS"]

FARM_PROTOCOLS = ("nfs", "iscsi")


def _farm_server(fabric, server_id: int, layout: StripeLayout,
                 service: float, mds_service: float, latency: float,
                 capacity: int) -> Tuple[Resource, Dict[str, int]]:
    """One server: an inbox, a service resource, request workers."""
    sim = fabric.sim_for(server_id)
    inbox = Store(sim, name="srv%d" % server_id)
    fabric.bind(server_id, "srv%d" % server_id, inbox.put)
    resource = Resource(sim, capacity=capacity, name="farm-srv%d" % server_id)
    counts = {"layout": 0, "io": 0}

    def request(kind, reply_entity, reply_port, payload):
        if kind == "layout":
            counts["layout"] += 1
            yield from resource.use(mds_service)
            answer: Any = layout.server_for(payload)
        else:
            counts["io"] += 1
            yield from resource.use(service)
            answer = payload
        fabric.post(server_id, reply_entity, reply_port, answer, latency)

    def dispatcher():
        while True:
            kind, reply_entity, reply_port, payload = yield from inbox.get()
            sim.spawn(request(kind, reply_entity, reply_port, payload),
                      name="srv%d.req" % server_id)

    sim.spawn(dispatcher(), name="srv%d" % server_id)
    return resource, counts


def _farm_client(fabric, client_id: int, nservers: int, protocol: str,
                 connections: int, requests: int, sharing_ppt: int,
                 shared_pool: int, files_per_client: int, think: float,
                 latency: float, sink: list) -> List[Any]:
    """One client: ``connections`` workers sharing a layout cache."""
    entity = nservers + client_id
    sim = fabric.sim_for(entity)
    layouts: Dict[str, int] = {}   # path -> home server (client-side cache)
    progress = {"done": 0}
    factories = []
    for worker_id in range(connections):
        port = "cl%d.w%d" % (client_id, worker_id)
        box = Store(sim, name=port)
        fabric.bind(entity, port, box.put)
        factories.append(_farm_worker(
            fabric, sim, box, entity, port, client_id, worker_id, nservers,
            protocol, connections, requests, sharing_ppt, shared_pool,
            files_per_client, think, latency, layouts, progress, sink))
    return factories


def _farm_worker(fabric, sim, box, entity, port, client_id, worker_id,
                 nservers, protocol, connections, requests, sharing_ppt,
                 shared_pool, files_per_client, think, latency, layouts,
                 progress, sink):
    # Pairwise-distinct think times across every (client, worker) pair:
    # no two events ever tie across a shard boundary, which is what
    # makes the storm's outcome partition-invariant.
    my_think = think * (1.0 + client_id * 7.3e-5 + worker_id * 1.9e-6)

    def worker():
        for seq in range(worker_id, requests, connections):
            yield sim.hold(my_think)
            if protocol == "iscsi":
                # Block access: this client's volume, its portal server.
                home = client_id % nservers
            else:
                # A seeded-RNG-free request mix: an arithmetic hash picks
                # shared-pool vs private files deterministically.
                h = (client_id * 2654435761 + seq * 97843219) & 0xFFFFFFFF
                if h % 1000 < sharing_ppt:
                    path = "shared/f%02d" % ((h // 1000) % shared_pool)
                else:
                    path = "c%d/f%d" % (client_id, seq % files_per_client)
                home = layouts.get(path)
                if home is None:
                    # First touch: LAYOUTGET round trip to the MDS
                    # (server 0) before the I/O can be routed.
                    fabric.post(entity, 0, "srv0",
                                ("layout", entity, port, path), latency)
                    home = yield from box.get()
                    layouts[path] = home
            fabric.post(entity, home, "srv%d" % home,
                        ("io", entity, port, seq), latency)
            yield from box.get()
            progress["done"] += 1
        if progress["done"] == requests:
            # This worker retired the client's last request: exactly one
            # worker observes the full count after its loop.
            sink.append((client_id, sim.now, requests))

    return worker


def _server_row(server_id: int, resource: Resource, counts: Dict[str, int],
                capacity: int) -> Dict[str, Any]:
    """Raw, partition-invariant per-server figures (integrals, counts)."""
    stats = resource.stats
    return {
        "server": server_id,
        "capacity": capacity,
        "layout_served": counts["layout"],
        "io_served": counts["io"],
        "busy_time": round(stats.busy_time, 9),
        "queue_integral": round(stats.queue_integral, 9),
        "total_wait": round(stats.total_wait, 9),
        "acquisitions": stats.acquisitions,
        "contended": stats.contended,
        "max_wait": round(stats.max_wait, 9),
    }


def _farm_collector(shard, sink, rows, capacity):
    def collect():
        return (list(sink), _dispatched(shard.sim),
                [_server_row(server_id, resource, counts, capacity)
                 for server_id, resource, counts in rows])
    return collect


def run_farm(protocol: str = "nfs", nclients: int = 64, nservers: int = 1,
             connections: int = 1, sharing: float = 0.0, requests: int = 8,
             nshards: int = 1, executor: Optional[str] = None,
             jobs: Optional[int] = None, san: bool = False,
             think: float = 0.004, service: float = 0.0006,
             mds_service: float = 0.0001, latency: float = 0.0005,
             shared_pool: int = 16, files_per_client: int = 4,
             server_capacity: int = 1) -> Dict[str, Any]:
    """Run the farm storm; return its machine-independent outcome.

    ``nshards=0`` is the flat sequential reference; any ``nshards >= 1``
    partitions servers and clients round-robin over the shards and must
    produce the identical outcome (the CI byte-identity gate).  The
    returned ``per_server`` rows carry raw queueing integrals plus
    derived figures (``utilization``, ``mean_queue``, ``mean_wait``,
    ``littles_residual``) computed against the makespan.
    """
    if protocol not in FARM_PROTOCOLS:
        raise ValueError("unknown farm protocol %r; one of %s"
                         % (protocol, FARM_PROTOCOLS))
    if nclients < 1:
        raise ValueError("nclients must be >= 1 (got %d)" % (nclients,))
    if nservers < 1:
        raise ValueError("nservers must be >= 1 (got %d)" % (nservers,))
    if connections < 1:
        raise ValueError("connections must be >= 1 (got %d)" % (connections,))
    if not 0.0 <= sharing <= 1.0:
        raise ValueError("sharing must be in [0, 1] (got %r)" % (sharing,))
    if requests < 1:
        raise ValueError("requests must be >= 1 (got %d)" % (requests,))
    sharing_ppt = int(round(sharing * 1000))
    layout = StripeLayout(nservers)
    if executor is None:
        executor = default_parallel_executor()

    if nshards == 0:
        sim = Simulator()
        fabric: Any = _LocalFabric(sim)
        sink: list = []
        servers = [
            _farm_server(fabric, server_id, layout, service, mds_service,
                         latency, server_capacity)
            for server_id in range(nservers)
        ]
        for client_id in range(nclients):
            for factory in _farm_client(
                    fabric, client_id, nservers, protocol, connections,
                    requests, sharing_ppt, shared_pool, files_per_client,
                    think, latency, sink):
                sim.spawn(factory(), name="farm-client")
        sim.run()
        finishes = sorted(sink)
        records = _dispatched(sim)
        server_rows = [_server_row(server_id, resource, counts,
                                   server_capacity)
                       for server_id, (resource, counts)
                       in enumerate(servers)]
        report = None
    else:
        sharded = ShardedSimulator(nshards, latency, san=san,
                                   executor=executor, jobs=jobs)
        fabric = _ShardFabric(sharded)
        sinks: List[list] = [[] for _ in range(nshards)]
        shard_servers: List[list] = [[] for _ in range(nshards)]
        for server_id in range(nservers):
            resource, counts = _farm_server(
                fabric, server_id, layout, service, mds_service, latency,
                server_capacity)
            shard_servers[fabric.shard_of(server_id)].append(
                (server_id, resource, counts))
        for client_id in range(nclients):
            entity = nservers + client_id
            shard = sharded.shard(fabric.shard_of(entity))
            group_sink = sinks[shard.id]
            for factory in _farm_client(
                    fabric, client_id, nservers, protocol, connections,
                    requests, sharing_ppt, shared_pool, files_per_client,
                    think, latency, group_sink):
                shard.add_phase("farm", factory, name="farm-client")
        for shard, group_sink, rows in zip(sharded.shards, sinks,
                                           shard_servers):
            shard.set_collector(
                _farm_collector(shard, group_sink, rows, server_capacity))
        sharded.run_phase("farm")
        collected = sharded.collect()
        sharded.close()
        if san and sharded.findings:
            from ..check.simsan import SanitizerError
            raise SanitizerError(sharded.findings)
        merged: list = []
        records = 0
        server_rows = []
        for _shard_id, (shard_sink, shard_records, shard_rows) in sorted(
                collected.items()):
            merged.extend(shard_sink)
            records += shard_records
            server_rows.extend(shard_rows)
        server_rows.sort(key=lambda row: row["server"])
        finishes = sorted(merged)
        report = sharded.report()

    makespan = max(entry[1] for entry in finishes)
    completed = sum(entry[2] for entry in finishes)
    for row in server_rows:
        acquisitions = row["acquisitions"]
        row["utilization"] = round(
            row["busy_time"] / (row["capacity"] * makespan), 9)
        row["mean_queue"] = round(row["queue_integral"] / makespan, 9)
        row["mean_wait"] = (round(row["total_wait"] / acquisitions, 9)
                            if acquisitions else 0.0)
        # Little's law over the whole run: the queue-length integral IS
        # the sum of waits, so the residual is rounding noise only.
        row["littles_residual"] = round(
            abs(row["queue_integral"] - row["total_wait"]), 9)
    total_layout = sum(row["layout_served"] for row in server_rows)
    total_io = sum(row["io_served"] for row in server_rows)
    return {
        "protocol": protocol,
        "clients": nclients,
        "servers": nservers,
        "connections": connections,
        "sharing": sharing,
        "requests_per_client": requests,
        "completed": completed,
        "records": records,
        "makespan": makespan,
        "messages": 2 * (total_layout + total_io),
        "layout_gets": total_layout,
        "throughput": round(completed / makespan, 9),
        "per_server": server_rows,
        "report": report,
    }
