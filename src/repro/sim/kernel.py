"""Discrete-event simulation kernel.

The kernel implements a classic event-calendar simulator with
generator-coroutine processes, similar in spirit to SimPy but small,
deterministic, and tailored to this project:

* A :class:`Simulator` owns the virtual clock and the event calendar.
* A :class:`Process` wraps a generator.  The generator ``yield``\\ s
  :class:`Event` objects to block on them, and uses ``yield from`` to call
  sub-coroutines (the return value of the inner generator propagates).
* Every stochastic decision in the wider library goes through an explicitly
  seeded ``random.Random``; the kernel itself is fully deterministic —
  simultaneous events fire in scheduling order.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(2.5)
...     return sim.now
>>> proc = sim.spawn(hello(sim))
>>> sim.run()
>>> proc.value
2.5
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. running a finished simulator)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either with a value
    (:meth:`trigger`) or with an exception (:meth:`fail`).  Processes that
    yield a triggered event resume immediately (on the next kernel step);
    processes that yield a pending event resume when it triggers.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.ok: Optional[bool] = None
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []
        # Set to True once a failure has been delivered to at least one
        # waiter (or defused explicitly); undelivered failures raise at the
        # end of the run so errors never pass silently.
        self.defused = False

    # -- triggering ---------------------------------------------------------

    def trigger(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event failed; waiters receive ``exc``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self.ok = False
        self.value = exc
        self.sim._schedule_event(self)
        return self

    # -- waiting ------------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs when the event is processed.

        If the event has already been processed the callback is scheduled
        for the current instant.
        """
        if self._callbacks is None:  # already processed
            self.sim._schedule_call(lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def _process(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        for callback in callbacks:
            callback(self)
        if self.ok is False and not self.defused:
            self.sim._record_failure(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self.triggered else "pending"
        return "<%s %s at t=%s>" % (type(self).__name__, state, self.sim.now)


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative delay: %r" % (delay,))
        super().__init__(sim)
        self.delay = delay
        self.triggered = True
        self.ok = True
        self.value = value
        sim._schedule_event(self, delay)


class Process(Event):
    """A running coroutine; also an event that triggers on completion."""

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator, got %r" % (generator,))
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        sim._schedule_call(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            return
        self.sim._schedule_call(lambda: self._resume(None, Interrupt(cause)))

    # -- internal stepping ---------------------------------------------------

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        # Expose the running process (observability: span parenting keys
        # off the process whose frame is currently executing).
        sim = self.sim
        previous = sim._active_process
        sim._active_process = self
        try:
            try:
                if exc is not None:
                    target = self._generator.throw(exc)
                else:
                    target = self._generator.send(value)
            except StopIteration as stop:
                self.trigger(stop.value)
                return
            except BaseException as error:
                self.fail(error)
                return
        finally:
            sim._active_process = previous
        if not isinstance(target, Event):
            self.fail(
                TypeError(
                    "process %r yielded %r; processes must yield Event "
                    "objects (use `yield from` for sub-coroutines)"
                    % (self.name, target)
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self._resume(event.value, None)
        else:
            event.defused = True
            self._resume(None, event.value)


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers.

    The value is ``(event, value)`` for the first event to fire.  Failures
    of the winning event propagate; failures of losers are defused.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if event.ok is False:
                event.defused = True
            return
        if event.ok:
            self.trigger((event, event.value))
        else:
            event.defused = True
            self.fail(event.value)


class AllOf(Event):
    """Triggers when every one of ``events`` has triggered successfully.

    The value is the list of child values in construction order.  The first
    child failure fails the combinator.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.trigger([])
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if event.ok is False:
                event.defused = True
            return
        if event.ok is False:
            event.defused = True
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.trigger([child.value for child in self.events])


class Simulator:
    """The event calendar, virtual clock, and process spawner."""

    def __init__(self):
        self.now: float = 0.0
        self._calendar: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._unhandled: List[Event] = []
        self._active_process: Optional["Process"] = None

    # -- public API -----------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Return an event that fires when the first of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Return an event that fires when every one of ``events`` has."""
        return AllOf(self, events)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar empties or the clock reaches ``until``."""
        while self._calendar:
            when, _seq, call = self._calendar[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(self._calendar)
            if when > self.now:
                self.now = when
            call()
        else:
            if until is not None and until > self.now:
                self.now = until
        self._raise_unhandled()

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Spawn ``generator``, run to completion, and return its value.

        This is the main entry point used by workloads: it drives the whole
        simulation until the given process finishes (background processes
        may continue afterwards via :meth:`run`).
        """
        proc = self.spawn(generator, name=name)
        while self._calendar and not proc.triggered:
            when, _seq, call = heapq.heappop(self._calendar)
            if when > self.now:
                self.now = when
            call()
        self._raise_unhandled()
        if not proc.triggered:
            raise SimulationError(
                "process %r deadlocked: calendar empty at t=%s" % (proc.name, self.now)
            )
        if proc.ok is False:
            proc.defused = True
            raise proc.value
        return proc.value

    # -- internal -------------------------------------------------------------

    def _schedule_call(self, call: Callable[[], None], delay: float = 0.0) -> None:
        self._sequence += 1
        heapq.heappush(self._calendar, (self.now + delay, self._sequence, call))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._schedule_call(event._process, delay)

    def _record_failure(self, event: Event) -> None:
        self._unhandled.append(event)

    def _raise_unhandled(self) -> None:
        if not self._unhandled:
            return
        # A failure recorded at processing time may have been handled
        # *afterwards* by a late waiter (Event.add_callback on an already-
        # processed event): the waiter defuses it, so it no longer counts
        # as unhandled.
        pending = [event for event in self._unhandled if not event.defused]
        self._unhandled = []
        if not pending:
            return
        event = pending[0]
        if isinstance(event.value, BaseException):
            raise event.value
        raise SimulationError("unhandled event failure: %r" % (event.value,))
