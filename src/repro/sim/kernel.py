"""Discrete-event simulation kernel.

The kernel implements a classic event-calendar simulator with
generator-coroutine processes, similar in spirit to SimPy but small,
deterministic, and tailored to this project:

* A :class:`Simulator` owns the virtual clock and the event calendar.
* A :class:`Process` wraps a generator.  The generator ``yield``\\ s
  :class:`Event` objects to block on them, and uses ``yield from`` to call
  sub-coroutines (the return value of the inner generator propagates).
* Every stochastic decision in the wider library goes through an explicitly
  seeded ``random.Random``; the kernel itself is fully deterministic —
  simultaneous events fire in scheduling order.

Performance notes
-----------------
The calendar holds flat ``(when, seq, kind, target, payload)`` records
instead of closures: scheduling never allocates a lambda, and the run
loop dispatches on the small integer ``kind`` directly.  ``seq`` is
unique, so heap comparisons never reach ``kind`` — the firing order is
exactly the ``(when, seq)`` contract the experiments rely on.  All
per-event classes use ``__slots__``.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(2.5)
...     return sim.now
>>> proc = sim.spawn(hello(sim))
>>> sim.run()
>>> proc.value
2.5
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]

# Calendar record kinds (index 2 of each record).  Ordered by hotness in
# the run-loop dispatch: event processing dominates, then one-argument
# calls (message delivery), then process resumes (one per spawn).
_KIND_EVENT = 0    # target: Event      -> target._process()
_KIND_CALL1 = 1    # target: callable   -> target(payload)
_KIND_RESUME = 2   # target: Process    -> target._resume(payload, None)
_KIND_THROW = 3    # target: Process    -> target._resume(None, payload)
_KIND_CALL = 4     # target: callable   -> target()

# Sentinel yielded by Simulator.hold(): the resume record is already on
# the calendar, so Process._resume has nothing to subscribe to.
_HOLD = object()


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. running a finished simulator)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either with a value
    (:meth:`trigger`) or with an exception (:meth:`fail`).  Processes that
    yield a triggered event resume immediately (on the next kernel step);
    processes that yield a pending event resume when it triggers.
    """

    __slots__ = ("sim", "triggered", "ok", "value", "_callbacks", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.ok: Optional[bool] = None
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []
        # Set to True once a failure has been delivered to at least one
        # waiter (or defused explicitly); undelivered failures raise at the
        # end of the run so errors never pass silently.
        self.defused = False

    # -- triggering ---------------------------------------------------------

    def trigger(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        sim = self.sim
        sim._sequence = seq = sim._sequence + 1
        heappush(sim._calendar, (sim.now, seq, _KIND_EVENT, self, None))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event failed; waiters receive ``exc``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self.ok = False
        self.value = exc
        sim = self.sim
        sim._sequence = seq = sim._sequence + 1
        heappush(sim._calendar, (sim.now, seq, _KIND_EVENT, self, None))
        return self

    # -- waiting ------------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs when the event is processed.

        If the event has already been processed the callback is scheduled
        for the current instant (as a flat calendar record — no closure is
        allocated for this late-waiter hot path).
        """
        if self._callbacks is None:  # already processed
            sim = self.sim
            sim._sequence = seq = sim._sequence + 1
            heappush(sim._calendar, (sim.now, seq, _KIND_CALL1, callback, self))
        else:
            self._callbacks.append(callback)

    def _process(self) -> None:
        callbacks = self._callbacks
        self._callbacks = None
        for callback in callbacks:
            callback(self)
        if self.ok is False and not self.defused:
            self.sim._unhandled.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self.triggered else "pending"
        return "<%s %s at t=%s>" % (type(self).__name__, state, self.sim.now)


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative delay: %r" % (delay,))
        self.sim = sim
        self.triggered = True
        self.ok = True
        self.value = value
        self._callbacks = []
        self.defused = False
        self.delay = delay
        sim._sequence = seq = sim._sequence + 1
        heappush(sim._calendar, (sim.now + delay, seq, _KIND_EVENT, self, None))


class Process(Event):
    """A running coroutine; also an event that triggers on completion."""

    # ``trace_parent`` is not set by the kernel itself: spawners that fan
    # work out across processes (RAID, write-back) attach it so the tracer
    # can seed span parentage (see repro.obs.tracer).
    __slots__ = ("name", "_generator", "_waiting_on", "trace_parent")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator, got %r" % (generator,))
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        sim._sequence = seq = sim._sequence + 1
        heappush(sim._calendar, (sim.now, seq, _KIND_RESUME, self, None))

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            return
        sim = self.sim
        sim._sequence = seq = sim._sequence + 1
        heappush(sim._calendar,
                 (sim.now, seq, _KIND_THROW, self, Interrupt(cause)))

    # -- internal stepping ---------------------------------------------------

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        # Expose the running process (observability: span parenting keys
        # off the process whose frame is currently executing).
        sim = self.sim
        previous = sim._active_process
        sim._active_process = self
        try:
            try:
                if exc is not None:
                    target = self._generator.throw(exc)
                else:
                    target = self._generator.send(value)
            except StopIteration as stop:
                self.trigger(stop.value)
                return
            except BaseException as error:
                self.fail(error)
                return
        finally:
            sim._active_process = previous
        if target is _HOLD:
            # hold() already pushed this process's resume record; there is
            # no event object to subscribe to.
            return
        if not isinstance(target, Event):
            self.fail(
                TypeError(
                    "process %r yielded %r; processes must yield Event "
                    "objects (use `yield from` for sub-coroutines)"
                    % (self.name, target)
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self._resume(event.value, None)
        else:
            event.defused = True
            self._resume(None, event.value)


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers.

    The value is ``(event, value)`` for the first event to fire.  Failures
    of the winning event propagate; failures of losers are defused.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if event.ok is False:
                event.defused = True
            return
        if event.ok:
            self.trigger((event, event.value))
        else:
            event.defused = True
            self.fail(event.value)


class AllOf(Event):
    """Triggers when every one of ``events`` has triggered successfully.

    The value is the list of child values in construction order.  The first
    child failure fails the combinator.
    """

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.trigger([])
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if event.ok is False:
                event.defused = True
            return
        if event.ok is False:
            event.defused = True
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.trigger([child.value for child in self.events])


class Simulator:
    """The event calendar, virtual clock, and process spawner."""

    __slots__ = ("now", "_calendar", "_sequence", "_unhandled",
                 "_active_process", "recorder")

    def __init__(self):
        self.now: float = 0.0
        self._calendar: List[Tuple[float, int, int, Any, Any]] = []
        self._sequence = 0
        self._unhandled: List[Event] = []
        self._active_process: Optional["Process"] = None
        # Opt-in flight recorder (repro.obs.explain.FlightRecorder); the
        # run loops note every popped record when one is attached.  The
        # recorder observes and never schedules, so attaching one leaves
        # the event sequence unchanged.
        self.recorder: Optional[Any] = None

    # -- public API -----------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def hold(self, delay: float) -> Any:
        """Sleep the *currently running* process for ``delay``; no Event.

        The allocation-free fast path for the innermost service delays
        (disk transfers, CPU charges): it pushes the process's resume
        record directly onto the calendar and returns a sentinel for the
        process to yield, skipping the Timeout object, its callback list,
        and the event-processing hop.  The record occupies the same
        ``(when, seq)`` slot a ``timeout(delay)`` created here would, so
        firing order is unchanged.

        Only valid ``yield``\\ ed immediately from code running inside a
        process; the returned sentinel is not an :class:`Event` and cannot
        be stored, combined with ``any_of``/``all_of``, or waited on by
        anyone else.
        """
        if delay < 0:
            raise ValueError("negative delay: %r" % (delay,))
        proc = self._active_process
        if proc is None:
            raise SimulationError("hold() outside a running process")
        self._sequence = seq = self._sequence + 1
        heappush(self._calendar,
                 (self.now + delay, seq, _KIND_RESUME, proc, None))
        return _HOLD

    def park(self) -> Any:
        """Suspend the *currently running* process with no Event.

        The counterpart of :meth:`hold` for wakeups another party
        delivers (queue hand-off): the caller stashes
        ``sim._active_process`` somewhere, yields the returned sentinel,
        and the other party later calls :meth:`unpark` with that process.
        The same caveats as :meth:`hold` apply.
        """
        if self._active_process is None:
            raise SimulationError("park() outside a running process")
        return _HOLD

    def unpark(self, proc: "Process", value: Any = None) -> None:
        """Resume a parked process at the current instant with ``value``.

        Occupies the same ``(when, seq)`` slot that triggering a wait
        event here would, so firing order matches the Event-based
        hand-off it replaces.
        """
        self._sequence = seq = self._sequence + 1
        heappush(self._calendar, (self.now, seq, _KIND_RESUME, proc, value))

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Return an event that fires when the first of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Return an event that fires when every one of ``events`` has."""
        return AllOf(self, events)

    def peek(self) -> Optional[float]:
        """Return the ``when`` of the next calendar record, or ``None``.

        Sharded runs (:mod:`repro.sim.shard`) use this to compute the
        global minimum next-event time for the conservative
        synchronization window; it never pops or perturbs the calendar.
        """
        calendar = self._calendar
        if not calendar:
            return None
        return calendar[0][0]

    def schedule_at(self, when: float, call: Callable[[Any], None],
                    arg: Any) -> None:
        """Schedule ``call(arg)`` at the *absolute* time ``when``.

        The cross-shard injection path: an arrival time computed on the
        sending shard must land at exactly that float on the receiving
        shard.  Routing through a relative delay (``when - now``) can
        lose the low bits to float rounding, which would break the
        byte-identity contract between sharded and sequential runs.
        ``when`` must not lie in this simulator's past.
        """
        if when < self.now:
            raise SimulationError(
                "schedule_at(%r) is in the past (now=%r)" % (when, self.now))
        self._sequence = seq = self._sequence + 1
        heappush(self._calendar, (when, seq, _KIND_CALL1, call, arg))

    def run_window(self, horizon: float) -> int:
        """Process every record with ``when`` strictly below ``horizon``.

        The building block of conservative parallel runs: a shard may
        safely execute all events earlier than the synchronization
        horizon because no other shard can inject anything below it
        (cross-shard delivery takes at least the lookahead).  Unlike
        :meth:`run`'s inclusive ``until`` bound, the comparison here is
        strict — an event *on* the horizon belongs to the next window —
        and the clock is left at the last processed event, never
        advanced to the horizon (the next window's events may sort
        before it).  Returns the number of records dispatched, which
        the sharded driver aggregates into per-shard event rates.
        """
        calendar = self._calendar
        pop = heappop
        recorder = self.recorder
        count = 0
        while calendar:
            when = calendar[0][0]
            if when >= horizon:
                break
            record = pop(calendar)
            count += 1
            if when > self.now:
                self.now = when
            if recorder is not None:
                recorder.note_event(record)
            kind = record[2]
            target = record[3]
            if kind == 0:
                target._process()
            elif kind == 1:
                target(record[4])
            elif kind == 2:
                target._resume(record[4], None)
            elif kind == 3:
                target._resume(None, record[4])
            else:
                target()
        self._raise_unhandled()
        return count

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar empties or the clock reaches ``until``."""
        calendar = self._calendar
        pop = heappop
        recorder = self.recorder
        if until is None:
            while calendar:
                record = pop(calendar)
                when = record[0]
                if when > self.now:
                    self.now = when
                if recorder is not None:
                    recorder.note_event(record)
                kind = record[2]
                target = record[3]
                if kind == 0:
                    target._process()
                elif kind == 1:
                    target(record[4])
                elif kind == 2:
                    target._resume(record[4], None)
                elif kind == 3:
                    target._resume(None, record[4])
                else:
                    target()
        else:
            while calendar:
                when = calendar[0][0]
                if when > until:
                    self.now = until
                    break
                record = pop(calendar)
                if when > self.now:
                    self.now = when
                if recorder is not None:
                    recorder.note_event(record)
                kind = record[2]
                target = record[3]
                if kind == 0:
                    target._process()
                elif kind == 1:
                    target(record[4])
                elif kind == 2:
                    target._resume(record[4], None)
                elif kind == 3:
                    target._resume(None, record[4])
                else:
                    target()
            else:
                if until > self.now:
                    self.now = until
        self._raise_unhandled()

    def run_process(self, generator: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Spawn ``generator``, run to completion, and return its value.

        This is the main entry point used by workloads: it drives the whole
        simulation until the given process finishes (background processes
        may continue afterwards via :meth:`run`).

        With ``until`` set the run is additionally bounded by the clock,
        mirroring :meth:`run`: if the process has not finished when the
        clock reaches ``until``, the clock is left at ``until``, pending
        events stay on the calendar, and ``None`` is returned (the
        deadlock check only applies to unbounded runs).
        """
        proc = self.spawn(generator, name=name)
        calendar = self._calendar
        pop = heappop
        recorder = self.recorder
        if until is None:
            while calendar and not proc.triggered:
                record = pop(calendar)
                when = record[0]
                if when > self.now:
                    self.now = when
                if recorder is not None:
                    recorder.note_event(record)
                kind = record[2]
                target = record[3]
                if kind == 0:
                    target._process()
                elif kind == 1:
                    target(record[4])
                elif kind == 2:
                    target._resume(record[4], None)
                elif kind == 3:
                    target._resume(None, record[4])
                else:
                    target()
        else:
            while calendar and not proc.triggered:
                when = calendar[0][0]
                if when > until:
                    self.now = until
                    break
                record = pop(calendar)
                if when > self.now:
                    self.now = when
                if recorder is not None:
                    recorder.note_event(record)
                kind = record[2]
                target = record[3]
                if kind == 0:
                    target._process()
                elif kind == 1:
                    target(record[4])
                elif kind == 2:
                    target._resume(record[4], None)
                elif kind == 3:
                    target._resume(None, record[4])
                else:
                    target()
        self._raise_unhandled()
        if not proc.triggered:
            if until is not None:
                if until > self.now:
                    self.now = until
                return None
            raise SimulationError(
                "process %r deadlocked: calendar empty at t=%s" % (proc.name, self.now)
            )
        if proc.ok is False:
            proc.defused = True
            raise proc.value
        return proc.value

    # -- internal -------------------------------------------------------------

    def _schedule_call(self, call: Callable[[], None], delay: float = 0.0) -> None:
        """Schedule a zero-argument callable (compatibility entry point)."""
        self._sequence = seq = self._sequence + 1
        heappush(self._calendar, (self.now + delay, seq, _KIND_CALL, call, None))

    def _schedule_call1(self, call: Callable[[Any], None], arg: Any,
                        delay: float = 0.0) -> None:
        """Schedule ``call(arg)`` without allocating a closure."""
        self._sequence = seq = self._sequence + 1
        heappush(self._calendar, (self.now + delay, seq, _KIND_CALL1, call, arg))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._sequence = seq = self._sequence + 1
        heappush(self._calendar, (self.now + delay, seq, _KIND_EVENT, event, None))

    def _record_failure(self, event: Event) -> None:
        self._unhandled.append(event)

    def _raise_unhandled(self) -> None:
        if not self._unhandled:
            return
        # A failure recorded at processing time may have been handled
        # *afterwards* by a late waiter (Event.add_callback on an already-
        # processed event): the waiter defuses it, so it no longer counts
        # as unhandled.
        pending = [event for event in self._unhandled if not event.defused]
        self._unhandled = []
        if not pending:
            return
        event = pending[0]
        if isinstance(event.value, BaseException):
            raise event.value
        raise SimulationError("unhandled event failure: %r" % (event.value,))
