"""Sharded event calendars: conservative parallel discrete-event runs.

The flat calendar in :mod:`repro.sim.kernel` is single-threaded by
design; one big multi-client topology therefore runs on one core no
matter how many the host has.  This module partitions a simulation into
*shards* — each shard owns a private :class:`~repro.sim.Simulator`
(clock + calendar) — and advances them with the classic conservative
synchronization trick (Chandy–Misra–Bryant with a global window): a
cross-shard message takes at least the **lookahead** (the minimum
cross-shard link latency) to arrive, so every shard can safely execute
all events strictly below ``T_min + lookahead``, where ``T_min`` is the
earliest pending event anywhere.  Shards only synchronize at window
boundaries, where collected cross-shard messages are routed.

Determinism contract
--------------------
A sharded run is a pure function of its configuration:

* within a window each shard is the ordinary sequential kernel;
* collected cross-shard messages are injected in sorted
  ``(when, src_shard, src_seq)`` order, so destination-side ``seq``
  assignment — and therefore the equal-``when`` tie-break — is
  identical no matter which executor ran the window or how many
  workers it used (``sequential``, ``thread``, and ``fork`` executors
  all produce the same event sequence);
* with one shard there is no cross-shard traffic at all and the run is
  byte-identical to the plain kernel (the windowed loop pops the same
  records in the same order; windows never schedule anything).

Processes, ports, and phases
----------------------------
Work enters a shard three ways, all registered **before** the executor
starts (the ``fork`` executor inherits the closures via ``fork()``;
nothing but :class:`ShardMessage` payloads and collected stats ever
crosses a pipe):

* :meth:`Shard.bind` names a *port* — a one-argument callable (an inbox
  ``put``, typically) that cross-shard messages target;
* :meth:`Shard.add_phase` registers a workload *factory* (a zero-arg
  callable returning a generator) under a phase name;
  :meth:`ShardedSimulator.run_phase` spawns the factories and drives
  windows until every phase process on every shard has finished;
* :meth:`Shard.set_collector` registers the end-of-run stats closure,
  fetched by :meth:`ShardedSimulator.collect` (this is how results
  leave a forked worker).

The lookahead must be positive: a zero-latency cross-shard link gives
the window zero width, so construction raises instead of deadlocking.
``Shard.post`` refuses cross-shard sends with ``delay < lookahead`` for
the same reason; co-located sends (``dst == self``) may use any delay.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from .kernel import Process, SimulationError, Simulator

__all__ = [
    "ShardMessage",
    "Shard",
    "ShardedSimulator",
    "EXECUTORS",
    "default_parallel_executor",
]

EXECUTORS = ("sequential", "thread", "fork")


def default_parallel_executor() -> str:
    """``"fork"`` where the platform offers it (POSIX), else ``"thread"``."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "thread"


class ShardMessage:
    """One cross-shard delivery: call port ``port`` with ``payload`` at
    ``when`` on shard ``dst_shard``.

    ``(when, src_shard, src_seq)`` is the global injection sort key;
    ``sent`` (the sender's clock at post time) exists so the S407
    causality sanitizer can verify ``when - sent >= lookahead``.
    """

    __slots__ = ("when", "sent", "src_shard", "src_seq", "dst_shard",
                 "port", "payload")

    def __init__(self, when: float, sent: float, src_shard: int,
                 src_seq: int, dst_shard: int, port: str, payload: Any):
        self.when = when
        self.sent = sent
        self.src_shard = src_shard
        self.src_seq = src_seq
        self.dst_shard = dst_shard
        self.port = port
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return ("<ShardMessage %d->%d %s at t=%r>"
                % (self.src_shard, self.dst_shard, self.port, self.when))


def _message_key(message: ShardMessage) -> Tuple[float, int, int]:
    return (message.when, message.src_shard, message.src_seq)


class Shard:
    """One partition: a private simulator plus its cross-shard plumbing."""

    __slots__ = ("id", "nshards", "name", "sim", "lookahead", "ports",
                 "outbox", "_out_seq", "_phases", "_phase_procs",
                 "_collector")

    def __init__(self, shard_id: int, nshards: int, sim: Simulator,
                 lookahead: float, name: str = ""):
        self.id = shard_id
        self.nshards = nshards
        self.name = name or ("shard%d" % shard_id)
        self.sim = sim
        self.lookahead = lookahead
        self.ports: Dict[str, Callable[[Any], None]] = {}
        self.outbox: List[ShardMessage] = []
        self._out_seq = 0
        self._phases: Dict[str, List[Tuple[Callable[[], Generator], str]]] = {}
        self._phase_procs: List[Process] = []
        self._collector: Optional[Callable[[], Any]] = None

    # -- configuration (before the executor starts) ---------------------------

    def bind(self, port: str, handler: Callable[[Any], None]) -> None:
        """Register the delivery callable messages to ``port`` invoke."""
        if port in self.ports:
            raise ValueError("port %r already bound on %s" % (port, self.name))
        self.ports[port] = handler

    def add_phase(self, phase: str, factory: Callable[[], Generator],
                  name: str = "") -> None:
        """Register a workload factory spawned when ``phase`` starts."""
        self._phases.setdefault(phase, []).append((factory, name))

    def set_collector(self, fn: Callable[[], Any]) -> None:
        """Register the end-of-run stats closure for :meth:`collect`."""
        self._collector = fn

    # -- the shard boundary ---------------------------------------------------

    def post(self, dst: int, port: str, payload: Any, delay: float) -> None:
        """Send ``payload`` to ``port`` on shard ``dst``, ``delay`` from now.

        Co-located sends schedule directly on this shard's calendar
        (same record a :meth:`~repro.sim.Simulator._schedule_call1`
        would make, so a one-shard run matches the unsharded kernel).
        Cross-shard sends must respect the lookahead — that is the
        safety condition the whole windowed scheme rests on — and land
        in the outbox for routing at the next window boundary.
        """
        if delay < 0:
            raise ValueError("negative delay: %r" % (delay,))
        if dst == self.id:
            self.sim._schedule_call1(self.ports[port], payload, delay)
            return
        if not 0 <= dst < self.nshards:
            raise ValueError("destination shard %r out of range [0, %d)"
                             % (dst, self.nshards))
        if delay < self.lookahead:
            raise SimulationError(
                "cross-shard post %s->%d with delay %r below the lookahead "
                "%r: conservative windows would be unsafe"
                % (self.name, dst, delay, self.lookahead))
        now = self.sim.now
        self._out_seq = seq = self._out_seq + 1
        self.outbox.append(ShardMessage(
            now + delay, now, self.id, seq, dst, port, payload))

    # -- window execution (called by executors, possibly in a worker) ---------

    def _step(self, phase: Optional[str], messages: List[ShardMessage],
              horizon: Optional[float],
              advance: Optional[float] = None
              ) -> Tuple[int, Optional[float], bool,
                         int, List[ShardMessage], List[Any]]:
        """Inject ``messages``, start ``phase`` if given, run one window.

        ``advance`` (used by the end-of-phase barrier) moves the clock
        forward to the phase watermark after the window, so every shard
        begins the next phase at the same instant.

        Returns ``(shard_id, next_when, phase_done, records, outbox,
        findings)`` — everything the driver needs, in picklable form.
        """
        sim = self.sim
        ports = self.ports
        for message in messages:
            sim.schedule_at(message.when, ports[message.port],
                            message.payload)
        if phase is not None:
            self._phase_procs = [
                sim.spawn(factory(), name=name or "%s@%s" % (phase, self.name))
                for factory, name in self._phases.get(phase, ())
            ]
        count = sim.run_window(horizon) if horizon is not None else 0
        if advance is not None and advance > sim.now:
            sim.now = advance
        done = True
        for proc in self._phase_procs:
            if not proc.triggered:
                done = False
            elif proc.ok is False:
                proc.defused = True
                raise proc.value
        outbox = self.outbox
        self.outbox = []
        findings: List[Any] = []
        order = getattr(sim, "order_findings", None)
        if order:
            findings = list(order)
            del order[:]
        return (self.id, sim.peek(), done, count, outbox, findings)

    def _collect(self) -> Tuple[int, Any]:
        return (self.id,
                self._collector() if self._collector is not None else None)


# -- executors ----------------------------------------------------------------
# All three drive the same Shard._step; they differ only in *where* it
# runs.  Responses always come back in shard-id order, so the driver's
# merge is executor-independent.


class _SequentialExecutor:
    """Shards advanced one after another, in shard order: the reference."""

    def __init__(self, shards: List[Shard], jobs: Optional[int] = None):
        self._shards = shards

    def step_all(self, items):
        return [shard._step(*item)
                for shard, item in zip(self._shards, items)]

    def collect(self):
        return [shard._collect() for shard in self._shards]

    def close(self) -> None:
        pass


class _ThreadExecutor:
    """One window per shard on a thread pool.

    GIL-bound for pure-Python event loops (no wall-clock speedup), but
    it exercises the exact synchronization structure of the fork
    executor with zero pickling constraints, which makes it the default
    for in-process consumers like the sharded testbed.
    """

    def __init__(self, shards: List[Shard], jobs: Optional[int] = None):
        from concurrent.futures import ThreadPoolExecutor

        workers = len(shards) if jobs is None else max(1, min(jobs, len(shards)))
        self._shards = shards
        self._pool = ThreadPoolExecutor(max_workers=workers)

    def step_all(self, items):
        futures = [self._pool.submit(shard._step, *item)
                   for shard, item in zip(self._shards, items)]
        return [future.result() for future in futures]

    def collect(self):
        return [shard._collect() for shard in self._shards]

    def close(self) -> None:
        self._pool.shutdown()


def _fork_worker_main(shards: List[Shard], conn) -> None:
    """Worker loop: serve step/collect requests for this worker's shards.

    The worker was forked *after* shard configuration, so it inherited
    the generators, closures, and port handlers wholesale; only
    :class:`ShardMessage` lists, horizons, and collected stats cross
    the pipe.  A ``None`` request shuts the worker down.
    """
    table = {shard.id: shard for shard in shards}
    try:
        while True:
            request = conn.recv()
            if request is None:
                break
            if request[0] == "step":
                responses = [
                    table[shard_id]._step(phase, messages, horizon, advance)
                    for shard_id, phase, messages, horizon, advance
                    in request[1]]
                conn.send(("ok", responses))
            elif request[0] == "collect":
                conn.send(("ok", [shard._collect() for shard in shards]))
            else:  # pragma: no cover - protocol misuse
                raise ValueError("unknown request %r" % (request[0],))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


class _ForkExecutor:
    """Persistent forked workers: real multi-core parallelism.

    ``fork()`` (not spawn) on purpose: the children inherit the fully
    configured shards — live generators and all — so nothing
    unpicklable ever needs to cross a process boundary.  ``jobs`` caps
    the worker count; shards are assigned round-robin, and determinism
    does not depend on the assignment (each shard's window is
    self-contained).
    """

    def __init__(self, shards: List[Shard], jobs: Optional[int] = None):
        context = multiprocessing.get_context("fork")
        workers = len(shards) if jobs is None else max(1, min(jobs, len(shards)))
        self._groups: List[List[Shard]] = [[] for _ in range(workers)]
        for index, shard in enumerate(shards):
            self._groups[index % workers].append(shard)
        self._groups = [group for group in self._groups if group]
        self._conns = []
        self._procs = []
        for group in self._groups:
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(target=_fork_worker_main,
                                   args=(group, child_conn), daemon=True)
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def step_all(self, items):
        for conn, group in zip(self._conns, self._groups):
            conn.send(("step", [(shard.id,) + tuple(items[shard.id])
                                for shard in group]))
        by_id = {}
        for conn in self._conns:
            status, payload = conn.recv()
            if status != "ok":
                self.close()
                raise SimulationError("shard worker failed:\n" + payload)
            for response in payload:
                by_id[response[0]] = response
        return [by_id[index] for index in range(len(items))]

    def collect(self):
        for conn in self._conns:
            conn.send(("collect",))
        merged = []
        for conn in self._conns:
            status, payload = conn.recv()
            if status != "ok":
                self.close()
                raise SimulationError("shard worker failed:\n" + payload)
            merged.extend(payload)
        merged.sort(key=lambda pair: pair[0])
        return merged

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except OSError:
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
        self._conns = []
        self._procs = []


_EXECUTOR_CLASSES = {
    "sequential": _SequentialExecutor,
    "thread": _ThreadExecutor,
    "fork": _ForkExecutor,
}


class ShardedSimulator:
    """Drive ``nshards`` partitioned simulators with conservative windows.

    The synchronization loop per window: route the previous window's
    cross-shard messages (sorted, so injection is deterministic),
    compute ``T_min`` = the earliest pending event on any calendar or
    in flight, run every shard up to ``horizon = T_min + lookahead``
    (strictly below — an arrival *on* the horizon belongs to the next
    window), and collect the new outboxes.  Safety: a message posted at
    send time ``s >= T_min`` arrives at ``s + delay >= T_min +
    lookahead = horizon``, so no shard can receive anything below the
    window it is executing.

    ``san=True`` builds every shard on a
    :class:`~repro.check.simsan.CheckedSimulator` (per-shard S403 order
    verification) and adds the S407 cross-shard causality check at
    routing time; findings accumulate in :attr:`findings`.
    """

    def __init__(self, nshards: int, lookahead: float, san: bool = False,
                 executor: str = "sequential", jobs: Optional[int] = None,
                 heartbeat: Optional[Any] = None):
        if nshards < 1:
            raise ValueError("nshards must be >= 1, got %r" % (nshards,))
        if not lookahead > 0:
            raise ValueError(
                "lookahead must be positive, got %r: a zero-latency "
                "cross-shard link leaves the conservative window no room "
                "to run ahead (the horizon would have zero width and the "
                "run would deadlock); model at least the link's "
                "propagation delay" % (lookahead,))
        if executor not in EXECUTORS:
            raise ValueError("unknown executor %r; one of %s"
                             % (executor, EXECUTORS))
        self.lookahead = lookahead
        self.executor_kind = executor
        self.jobs = jobs
        self.san = san
        self.heartbeat = heartbeat
        self._finding_cls = None
        if san:
            from ..check.simsan import CheckedSimulator, Finding
            self._finding_cls = Finding
            sim_factory: Callable[[], Simulator] = CheckedSimulator
        else:
            sim_factory = Simulator
        self.shards = [Shard(index, nshards, sim_factory(), lookahead)
                       for index in range(nshards)]
        self.findings: List[Any] = []
        self.rounds = 0
        self.records_by_shard = [0] * nshards
        self.cross_messages = 0
        # Highest window horizon ever used: no clock passes it, no later
        # phase may schedule below it (see run_phase's barrier).
        self._watermark = 0.0
        self._executor = None

    # -- configuration --------------------------------------------------------

    def shard(self, index: int) -> Shard:
        return self.shards[index]

    def add_phase(self, phase: str, shard: int,
                  factory: Callable[[], Generator], name: str = "") -> None:
        """Convenience: register a workload factory on one shard."""
        self.shards[shard].add_phase(phase, factory, name=name)

    # -- driving --------------------------------------------------------------

    def _ensure_executor(self):
        if self._executor is None:
            self._executor = _EXECUTOR_CLASSES[self.executor_kind](
                self.shards, self.jobs)
        return self._executor

    def run_phase(self, phase: str) -> None:
        """Spawn ``phase``'s factories and window until they all finish.

        Background activity (periodic timers, parked servers) keeps its
        calendar entries, exactly like
        :meth:`~repro.sim.Simulator.run_process` — termination is the
        phase processes finishing, not calendar exhaustion.

        Phases compose: the loop maintains a monotonic horizon
        *watermark* — no shard's clock ever passes it, and horizons
        never regress below it.  When the phase's processes finish, the
        watermark freezes; remaining windows are clamped to it (so
        stragglers below it settle safely), in-flight messages at or
        above it are parked on their destination calendars, and every
        clock is advanced *to* the watermark.  The next phase therefore
        starts from one globally consistent instant, which is what
        makes back-to-back phases (mount, then a workload, then a
        quiesce) safe: without the barrier a shard that idled through
        one phase would still sit at an earlier time and could be sent
        messages arriving in another shard's past.
        """
        executor = self._ensure_executor()
        nshards = len(self.shards)
        responses = executor.step_all([(phase, [], None, None)] * nshards)
        pending: List[ShardMessage] = []
        t_end: Optional[float] = None
        while True:
            for (shard_id, _next_when, _done, count, outbox,
                 findings) in responses:
                self.records_by_shard[shard_id] += count
                pending.extend(outbox)
                if findings:
                    self.findings.extend(findings)
            all_done = all(response[2] for response in responses)
            if all_done and t_end is None:
                # Freeze the phase's end time.  Every clock is <= the
                # watermark, and (by the cross-phase invariant) so is no
                # pending event below it except stragglers we still owe
                # a clamped window.
                t_end = self._watermark
            whens = [response[1] for response in responses
                     if response[1] is not None]
            whens.extend(message.when for message in pending)
            if not whens:
                if all_done:
                    break
                raise SimulationError(
                    "sharded phase %r deadlocked: every calendar is empty "
                    "and no messages are in flight" % (phase,))
            t_min = min(whens)
            if t_end is not None and t_min >= t_end:
                # Settled: nothing left below the watermark.  Park the
                # in-flight messages (they all arrive at or above it)
                # and advance every clock to the barrier.
                break
            horizon = t_min + self.lookahead
            if t_end is not None and horizon > t_end:
                horizon = t_end
            self._watermark = horizon
            pending.sort(key=_message_key)
            route: List[List[ShardMessage]] = [[] for _ in range(nshards)]
            for message in pending:
                if self._finding_cls is not None:
                    self._check_causality(message, t_min)
                route[message.dst_shard].append(message)
            self.cross_messages += len(pending)
            pending = []
            self.rounds += 1
            if self.heartbeat is not None:
                self.heartbeat.maybe_beat(
                    t_min, sum(self.records_by_shard),
                    sum(len(shard.sim._calendar) for shard in self.shards))
            responses = executor.step_all(
                [(None, route[index], horizon, None)
                 for index in range(nshards)])
        # End-of-phase barrier: flush stragglers, align the clocks.
        pending.sort(key=_message_key)
        route = [[] for _ in range(nshards)]
        for message in pending:
            if self._finding_cls is not None:
                self._check_causality(message, t_end)
            route[message.dst_shard].append(message)
        self.cross_messages += len(pending)
        self.rounds += 1
        responses = executor.step_all(
            [(None, route[index], None, t_end) for index in range(nshards)])
        for shard_id, _next_when, _done, count, outbox, findings in responses:
            self.records_by_shard[shard_id] += count
            if outbox:  # pragma: no cover - a horizon-less step runs nothing
                raise SimulationError("barrier step produced messages")
            if findings:
                self.findings.extend(findings)

    def _check_causality(self, message: ShardMessage, t_min: float) -> None:
        """S407: a routed message must respect lookahead and the window."""
        finding = self._finding_cls
        if message.when - message.sent < self.lookahead * (1.0 - 1e-9):
            self.findings.append(finding(
                "S407",
                "cross-shard message %d->%d arrives %r after sending — "
                "below the lookahead %r"
                % (message.src_shard, message.dst_shard,
                   message.when - message.sent, self.lookahead)))
        if message.when < t_min:
            self.findings.append(finding(
                "S407",
                "cross-shard message %d->%d arrives at %r, before the "
                "window floor %r — conservative safety violated"
                % (message.src_shard, message.dst_shard, message.when,
                   t_min)))

    # -- results --------------------------------------------------------------

    def collect(self) -> Dict[int, Any]:
        """Fetch every shard's collector result, keyed by shard id.

        With the fork executor this is the *only* way state comes back
        from the workers: the parent's shard copies never ran.
        """
        return dict(self._ensure_executor().collect())

    def report(self) -> Dict[str, Any]:
        """Synchronization statistics for ``BENCH_storm.json``."""
        total = sum(self.records_by_shard)
        return {
            "shards": len(self.shards),
            "executor": self.executor_kind,
            "rounds": self.rounds,
            "records_by_shard": list(self.records_by_shard),
            "total_records": total,
            "cross_messages": self.cross_messages,
            "cross_fraction": (self.cross_messages / total) if total else 0.0,
            # Machine-independent parallelism bound: with perfect overlap
            # the wall clock is set by the busiest shard.
            "ideal_speedup": (total / max(self.records_by_shard)
                              if total and max(self.records_by_shard)
                              else 1.0),
        }

    def close(self) -> None:
        """Shut the executor down (terminates forked workers)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "ShardedSimulator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
