"""Command-line front end: regenerate any of the paper's artifacts.

Usage::

    python -m repro list
    python -m repro table2 [--depth 0 3]
    python -m repro table4 [--mb 16]
    python -m repro table5 [--transactions 8000] [--files 1000]
    python -m repro fig4 --op mkdir
    python -m repro fig6 [--mb 4]
    python -m repro fig7
    python -m repro sec7
    python -m repro quick

Each subcommand runs the corresponding experiment at a tractable scale and
prints the same rows the paper reports.  For the asserted paper-vs-measured
comparison, run the pytest benchmarks instead (see README).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.comparison import STACK_KINDS, make_stack


def _print_table(headers, rows):
    widths = [max(len(str(headers[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(headers))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def cmd_list(_args) -> int:
    print("stacks:     %s" % ", ".join(STACK_KINDS))
    print("artifacts:  table2 table3 table4 table5 table6 table7 table8")
    print("            table9 table10 fig3 fig4 fig5 fig6 fig7 sec7 quick")
    return 0


def cmd_quick(_args) -> int:
    for kind in STACK_KINDS:
        stack = make_stack(kind)
        client = stack.client

        def work(client=client):
            yield from client.mkdir("/d")
            fd = yield from client.creat("/d/f")
            yield from client.write(fd, 16_384)
            yield from client.close(fd)
            yield from client.stat("/d/f")

        snap = stack.snapshot()
        stack.run(work())
        stack.quiesce()
        delta = stack.delta(snap)
        print("%-14s msgs=%-5d bytes=%-8d t=%.2fms" % (
            kind, delta.messages, delta.total_bytes, stack.now * 1000))
    return 0


def cmd_table2(args) -> int:
    from .workloads import SYSCALL_OPS, run_syscall_table

    results = run_syscall_table(depths=tuple(args.depth), warm=args.warm)
    for depth in args.depth:
        print("\n%s cache, depth %d" % ("warm" if args.warm else "cold", depth))
        rows = [[op] + [results[depth][op][k]
                        for k in ("nfsv2", "nfsv3", "nfsv4", "iscsi")]
                for op in SYSCALL_OPS]
        _print_table(["syscall", "v2", "v3", "v4", "iscsi"], rows)
    return 0


def cmd_table4(args) -> int:
    from .workloads import SeqRandWorkload

    rows = []
    for kind in ("nfsv3", "iscsi"):
        workload = SeqRandWorkload(kind, file_mb=args.mb)
        for mode, result in (
            ("seq-read", workload.run_read(True)),
            ("rand-read", workload.run_read(False)),
            ("seq-write", workload.run_write(True)),
            ("rand-write", workload.run_write(False)),
        ):
            rows.append([kind, mode, "%.2fs" % result.completion_time,
                         result.messages, "%.1fMB" % (result.bytes / 1e6)])
    print("%d MB streaming I/O" % args.mb)
    _print_table(["stack", "mode", "time", "messages", "bytes"], rows)
    return 0


def cmd_table5(args) -> int:
    from .workloads import PostMark

    rows = []
    for kind in ("nfsv3", "nfs-enhanced", "iscsi"):
        result = PostMark(kind, file_count=args.files,
                          transactions=args.transactions).run()
        rows.append([kind, "%.2fs" % result.completion_time, result.messages,
                     "%.0f%%" % (result.server_cpu * 100),
                     "%.0f%%" % (result.client_cpu * 100)])
    print("PostMark: %d transactions, %d files" % (args.transactions, args.files))
    _print_table(["stack", "time", "messages", "srv CPU", "cli CPU"], rows)
    return 0


def cmd_table6(args) -> int:
    from .workloads import TpccWorkload

    rows = []
    base = None
    for kind in ("nfsv3", "iscsi"):
        result = TpccWorkload(kind, transactions=args.transactions).run()
        base = base or result.throughput
        rows.append([kind, "%.2f" % (result.throughput / base),
                     result.messages,
                     "%.0f%%" % (result.server_cpu * 100)])
    print("TPC-C-like OLTP: %d transactions" % args.transactions)
    _print_table(["stack", "tpmC (norm)", "messages", "srv CPU"], rows)
    return 0


def cmd_table7(args) -> int:
    from .workloads import TpchWorkload

    rows = []
    base = None
    for kind in ("nfsv3", "iscsi"):
        result = TpchWorkload(kind, queries=args.queries,
                              database_mb=args.mb).run()
        base = base or result.throughput
        rows.append([kind, "%.2f" % (result.throughput / base),
                     result.messages,
                     "%.0f%%" % (result.server_cpu * 100)])
    print("TPC-H-like DSS: %d queries over %d MB" % (args.queries, args.mb))
    _print_table(["stack", "QphH (norm)", "messages", "srv CPU"], rows)
    return 0


def cmd_table8(args) -> int:
    from .workloads import KernelTreeOps, TreeSpec

    spec = TreeSpec(top_dirs=args.dirs)
    rows = []
    for kind in ("nfsv3", "iscsi"):
        result = KernelTreeOps(kind, spec).run_all()
        rows.append([kind, "%.2fs" % result.tar_seconds,
                     "%.2fs" % result.ls_seconds,
                     "%.2fs" % result.make_seconds,
                     "%.2fs" % result.rm_seconds])
    print("kernel-tree ops (%d files)" % spec.total_files)
    _print_table(["stack", "tar", "ls -lR", "make", "rm -rf"], rows)
    return 0


def cmd_tables910(args) -> int:
    from .workloads import PostMark, TpccWorkload, TpchWorkload

    rows = []
    for kind in ("nfsv3", "iscsi"):
        pm = PostMark(kind, file_count=500,
                      transactions=args.transactions).run()
        cc = TpccWorkload(kind, transactions=max(200, args.transactions // 8)).run()
        ch = TpchWorkload(kind, queries=3, database_mb=96).run()
        rows.append([kind,
                     "%.0f%%/%.0f%%" % (pm.server_cpu * 100, pm.client_cpu * 100),
                     "%.0f%%/%.0f%%" % (cc.server_cpu * 100, cc.client_cpu * 100),
                     "%.0f%%/%.0f%%" % (ch.server_cpu * 100, ch.client_cpu * 100)])
    print("CPU utilization (server/client)")
    _print_table(["stack", "PostMark", "TPC-C", "TPC-H"], rows)
    return 0


def cmd_fig3(args) -> int:
    from .workloads import run_batching_sweep

    sweep = run_batching_sweep(args.op)
    _print_table(["batch", "msgs/op"],
                 [[n, "%.2f" % v] for n, v in sorted(sweep.items())])
    return 0


def cmd_fig4(args) -> int:
    from .workloads import run_depth_sweep

    rows = []
    depths = tuple(range(0, 17, 4))
    for kind in ("nfsv3", "nfsv4", "iscsi"):
        sweep = run_depth_sweep(args.op, kind, depths)
        rows.append([kind + " cold"] + [sweep[d] for d in depths])
    warm = run_depth_sweep(args.op, "iscsi", depths, warm=True)
    rows.append(["iscsi warm"] + [warm[d] for d in depths])
    print("messages vs depth [%s]" % args.op)
    _print_table(["series"] + ["d=%d" % d for d in depths], rows)
    return 0


def cmd_fig5(_args) -> int:
    from .workloads import run_io_size_sweep

    sizes = tuple(2 ** e for e in range(7, 17))
    for mode in ("cold-read", "warm-read", "cold-write"):
        print("\n%s" % mode)
        rows = []
        for kind in ("nfsv2", "nfsv3", "nfsv4", "iscsi"):
            sweep = run_io_size_sweep(kind, mode, sizes=sizes)
            rows.append([kind] + [sweep[s] for s in sizes])
        _print_table(["stack"] + [str(s) for s in sizes], rows)
    return 0


def cmd_fig6(args) -> int:
    from .workloads import SeqRandWorkload

    rtts = (0.010, 0.030, 0.050, 0.070, 0.090)
    for mode in ("read", "write"):
        print("\nsequential %ss of a %d MB file" % (mode, args.mb))
        rows = []
        for kind in ("nfsv3", "iscsi"):
            row = [kind]
            for rtt in rtts:
                workload = SeqRandWorkload(kind, file_mb=args.mb, rtt=rtt)
                result = (workload.run_read(True) if mode == "read"
                          else workload.run_write(True))
                row.append("%.1fs" % result.completion_time)
            rows.append(row)
        _print_table(["stack"] + ["%dms" % int(r * 1000) for r in rtts], rows)
    return 0


def cmd_fig7(_args) -> int:
    from .traces import (CAMPUS_PROFILE, EECS_PROFILE, TraceGenerator,
                         analyze_sharing)

    for profile in (EECS_PROFILE, CAMPUS_PROFILE):
        events = list(TraceGenerator(profile).events(limit=150_000))
        print("\n%s trace" % profile.name)
        rows = []
        for point in analyze_sharing(events):
            rows.append(["%.0f" % point.interval,
                         "%.3f" % point.read_by_one,
                         "%.3f" % point.read_by_multiple,
                         "%.3f" % point.written_by_one,
                         "%.3f" % point.written_by_multiple,
                         "%.3f" % point.read_write_shared])
        _print_table(["T", "r-by-1", "r-by-N", "w-by-1", "w-by-N", "rw"], rows)
    return 0


def cmd_sec7(_args) -> int:
    from .traces import EECS_PROFILE, TraceGenerator, sweep_cache_sizes

    events = list(TraceGenerator(EECS_PROFILE).events(limit=150_000))
    rows = []
    for size, result in sorted(sweep_cache_sizes(events).items()):
        rows.append([size, result.baseline_messages, result.consistent_messages,
                     "%.1f%%" % (result.reduction * 100),
                     "%.1e" % result.callback_ratio])
    print("strongly-consistent meta-data cache (EECS-like trace)")
    _print_table(["cache", "baseline", "consistent", "reduction", "cb ratio"],
                 rows)
    return 0


# -- trace: the simulated-Ethereal front end ------------------------------------------


def _workload_smoke(client):
    """A handful of syscalls touching every layer once."""
    yield from client.mkdir("/d")
    fd = yield from client.creat("/d/f")
    yield from client.write(fd, 16_384)
    yield from client.fsync(fd)
    yield from client.pread(fd, 4096, 0)
    yield from client.close(fd)
    yield from client.stat("/d/f")


def _workload_postmark(client, files=20, transactions=60, seed=42):
    """A small PostMark-like mix: create pool, transact, delete pool."""
    import random

    from .fs.vfs import O_RDWR

    rng = random.Random(seed)
    yield from client.mkdir("/pm")
    names = []
    for index in range(files):
        name = "/pm/f%03d" % index
        fd = yield from client.creat(name)
        yield from client.pwrite(fd, rng.randrange(512, 16_384), 0)
        yield from client.close(fd)
        names.append(name)
    serial = files
    for _ in range(transactions):
        choice = rng.randrange(4)
        if choice == 0 and names:  # read a whole file
            fd = yield from client.open(rng.choice(names))
            attrs = yield from client.fstat(fd)
            yield from client.pread(fd, attrs.size, 0)
            yield from client.close(fd)
        elif choice == 1 and names:  # append
            fd = yield from client.open(rng.choice(names), O_RDWR)
            attrs = yield from client.fstat(fd)
            yield from client.pwrite(fd, rng.randrange(512, 8192), attrs.size)
            yield from client.close(fd)
        elif choice == 2:  # create
            name = "/pm/f%03d" % serial
            serial += 1
            fd = yield from client.creat(name)
            yield from client.pwrite(fd, rng.randrange(512, 16_384), 0)
            yield from client.close(fd)
            names.append(name)
        elif names:  # delete
            victim = names.pop(rng.randrange(len(names)))
            yield from client.unlink(victim)
    for name in names:
        yield from client.unlink(name)
    yield from client.rmdir("/pm")


def _make_io_workload(sequential: bool, write: bool, file_mb: int = 2):
    """Sequential/random whole-file reader or writer over 64 KB requests."""

    def workload(client):
        import random

        from .fs.vfs import O_RDWR

        request = 64 * 1024
        size = file_mb * 1024 * 1024
        offsets = list(range(0, size, request))
        fd = yield from client.creat("/io")
        yield from client.pwrite(fd, size, 0)
        yield from client.fsync(fd)
        if not sequential:
            random.Random(7).shuffle(offsets)
        for offset in offsets:
            if write:
                yield from client.pwrite(fd, request, offset)
            else:
                yield from client.pread(fd, request, offset)
        yield from client.close(fd)

    return workload


TRACE_WORKLOADS = {
    "smoke": _workload_smoke,
    "postmark": _workload_postmark,
    "seqread": _make_io_workload(sequential=True, write=False),
    "randread": _make_io_workload(sequential=False, write=False),
    "seqwrite": _make_io_workload(sequential=True, write=True),
    "randwrite": _make_io_workload(sequential=False, write=True),
}


def _run_traced(kind: str, workload: str):
    stack = make_stack(kind, trace=True)
    stack.run(TRACE_WORKLOADS[workload](stack.client))
    stack.quiesce()
    return stack


def cmd_trace(args) -> int:
    from .obs import (format_op_summary, render_span_tree,
                      render_timeline_diff, write_chrome_trace,
                      write_packet_trace)

    stack = _run_traced(args.stack, args.workload)
    tracer = stack.tracer
    if args.diff:
        other = _run_traced(args.diff, args.workload)
        print(render_timeline_diff(tracer, args.stack,
                                   other.tracer, args.diff,
                                   limit=args.limit))
        print()
    if args.out:
        write_chrome_trace(tracer, args.out)
        print("chrome trace: %s (open in chrome://tracing or Perfetto)"
              % args.out)
    if args.jsonl:
        write_packet_trace(tracer, args.jsonl)
        print("packet trace: %s" % args.jsonl)
    if args.tree:
        print(render_span_tree(tracer))
        print()
    print("%s on %s: %d spans, %d messages, %.2f simulated ms" % (
        args.workload, args.stack, len(tracer.spans), len(tracer.messages),
        stack.now * 1000))
    print()
    print(format_op_summary(tracer))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from the FAST'04 NFS-vs-iSCSI paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list").set_defaults(func=cmd_list)
    sub.add_parser("quick").set_defaults(func=cmd_quick)

    t2 = sub.add_parser("table2")
    t2.add_argument("--depth", type=int, nargs="+", default=[0, 3])
    t2.set_defaults(func=cmd_table2, warm=False)
    t3 = sub.add_parser("table3")
    t3.add_argument("--depth", type=int, nargs="+", default=[0])
    t3.set_defaults(func=cmd_table2, warm=True)

    t4 = sub.add_parser("table4")
    t4.add_argument("--mb", type=int, default=16)
    t4.set_defaults(func=cmd_table4)

    t5 = sub.add_parser("table5")
    t5.add_argument("--transactions", type=int, default=5000)
    t5.add_argument("--files", type=int, default=1000)
    t5.set_defaults(func=cmd_table5)

    t6 = sub.add_parser("table6")
    t6.add_argument("--transactions", type=int, default=1000)
    t6.set_defaults(func=cmd_table6)

    t7 = sub.add_parser("table7")
    t7.add_argument("--queries", type=int, default=4)
    t7.add_argument("--mb", type=int, default=128)
    t7.set_defaults(func=cmd_table7)

    t8 = sub.add_parser("table8")
    t8.add_argument("--dirs", type=int, default=12)
    t8.set_defaults(func=cmd_table8)

    t9 = sub.add_parser("table9")
    t9.add_argument("--transactions", type=int, default=4000)
    t9.set_defaults(func=cmd_tables910)
    t10 = sub.add_parser("table10")
    t10.add_argument("--transactions", type=int, default=4000)
    t10.set_defaults(func=cmd_tables910)

    f3 = sub.add_parser("fig3")
    f3.add_argument("--op", default="mkdir")
    f3.set_defaults(func=cmd_fig3)

    f4 = sub.add_parser("fig4")
    f4.add_argument("--op", default="mkdir")
    f4.set_defaults(func=cmd_fig4)

    sub.add_parser("fig5").set_defaults(func=cmd_fig5)

    f6 = sub.add_parser("fig6")
    f6.add_argument("--mb", type=int, default=4)
    f6.set_defaults(func=cmd_fig6)

    sub.add_parser("fig7").set_defaults(func=cmd_fig7)
    sub.add_parser("sec7").set_defaults(func=cmd_sec7)

    tr = sub.add_parser(
        "trace",
        help="run a workload with tracing on and export/inspect the trace",
    )
    tr.add_argument("workload", choices=sorted(TRACE_WORKLOADS))
    tr.add_argument("--stack", choices=STACK_KINDS, default="nfsv3")
    tr.add_argument("--out", metavar="FILE",
                    help="write a Chrome trace_event JSON file")
    tr.add_argument("--jsonl", metavar="FILE",
                    help="write the Ethereal-style packet trace (JSON lines)")
    tr.add_argument("--diff", metavar="KIND", choices=STACK_KINDS,
                    help="also run KIND and print a side-by-side "
                         "protocol timeline")
    tr.add_argument("--tree", action="store_true",
                    help="print the causal span tree")
    tr.add_argument("--limit", type=int, default=60,
                    help="max rows in --diff output (0 = all)")
    tr.set_defaults(func=cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
