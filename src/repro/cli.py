"""Command-line front end: regenerate any of the paper's artifacts.

Usage::

    python -m repro list
    python -m repro all [--jobs N] [--no-cache]
    python -m repro table2 [--depth 0 3] [--jobs N]
    python -m repro table4 [--mb 16] [--jobs N]
    python -m repro table5 [--transactions 8000] [--files 1000]
    python -m repro fig4 --op mkdir
    python -m repro fig6 [--mb 4]
    python -m repro fig7
    python -m repro sec7
    python -m repro quick [--san] [--telemetry] [--shards 1]
    python -m repro scale [--clients 256] [--shards 1 4] [--reference]
    python -m repro scale --farm [--nclients 64 256 1024] [--servers 1 4]
    python -m repro scale --compare BASELINE.json CURRENT.json
    python -m repro faults <workload> [--stack KIND ...] [--plan P ...]
    python -m repro trace <workload> [--stack KIND] [--out FILE] [--tree]
    python -m repro bench [--suite quick] [--out FILE] [--jobs N]
    python -m repro bench --compare OLD.json NEW.json [--format text|json]
    python -m repro dash <workload> [--stack KIND ...] [--html FILE]
    python -m repro explain <workload> [--stack-a KIND] [--stack-b KIND]
    python -m repro explain <workload> --bench-a OLD.json --bench-b NEW.json
    python -m repro lint [paths ...] [--format text|json]

Each artifact subcommand runs the corresponding experiment at a tractable
scale and prints the same rows the paper reports.  Under the hood every
artifact is a list of pure experiment *cells* (one stack x workload x
parameter point) executed by the
:class:`~repro.core.runner.ExperimentRunner`: pass ``--jobs N`` to fan
the cells out over N worker processes — the merged output is
byte-identical to a serial run.  ``repro all`` regenerates the whole
paper in one go and additionally backs the cells with the on-disk result
cache (``--no-cache`` disables it), so an unchanged cell costs a file
read on re-run.

``trace`` records and exports a run; ``bench`` runs the regression
suites (see the README's "Profiling & benchmarking" section); ``repro
list`` enumerates every subcommand.  For the asserted paper-vs-measured
comparison, run the pytest benchmarks instead (see README).

``lint`` runs the simulator-discipline linter (repro.check.simlint)
over source trees; ``--san`` on the workload-running subcommands
(quick, trace, bench, faults) attaches the runtime sanitizers
(repro.check.simsan) — checks observe without perturbing, so sanitized
outputs are bit-identical to unsanitized ones.

``dash`` renders per-tier utilization/queue-depth timelines from the
streaming telemetry layer (repro.obs.telemetry) as an ASCII dashboard
(plus ``--html`` self-contained export); ``--telemetry`` on quick,
bench, and faults carries the same collector alongside the normal run —
rollups and watcher findings are summarized on stderr while stdout and
``BENCH_*.json`` stay byte-identical.  ``repro all`` additionally
prints run heartbeats (cells done, cache hits, wall rate) to stderr.

``scale`` exercises the sharded event calendar (repro.sim.shard): it
sweeps shard counts over a fixed multi-client storm, certifies every
timed run against a pure sequential cell (stdout prints only the
partition-invariant metrics, so ``--shards 1`` output is byte-identical
to ``--reference``), and writes wall-clock speedup plus the
machine-independent synchronization stats to ``BENCH_storm.json``.
``scale --farm`` sweeps the protocol-aware server farm
(repro.sim.farm) instead — ``nclients`` (to 1k+) x ``servers``
(pNFS-style striped exports) x ``connections`` (MC/S channels) x
``sharing`` — and writes a schema-2 document whose every field is
simulated outcome, byte-comparable across hosts (``scale --compare``
diffs two such documents exactly).
``--shards 1`` on quick/table2/table3/table4 rebuilds each stack on a
one-shard calendar placement — output must stay byte-identical to the
flat kernel.

``explain`` is the differential-diagnosis front end
(repro.obs.explain): it runs one workload on two stacks — or loads the
same case from two ``BENCH_*.json`` files — and reports where the
completion-time delta comes from (per-layer attribution summing exactly
to the total, per-op message drift, queueing deltas, ranked blame) as
text, JSON, or self-contained HTML.  ``bench --compare`` appends the
same report for every regressed case.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from .core.comparison import STACK_KINDS, make_stack
from .core.runner import Cell, ExperimentRunner
from .obs.bench import SUITES as BENCH_SUITES
from .obs.bench import WORKLOADS as TRACE_WORKLOADS


def _print_table(headers, rows):
    widths = [max(len(str(headers[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(headers))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def _cell(kind: str, /, **params: Any) -> Cell:
    """A cell with a canonical id derived from its kind and params."""
    spec = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return Cell("%s?%s" % (kind, spec), kind, params)


def _runner(args) -> ExperimentRunner:
    """Build the runner an artifact subcommand asked for.

    Individual artifact commands parallelize with ``--jobs`` but never
    touch the cache; only ``repro all`` (and ``bench --cache``) uses the
    on-disk result cache.
    """
    return ExperimentRunner(jobs=getattr(args, "jobs", None),
                            use_cache=False)


def iter_subcommands() -> List[str]:
    """Every registered CLI subcommand, sorted (the discoverability
    contract checked by ``tests/test_public_api.py``)."""
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return sorted(action.choices)
    return []


def cmd_list(_args) -> int:
    print("stacks:     %s" % ", ".join(STACK_KINDS))
    print("artifacts:  table2 table3 table4 table5 table6 table7 table8")
    print("            table9 table10 fig3 fig4 fig5 fig6 fig7 sec7 quick")
    print("tools:      trace (record/export a run)  "
          "bench (regression suites)")
    print("            faults (degraded-mode scenarios)  "
          "all (every artifact, parallel + cached)")
    print("            dash (streaming-telemetry dashboards)  "
          "lint (simulator-discipline linter)")
    print("            explain (differential diagnosis of two runs)")
    print("            scale (shard-count sweep -> BENCH_storm.json; "
          "--farm server-farm matrix -> BENCH_scale.json over "
          "nclients x servers x connections x sharing)")
    print("            --san arms the runtime sanitizers; "
          "--telemetry attaches streaming rollups")
    print("commands:   %s" % " ".join(iter_subcommands()))
    return 0


# -- artifact cells + renderers -----------------------------------------------
# Every artifact is (a) a list of pure runner cells and (b) a renderer
# that formats the merged results.  The cells functions are the single
# source of truth for ids, so renderers look results up by regenerating
# the same cells.

SYSCALL_KINDS = ("nfsv2", "nfsv3", "nfsv4", "iscsi")
TABLE4_MODES = ("seq-read", "rand-read", "seq-write", "rand-write")
FIG3_BATCHES = (1, 4, 16, 64, 256, 1024)
FIG4_DEPTHS = tuple(range(0, 17, 4))
FIG5_SIZES = tuple(2 ** e for e in range(7, 17))
FIG6_RTTS = (0.010, 0.030, 0.050, 0.070, 0.090)
TRACE_LIMIT = 150_000


def cells_quick(san: bool = False, telemetry: bool = False,
                shards: int = 0) -> List[Cell]:
    cells = []
    for kind in STACK_KINDS:
        params: Dict[str, Any] = {"kind": kind}
        if san:
            params["san"] = True
        if telemetry:
            params["telemetry"] = True
        if shards:
            # Conditional, like san/telemetry: the default cell ids (and
            # the cache keys behind BENCH_quick.json) stay unchanged.
            params["shards"] = shards
        cells.append(_cell("quick", **params))
    return cells


def render_quick(results, san: bool = False, telemetry: bool = False,
                 shards: int = 0) -> None:
    for cell in cells_quick(san, telemetry, shards):
        record = results[cell.id]
        print("%-14s msgs=%-5d bytes=%-8d t=%.2fms" % (
            cell.params["kind"], record["messages"], record["bytes"],
            record["now_s"] * 1000))


def cells_syscalls(depths: Tuple[int, ...], warm: bool,
                   shards: int = 0) -> List[Cell]:
    cells = []
    for depth in depths:
        for kind in SYSCALL_KINDS:
            params: Dict[str, Any] = {"kind": kind, "depth": depth,
                                      "warm": warm}
            if shards:
                params["shards"] = shards
            cells.append(_cell("syscall_table", **params))
    return cells


def render_syscalls(results, depths: Tuple[int, ...], warm: bool,
                    shards: int = 0) -> None:
    from .workloads import SYSCALL_OPS

    for depth in depths:
        print("\n%s cache, depth %d" % ("warm" if warm else "cold", depth))
        rows = []
        for op in SYSCALL_OPS:
            row = [op]
            for kind in SYSCALL_KINDS:
                params: Dict[str, Any] = {"kind": kind, "depth": depth,
                                          "warm": warm}
                if shards:
                    params["shards"] = shards
                cell = _cell("syscall_table", **params)
                row.append(results[cell.id][op])
            rows.append(row)
        _print_table(["syscall", "v2", "v3", "v4", "iscsi"], rows)


def cells_table4(mb: int = 16, shards: int = 0) -> List[Cell]:
    # One cell per stack covering all four modes: the workload's shuffle
    # RNG is shared across the modes, so they must run in one process.
    cells = []
    for kind in ("nfsv3", "iscsi"):
        params: Dict[str, Any] = {"kind": kind, "mb": mb}
        if shards:
            params["shards"] = shards
        cells.append(_cell("seqrand_table", **params))
    return cells


def render_table4(results, mb: int = 16, shards: int = 0) -> None:
    rows = []
    for cell in cells_table4(mb, shards):
        by_mode = results[cell.id]
        for mode in TABLE4_MODES:
            record = by_mode[mode]
            rows.append([cell.params["kind"], mode,
                         "%.2fs" % record["completion_time"],
                         record["messages"],
                         "%.1fMB" % (record["bytes"] / 1e6)])
    print("%d MB streaming I/O" % mb)
    _print_table(["stack", "mode", "time", "messages", "bytes"], rows)


def cells_table5(transactions: int = 5000, files: int = 1000) -> List[Cell]:
    return [_cell("postmark", kind=kind, files=files,
                  transactions=transactions)
            for kind in ("nfsv3", "nfs-enhanced", "iscsi")]


def render_table5(results, transactions: int = 5000,
                  files: int = 1000) -> None:
    rows = []
    for cell in cells_table5(transactions, files):
        record = results[cell.id]
        rows.append([cell.params["kind"],
                     "%.2fs" % record["completion_time"],
                     record["messages"],
                     "%.0f%%" % (record["server_cpu"] * 100),
                     "%.0f%%" % (record["client_cpu"] * 100)])
    print("PostMark: %d transactions, %d files" % (transactions, files))
    _print_table(["stack", "time", "messages", "srv CPU", "cli CPU"], rows)


def cells_table6(transactions: int = 1000) -> List[Cell]:
    return [_cell("tpcc", kind=kind, transactions=transactions)
            for kind in ("nfsv3", "iscsi")]


def render_table6(results, transactions: int = 1000) -> None:
    rows = []
    base = None
    for cell in cells_table6(transactions):
        record = results[cell.id]
        base = base or record["throughput"]
        rows.append([cell.params["kind"],
                     "%.2f" % (record["throughput"] / base),
                     record["messages"],
                     "%.0f%%" % (record["server_cpu"] * 100)])
    print("TPC-C-like OLTP: %d transactions" % transactions)
    _print_table(["stack", "tpmC (norm)", "messages", "srv CPU"], rows)


def cells_table7(queries: int = 4, mb: int = 128) -> List[Cell]:
    return [_cell("tpch", kind=kind, queries=queries, mb=mb)
            for kind in ("nfsv3", "iscsi")]


def render_table7(results, queries: int = 4, mb: int = 128) -> None:
    rows = []
    base = None
    for cell in cells_table7(queries, mb):
        record = results[cell.id]
        base = base or record["throughput"]
        rows.append([cell.params["kind"],
                     "%.2f" % (record["throughput"] / base),
                     record["messages"],
                     "%.0f%%" % (record["server_cpu"] * 100)])
    print("TPC-H-like DSS: %d queries over %d MB" % (queries, mb))
    _print_table(["stack", "QphH (norm)", "messages", "srv CPU"], rows)


def cells_table8(dirs: int = 12) -> List[Cell]:
    return [_cell("kernel_tree", kind=kind, dirs=dirs)
            for kind in ("nfsv3", "iscsi")]


def render_table8(results, dirs: int = 12) -> None:
    rows = []
    total_files = 0
    for cell in cells_table8(dirs):
        record = results[cell.id]
        total_files = record["total_files"]
        rows.append([cell.params["kind"],
                     "%.2fs" % record["tar_seconds"],
                     "%.2fs" % record["ls_seconds"],
                     "%.2fs" % record["make_seconds"],
                     "%.2fs" % record["rm_seconds"]])
    print("kernel-tree ops (%d files)" % total_files)
    _print_table(["stack", "tar", "ls -lR", "make", "rm -rf"], rows)


def cells_tables910(transactions: int = 4000) -> List[Cell]:
    cells = []
    for kind in ("nfsv3", "iscsi"):
        cells.append(_cell("postmark", kind=kind, files=500,
                           transactions=transactions))
        cells.append(_cell("tpcc", kind=kind,
                           transactions=max(200, transactions // 8)))
        cells.append(_cell("tpch", kind=kind, queries=3, mb=96))
    return cells


def render_tables910(results, transactions: int = 4000) -> None:
    rows = []
    for kind in ("nfsv3", "iscsi"):
        pm = results[_cell("postmark", kind=kind, files=500,
                           transactions=transactions).id]
        cc = results[_cell("tpcc", kind=kind,
                           transactions=max(200, transactions // 8)).id]
        ch = results[_cell("tpch", kind=kind, queries=3, mb=96).id]
        rows.append([kind,
                     "%.0f%%/%.0f%%" % (pm["server_cpu"] * 100,
                                        pm["client_cpu"] * 100),
                     "%.0f%%/%.0f%%" % (cc["server_cpu"] * 100,
                                        cc["client_cpu"] * 100),
                     "%.0f%%/%.0f%%" % (ch["server_cpu"] * 100,
                                        ch["client_cpu"] * 100)])
    print("CPU utilization (server/client)")
    _print_table(["stack", "PostMark", "TPC-C", "TPC-H"], rows)


def cells_fig3(op: str = "mkdir") -> List[Cell]:
    return [_cell("batching", op=op, batch=batch) for batch in FIG3_BATCHES]


def render_fig3(results, op: str = "mkdir") -> None:
    rows = [[cell.params["batch"], "%.2f" % results[cell.id]]
            for cell in cells_fig3(op)]
    _print_table(["batch", "msgs/op"], rows)


def cells_fig4(op: str = "mkdir") -> List[Cell]:
    cells = [_cell("depth_point", op=op, kind=kind, depth=depth, warm=False)
             for kind in ("nfsv3", "nfsv4", "iscsi")
             for depth in FIG4_DEPTHS]
    cells.extend(_cell("depth_point", op=op, kind="iscsi", depth=depth,
                       warm=True)
                 for depth in FIG4_DEPTHS)
    return cells


def render_fig4(results, op: str = "mkdir") -> None:
    rows = []
    for kind in ("nfsv3", "nfsv4", "iscsi"):
        rows.append([kind + " cold"] + [
            results[_cell("depth_point", op=op, kind=kind, depth=depth,
                          warm=False).id]
            for depth in FIG4_DEPTHS])
    rows.append(["iscsi warm"] + [
        results[_cell("depth_point", op=op, kind="iscsi", depth=depth,
                      warm=True).id]
        for depth in FIG4_DEPTHS])
    print("messages vs depth [%s]" % op)
    _print_table(["series"] + ["d=%d" % d for d in FIG4_DEPTHS], rows)


def cells_fig5() -> List[Cell]:
    return [_cell("io_size_point", kind=kind, mode=mode, size=size)
            for mode in ("cold-read", "warm-read", "cold-write")
            for kind in SYSCALL_KINDS
            for size in FIG5_SIZES]


def render_fig5(results) -> None:
    for mode in ("cold-read", "warm-read", "cold-write"):
        print("\n%s" % mode)
        rows = []
        for kind in SYSCALL_KINDS:
            rows.append([kind] + [
                results[_cell("io_size_point", kind=kind, mode=mode,
                              size=size).id]
                for size in FIG5_SIZES])
        _print_table(["stack"] + [str(s) for s in FIG5_SIZES], rows)


def cells_fig6(mb: int = 4) -> List[Cell]:
    return [_cell("seqrand", kind=kind, mode=mode, mb=mb, rtt=rtt)
            for mode in ("seq-read", "seq-write")
            for kind in ("nfsv3", "iscsi")
            for rtt in FIG6_RTTS]


def render_fig6(results, mb: int = 4) -> None:
    for mode, label in (("seq-read", "read"), ("seq-write", "write")):
        print("\nsequential %ss of a %d MB file" % (label, mb))
        rows = []
        for kind in ("nfsv3", "iscsi"):
            row = [kind]
            for rtt in FIG6_RTTS:
                record = results[_cell("seqrand", kind=kind, mode=mode,
                                       mb=mb, rtt=rtt).id]
                row.append("%.1fs" % record["completion_time"])
            rows.append(row)
        _print_table(["stack"] + ["%dms" % int(r * 1000) for r in FIG6_RTTS],
                     rows)


def cells_fig7() -> List[Cell]:
    return [_cell("sharing", profile=profile, limit=TRACE_LIMIT)
            for profile in ("eecs", "campus")]


def render_fig7(results) -> None:
    from .traces import CAMPUS_PROFILE, EECS_PROFILE

    names = {"eecs": EECS_PROFILE.name, "campus": CAMPUS_PROFILE.name}
    for cell in cells_fig7():
        print("\n%s trace" % names[cell.params["profile"]])
        rows = []
        for point in results[cell.id]:
            rows.append(["%.0f" % point["interval"],
                         "%.3f" % point["read_by_one"],
                         "%.3f" % point["read_by_multiple"],
                         "%.3f" % point["written_by_one"],
                         "%.3f" % point["written_by_multiple"],
                         "%.3f" % point["read_write_shared"]])
        _print_table(["T", "r-by-1", "r-by-N", "w-by-1", "w-by-N", "rw"],
                     rows)


def cells_sec7() -> List[Cell]:
    return [_cell("metadata_cache", limit=TRACE_LIMIT)]


def render_sec7(results) -> None:
    sweep = results[cells_sec7()[0].id]
    rows = []
    for size in sorted(sweep, key=int):
        record = sweep[size]
        rows.append([int(size), record["baseline_messages"],
                     record["consistent_messages"],
                     "%.1f%%" % (record["reduction"] * 100),
                     "%.1e" % record["callback_ratio"]])
    print("strongly-consistent meta-data cache (EECS-like trace)")
    _print_table(["cache", "baseline", "consistent", "reduction", "cb ratio"],
                 rows)


# -- artifact commands ----------------------------------------------------------------


def _telemetry_summary(runner: ExperimentRunner) -> None:
    """Status lines for a telemetry-carrying run — stderr only, so every
    stdout/JSON artifact stays byte-identical to a plain run."""
    snapshot = runner.telemetry
    if snapshot is None:
        return
    print("telemetry: %d series, %d samples, %d cells"
          % (len(snapshot["series"]), snapshot["samples"],
             len(runner.telemetry_by_cell)), file=sys.stderr)
    if snapshot["findings"]:
        for code, series, message in snapshot["findings"]:
            print("telemetry %s %s: %s" % (code, series, message),
                  file=sys.stderr)
    else:
        print("telemetry watchers: clean (queue growth, pegged "
              "utilization, progress stall)", file=sys.stderr)


def cmd_quick(args) -> int:
    san = getattr(args, "san", False)
    telemetry = getattr(args, "telemetry", False)
    shards = getattr(args, "shards", 0)
    runner = _runner(args)
    render_quick(runner.run(cells_quick(san, telemetry, shards)),
                 san, telemetry, shards)
    if san:
        # stderr, so the table on stdout stays bit-identical to a
        # non-sanitized run (the sanitizer contract).
        print("sanitizers: clean (deadlock, leaks, event order, "
              "message/reply/task conservation)", file=sys.stderr)
    if telemetry:
        _telemetry_summary(runner)
    return 0


def cmd_table2(args) -> int:
    depths = tuple(args.depth)
    shards = getattr(args, "shards", 0)
    results = _runner(args).run(cells_syscalls(depths, args.warm, shards))
    render_syscalls(results, depths, args.warm, shards)
    return 0


def cmd_table4(args) -> int:
    shards = getattr(args, "shards", 0)
    render_table4(_runner(args).run(cells_table4(args.mb, shards)),
                  args.mb, shards)
    return 0


def cmd_table5(args) -> int:
    results = _runner(args).run(cells_table5(args.transactions, args.files))
    render_table5(results, args.transactions, args.files)
    return 0


def cmd_table6(args) -> int:
    results = _runner(args).run(cells_table6(args.transactions))
    render_table6(results, args.transactions)
    return 0


def cmd_table7(args) -> int:
    results = _runner(args).run(cells_table7(args.queries, args.mb))
    render_table7(results, args.queries, args.mb)
    return 0


def cmd_table8(args) -> int:
    render_table8(_runner(args).run(cells_table8(args.dirs)), args.dirs)
    return 0


def cmd_tables910(args) -> int:
    results = _runner(args).run(cells_tables910(args.transactions))
    render_tables910(results, args.transactions)
    return 0


def cmd_fig3(args) -> int:
    render_fig3(_runner(args).run(cells_fig3(args.op)), args.op)
    return 0


def cmd_fig4(args) -> int:
    render_fig4(_runner(args).run(cells_fig4(args.op)), args.op)
    return 0


def cmd_fig5(args) -> int:
    render_fig5(_runner(args).run(cells_fig5()))
    return 0


def cmd_fig6(args) -> int:
    render_fig6(_runner(args).run(cells_fig6(args.mb)), args.mb)
    return 0


def cmd_fig7(args) -> int:
    render_fig7(_runner(args).run(cells_fig7()))
    return 0


def cmd_sec7(args) -> int:
    render_sec7(_runner(args).run(cells_sec7()))
    return 0


# -- scale: the shard-sweep speedup harness ------------------------------------------


def cmd_scale(args) -> int:
    """Sweep shard counts over one multi-client storm; write BENCH_storm.json.

    stdout carries only the partition-invariant storm metrics
    (completed/records/makespan), certified by one pure ``scale_point``
    runner cell, so CI can ``cmp`` a ``--shards 1`` run against the
    ``--reference`` run (the flat, unsharded kernel) — that is the
    byte-identity contract.  The timed sweep reports to stderr and
    ``--out`` only, because wall-clock speedup depends on the host's
    core count; ``ideal_speedup`` and ``cross_fraction`` in the JSON
    are the machine-independent numbers.

    ``--farm`` switches to the server-farm sweep (:mod:`repro.sim.farm`)
    over ``nclients x servers x connections x sharing``; its stdout rows
    and its schema-2 document are pure simulated outcome under the same
    byte-identity contract (``--shards 1`` == ``--reference``, and the
    document diffs exactly across hosts via ``--compare``).
    """
    import os
    import time

    from .sim.perf import run_shard_storm
    from .sim.shard import default_parallel_executor

    if args.compare:
        from .obs.bench import compare_scale_documents, load_bench
        try:
            baseline = load_bench(args.compare[0])
            current = load_bench(args.compare[1])
        except (OSError, ValueError) as exc:
            print("scale: cannot read document: %s" % exc, file=sys.stderr)
            return 2
        problems = compare_scale_documents(baseline, current)
        for problem in problems:
            print("scale: %s" % problem)
        print("scale: %s"
              % ("documents diverged (%d problems)" % len(problems)
                 if problems else "documents identical"))
        return 1 if problems else 0
    if args.out is None:
        # Per-mode defaults: the committed BENCH_scale.json is the farm
        # matrix, so the storm (whose wall-clock figures are
        # host-dependent) must not clobber it by default.
        args.out = "BENCH_scale.json" if args.farm else "BENCH_storm.json"
    if args.farm:
        return _cmd_scale_farm(args)
    if args.clients % args.groups:
        print("scale: --clients must be a multiple of --groups",
              file=sys.stderr)
        return 2
    clients_per_group = args.clients // args.groups
    shard_counts = [1] if args.reference else list(args.shards)

    # The certified point: a pure runner cell (always sequential — its
    # metrics are the reference every timed run must reproduce exactly).
    nshards = 0 if args.reference else shard_counts[0]
    cell = _cell("scale_point", groups=args.groups,
                 clients_per_group=clients_per_group,
                 requests=args.requests, nshards=nshards)
    record = ExperimentRunner(jobs=None, use_cache=False).run([cell])[cell.id]
    print("shard storm: clients=%d groups=%d requests_per_client=%d"
          % (record["clients"], args.groups, args.requests))
    print("completed=%d records=%d makespan=%r"
          % (record["completed"], record["records"], record["makespan"]))
    if args.reference:
        return 0

    executor = args.executor or default_parallel_executor()
    points = []
    for count in shard_counts:
        best = None
        report = None
        for _ in range(args.repeat):
            start = time.perf_counter()  # simlint: disable=D101 -- measures host runtime of the harness, not sim time
            result = run_shard_storm(
                groups=args.groups, clients_per_group=clients_per_group,
                requests=args.requests, nshards=count,
                executor=executor, jobs=args.jobs)
            wall = time.perf_counter() - start  # simlint: disable=D101 -- measures host runtime of the harness, not sim time
            for key in ("completed", "records", "makespan"):
                if result[key] != record[key]:
                    print("scale: shards=%d %s=%r diverged from the "
                          "certified cell (%r)"
                          % (count, key, result[key], record[key]),
                          file=sys.stderr)
                    return 1
            if best is None or wall < best:
                best = wall
                report = result["report"]
        points.append({
            "shards": count,
            "wall_s": best,
            "events_per_s": (record["records"] / best) if best else 0.0,
            "rounds": report["rounds"],
            "records_by_shard": report["records_by_shard"],
            "cross_messages": report["cross_messages"],
            "cross_fraction": report["cross_fraction"],
            "ideal_speedup": report["ideal_speedup"],
        })
    base = next((p["wall_s"] for p in points if p["shards"] == 1),
                points[0]["wall_s"])
    for point in points:
        point["speedup_vs_1"] = (base / point["wall_s"]
                                 if point["wall_s"] else 1.0)
        print("scale: shards=%d wall=%.3fs speedup=%.2fx ideal=%.2fx "
              "cross=%.3f rounds=%d"
              % (point["shards"], point["wall_s"], point["speedup_vs_1"],
                 point["ideal_speedup"], point["cross_fraction"],
                 point["rounds"]), file=sys.stderr)

    document = {
        "schema": 1,
        "config": {
            "clients": args.clients,
            "groups": args.groups,
            "clients_per_group": clients_per_group,
            "requests_per_client": args.requests,
            "executor": executor,
            "jobs": args.jobs,
            "repeat": args.repeat,
        },
        "metrics": {
            "completed": record["completed"],
            "records": record["records"],
            "makespan": record["makespan"],
        },
        "host": {"cpus": os.cpu_count()},
        "points": points,
        "note": "wall_s/speedup_vs_1 depend on host cpus; ideal_speedup "
                "and cross_fraction are machine-independent",
    }
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("scale: wrote %s (host cpus=%s)" % (args.out, os.cpu_count()),
          file=sys.stderr)
    return 0


def _cmd_scale_farm(args) -> int:
    """The ``repro scale --farm`` sweep: a grid of certified farm cells.

    Every point is one pure ``farm_point`` runner cell (sequential
    executor; ``nshards`` from ``--shards``/``--reference``), so the
    grid parallelizes over ``--jobs`` and caches under ``--cache``
    without touching the outcome.  stdout rows and the written document
    carry only machine-independent simulated figures.
    """
    from .obs.bench import SCALE_SCHEMA_VERSION

    for flag, values in (("--nclients", args.nclients),
                         ("--servers", args.servers),
                         ("--connections", args.connections)):
        for value in values:
            if value < 1:
                print("scale: %s values must be >= 1 (got %d)"
                      % (flag, value), file=sys.stderr)
                return 2
    if not 0.0 <= args.sharing <= 1.0:
        print("scale: --sharing must be in [0, 1] (got %r)"
              % (args.sharing,), file=sys.stderr)
        return 2
    if any(count < 1 for count in args.shards):
        print("scale: --shards values must be >= 1 (the flat reference "
              "is --reference)", file=sys.stderr)
        return 2
    nshards = 0 if args.reference else args.shards[0]
    runner = ExperimentRunner(jobs=args.jobs, use_cache=args.cache)
    cells = []
    for protocol in args.protocol:
        for nservers in args.servers:
            for connections in args.connections:
                for nclients in args.nclients:
                    # Sharing is an NFS-only axis: iSCSI volumes are
                    # single-client by design (Section 2.3).
                    sharing = args.sharing if protocol == "nfs" else 0.0
                    cells.append(_cell(
                        "farm_point", protocol=protocol, nclients=nclients,
                        nservers=nservers, connections=connections,
                        sharing=sharing, requests=args.requests,
                        nshards=nshards))
    results = runner.run(cells)
    points = []
    for cell in cells:
        record = results[cell.id]
        print("farm %s: clients=%d servers=%d conn=%d sharing=%r "
              "completed=%d makespan=%r messages=%d throughput=%r"
              % (record["protocol"], record["clients"], record["servers"],
                 record["connections"], record["sharing"],
                 record["completed"], record["makespan"],
                 record["messages"], record["throughput"]))
        point = dict(record)
        point["id"] = "%s/s%d/x%d/n%d" % (
            record["protocol"], record["servers"], record["connections"],
            record["clients"])
        points.append(point)
    if args.reference:
        return 0
    document = {
        "schema": SCALE_SCHEMA_VERSION,
        "kind": "farm",
        "config": {
            "protocols": list(args.protocol),
            "nclients": list(args.nclients),
            "servers": list(args.servers),
            "connections": list(args.connections),
            "sharing": args.sharing,
            "requests_per_client": args.requests,
        },
        "points": points,
        "series": _farm_series(points),
        "note": "every field is deterministic simulated outcome; "
                "documents diff exactly across hosts via "
                "`repro scale --compare`",
    }
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("scale: wrote %s (%d farm points)" % (args.out, len(points)),
          file=sys.stderr)
    return 0


def _farm_series(points) -> dict:
    """Scaling laws per (protocol, servers, connections) series.

    ``efficiency`` is each point's per-client throughput relative to the
    smallest farm in its series; ``saturation_clients`` is the first
    farm size past the knee (efficiency < 0.5, i.e. adding clients has
    stopped adding proportional throughput); ``message_exponent`` is the
    least-squares slope of ln(messages) over ln(clients) — 1.0 means
    per-client message cost is flat, above it the protocol pays a
    growing coordination tax.
    """
    import math

    groups: dict = {}
    for point in points:
        key = "%s/s%d/x%d" % (point["protocol"], point["servers"],
                              point["connections"])
        groups.setdefault(key, []).append(point)
    series = {}
    for key, members in sorted(groups.items()):
        members = sorted(members, key=lambda point: point["clients"])
        base = members[0]
        per_client_base = base["throughput"] / base["clients"]
        efficiency = []
        saturation = None
        for point in members:
            relative = round((point["throughput"] / point["clients"])
                             / per_client_base, 6)
            efficiency.append([point["clients"], relative])
            if saturation is None and relative < 0.5:
                saturation = point["clients"]
        exponent = None
        if len(members) > 1:
            log_clients = [math.log(point["clients"]) for point in members]
            log_messages = [math.log(point["messages"]) for point in members]
            mean_x = sum(log_clients) / len(log_clients)
            mean_y = sum(log_messages) / len(log_messages)
            denominator = sum((x - mean_x) ** 2 for x in log_clients)
            if denominator:
                exponent = round(
                    sum((x - mean_x) * (y - mean_y)
                        for x, y in zip(log_clients, log_messages))
                    / denominator, 6)
        series[key] = {
            "efficiency": efficiency,
            "saturation_clients": saturation,
            "message_exponent": exponent,
        }
    return series


# -- all: the whole paper in one run -------------------------------------------------

# Section order mirrors the paper; table9/table10 share one cell set.
ALL_SECTIONS: Tuple[Tuple[str, Any, Any], ...] = (
    ("quick", cells_quick, render_quick),
    ("table2", lambda: cells_syscalls((0, 3), False),
     lambda results: render_syscalls(results, (0, 3), False)),
    ("table3", lambda: cells_syscalls((0,), True),
     lambda results: render_syscalls(results, (0,), True)),
    ("table4", cells_table4, render_table4),
    ("table5", cells_table5, render_table5),
    ("table6", cells_table6, render_table6),
    ("table7", cells_table7, render_table7),
    ("table8", cells_table8, render_table8),
    ("table9/table10", cells_tables910, render_tables910),
    ("fig3", cells_fig3, render_fig3),
    ("fig4", cells_fig4, render_fig4),
    ("fig5", cells_fig5, render_fig5),
    ("fig6", cells_fig6, render_fig6),
    ("fig7", cells_fig7, render_fig7),
    ("sec7", cells_sec7, render_sec7),
)


def all_cells() -> List[Cell]:
    """Every cell of every section, deduplicated, in section order."""
    cells: List[Cell] = []
    seen = set()
    for _name, cells_fn, _render in ALL_SECTIONS:
        for cell in cells_fn():
            if cell.id not in seen:
                seen.add(cell.id)
                cells.append(cell)
    return cells


def cmd_all(args) -> int:
    # Heartbeats keep long --jobs runs from looking hung; they go to
    # stderr, so the artifact output on stdout is unchanged.
    runner = ExperimentRunner(jobs=args.jobs, use_cache=not args.no_cache,
                              heartbeat=True)
    results = runner.run(all_cells())
    for name, _cells_fn, render in ALL_SECTIONS:
        print("\n== %s ==" % name)
        render(results)
    print("\n%d cells (%d cached, %d computed), jobs=%s"
          % (runner.cache_hits + runner.cache_misses, runner.cache_hits,
             runner.cache_misses, args.jobs or 1))
    return 0


# -- trace: the simulated-Ethereal front end ------------------------------------------
# The workload drivers are shared with `repro bench` and live in
# repro.obs.bench (imported above as TRACE_WORKLOADS).


def _run_traced(kind: str, workload: str, san: bool = False):
    stack = make_stack(kind, trace=True, san=san)
    stack.run(TRACE_WORKLOADS[workload](stack.client))
    stack.quiesce()
    stack.check()
    return stack


def cmd_trace(args) -> int:
    from .obs import (format_op_summary, render_span_tree,
                      render_timeline_diff, write_chrome_trace,
                      write_packet_trace)

    stack = _run_traced(args.stack, args.workload, san=args.san)
    tracer = stack.tracer
    if args.diff:
        other = _run_traced(args.diff, args.workload, san=args.san)
        print(render_timeline_diff(tracer, args.stack,
                                   other.tracer, args.diff,
                                   limit=args.limit))
        print()
    if args.out:
        write_chrome_trace(tracer, args.out)
        print("chrome trace: %s (open in chrome://tracing or Perfetto)"
              % args.out)
    if args.jsonl:
        write_packet_trace(tracer, args.jsonl)
        print("packet trace: %s" % args.jsonl)
    if args.tree:
        print(render_span_tree(tracer))
        print()
    print("%s on %s: %d spans, %d messages, %.2f simulated ms" % (
        args.workload, args.stack, len(tracer.spans), len(tracer.messages),
        stack.now * 1000))
    print()
    print(format_op_summary(tracer))
    return 0


# -- faults: degraded-mode scenario tables --------------------------------------------


def _plan_param(plan: str) -> Any:
    """Resolve a CLI plan reference into a JSON-pure cell parameter.

    Preset names (and "none") pass through as strings — readable cell
    ids, stable cache keys.  A file path is loaded here so the cell
    itself stays a pure function of its JSON params.
    """
    from .faults import PRESETS, resolve_plan

    if plan == "none" or plan in PRESETS:
        return plan
    return resolve_plan(plan).to_spec()


def _fault_digest(record: Dict[str, Any]) -> str:
    """Compact message-fault summary for one scenario row."""
    faults = record.get("faults")
    if not faults:
        return "-"
    parts = ["%s=%d" % (name.split(".", 1)[1], count)
             for name, count in sorted(faults.get("counts", {}).items())
             if name.startswith("msg.")]
    return " ".join(parts) if parts else "-"


def _recovery_digest(record: Dict[str, Any]) -> str:
    """Compact recovery-machinery summary for one scenario row."""
    recovery = record.get("recovery", {})
    labels = (("server_restarts", "restart"), ("relogins", "relogin"),
              ("requeued_commands", "requeue"), ("degraded_reads", "deg-rd"),
              ("degraded_writes", "deg-wr"), ("rebuild_writes", "rebuild"))
    parts = ["%s=%d" % (label, recovery[key])
             for key, label in labels if recovery.get(key)]
    return " ".join(parts) if parts else "-"


def cmd_faults(args) -> int:
    stacks = tuple(args.stack)
    plans = ["none"] + [plan for plan in args.plan if plan != "none"]

    def scenario_cell(kind: str, plan: str) -> Cell:
        params: Dict[str, Any] = dict(
            kind=kind, workload=args.workload,
            plan=_plan_param(plan), seed=args.seed)
        if args.san:
            params["san"] = True
        if args.telemetry:
            params["telemetry"] = True
        return _cell("faults_scenario", **params)

    labeled = [
        (kind, plan, scenario_cell(kind, plan))
        for kind in stacks
        for plan in plans
    ]
    runner = _runner(args)
    results = runner.run([cell for _kind, _plan, cell in labeled])
    rows = []
    baseline: Dict[str, float] = {}
    for kind, plan, cell in labeled:
        record = results[cell.id]
        # Total simulated time (workload + quiesce): fault windows often
        # overlap the flush traffic, not just the foreground phase.
        elapsed = record["total_time_s"]
        if plan == "none":
            baseline[kind] = elapsed
        base = baseline.get(kind, 0.0)
        rows.append([
            kind, plan, "%.3fs" % elapsed,
            "%.2fx" % (elapsed / base) if base else "-",
            record["messages"], record["retransmissions"],
            _fault_digest(record), _recovery_digest(record),
        ])
    print("%s under fault plans (seed %d)" % (args.workload, args.seed))
    _print_table(
        ["stack", "plan", "time", "vs none", "messages", "retrans",
         "faults", "recovery"],
        rows)
    if args.san:
        # Report mode: a faulted run legitimately abandons exchanges, so
        # findings are informational here (stderr keeps the table clean).
        for kind, plan, cell in labeled:
            findings = results[cell.id].get("sanitizer") or []
            print("san %s/%s: %s" % (
                kind, plan,
                "clean" if not findings else "; ".join(
                    "[%s] %s" % (f["code"], f["message"])
                    for f in findings)), file=sys.stderr)
    if args.telemetry:
        _telemetry_summary(runner)
    return 0


# -- bench: the regression harness ----------------------------------------------------


def cmd_bench(args) -> int:
    from .obs import bench

    if args.compare:
        baseline = bench.load_bench(args.compare[0])
        current = bench.load_bench(args.compare[1])
        regressions, notes = bench.compare(
            baseline, current, tolerance=args.tolerance)
        if args.format == "json":
            # Machine-readable for CI annotations; same exit semantics.
            sys.stdout.write(bench.format_compare_json(regressions, notes))
        else:
            print(bench.format_compare(regressions, notes))
            _print_compare_explain(baseline, current, regressions)
        return 1 if regressions else 0
    runner = ExperimentRunner(jobs=args.jobs, use_cache=args.cache)
    result = bench.run_suite(args.suite, runner=runner, san=args.san,
                             telemetry=args.telemetry)
    rows = []
    for case in sorted(result["cases"]):
        record = result["cases"][case]
        rows.append([case, "%.3fs" % record["completion_time_s"],
                     record["messages"],
                     "%.1fMB" % (record["bytes"] / 1e6)])
    print("suite %r (schema %d)" % (args.suite, result["schema"]))
    _print_table(["case", "time", "messages", "bytes"], rows)
    out = args.out or ("BENCH_%s.json" % args.suite)
    bench.write_bench(result, out)
    print("\nwrote %s" % out)
    if args.telemetry:
        _telemetry_summary(runner)
    return 0


def _print_compare_explain(baseline: Dict[str, Any], current: Dict[str, Any],
                           regressions: List[Dict[str, Any]]) -> None:
    """Append one differential-diagnosis report per regressed case.

    Only cases present in both documents can be diffed (schema or
    presence regressions have nothing to attribute), and each case is
    explained once even if several metrics regressed on it.
    """
    from .obs.explain import explain_runs, format_explain, side_from_bench

    old_cases = baseline.get("cases", {})
    new_cases = current.get("cases", {})
    seen = set()
    for entry in regressions:
        case = entry["case"]
        if case in seen or case not in old_cases or case not in new_cases:
            continue
        seen.add(case)
        report = explain_runs(
            side_from_bench(old_cases[case], label="baseline:%s" % case),
            side_from_bench(new_cases[case], label="current:%s" % case))
        print()
        print(format_explain(report), end="")


# -- explain: the differential-diagnosis front end ------------------------------------


def cmd_explain(args) -> int:
    from .obs import explain as ex

    if bool(args.bench_a) != bool(args.bench_b):
        print("explain: --bench-a and --bench-b must be given together",
              file=sys.stderr)
        return 2
    if args.bench_a:
        # Offline mode: diff one case out of two recorded bench documents.
        import os

        from .obs import bench

        sides = []
        for path, stack in ((args.bench_a, args.stack_a),
                            (args.bench_b, args.stack_b)):
            doc = bench.load_bench(path)
            case = "%s/%s" % (args.workload, stack)
            record = doc.get("cases", {}).get(case)
            if record is None:
                print("explain: case %r not in %s (cases: %s)"
                      % (case, path,
                         ", ".join(sorted(doc.get("cases", {}))) or "none"),
                      file=sys.stderr)
                return 2
            sides.append(ex.side_from_bench(
                record, label="%s:%s" % (os.path.basename(path), case)))
        report = ex.explain_runs(sides[0], sides[1], top=args.top)
    else:
        # Live mode: one runner cell runs both sides and diffs them.
        cell = _cell("explain_pair", workload=args.workload,
                     stack_a=args.stack_a, stack_b=args.stack_b,
                     telemetry=bool(args.telemetry), top=args.top)
        report = _runner(args).run([cell])[cell.id]
    if args.format == "json":
        text = ex.format_explain_json(report)
    elif args.format == "html":
        text = ex.render_explain_html(report)
    else:
        text = ex.format_explain(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print("wrote %s" % args.out)
    else:
        sys.stdout.write(text)
    return 0


# -- dash: streaming-telemetry dashboards ---------------------------------------------


def cmd_dash(args) -> int:
    from .obs.dashboard import render_dashboard, write_html

    cells = [_cell("telemetry_run", kind=kind, workload=args.workload,
                   heartbeat=bool(args.heartbeat))
             for kind in args.stack]
    runner = _runner(args)
    runner.run(cells)
    sections: List[Tuple[str, Dict[str, Any]]] = []
    for cell in cells:
        title = "%s on %s" % (args.workload, cell.params["kind"])
        snapshot = runner.telemetry_by_cell[cell.id]
        sections.append((title, snapshot))
        print(render_dashboard(snapshot, title=title, width=args.width))
    if len(cells) > 1:
        # The runner's deterministic cross-cell aggregate: what a
        # fan-out over many clients/cells would report as one fleet.
        title = "%s merged across %d stacks" % (args.workload, len(cells))
        sections.append((title, runner.telemetry))
        print(render_dashboard(runner.telemetry, title=title,
                               width=args.width))
    if args.html:
        write_html(args.html, sections,
                   title="repro dash: %s" % args.workload)
        print("html dashboard: %s" % args.html)
    return 0


# -- lint: the simulator-discipline linter --------------------------------------------


def cmd_lint(args) -> int:
    from .check import simlint

    paths = args.paths
    if not paths:
        # Default: lint the installed package's own source tree.
        import os

        paths = [os.path.dirname(os.path.abspath(__file__))]

    if args.debt:
        suppressions = simlint.collect_suppressions(paths)
        print(simlint.format_debt(suppressions))
        # A suppression without a written reason is debt that fails CI.
        return 1 if any(not s.reason for s in suppressions) else 0

    if args.fix:
        from .check import fixer

        fixed = fixer.fix_paths(paths)
        for path in sorted(fixed):
            print("fixed %s: %d rewrite%s"
                  % (path, fixed[path], "" if fixed[path] == 1 else "s"))
        if not fixed:
            print("nothing to fix")

    violations = simlint.lint_paths(paths)
    if args.format == "json":
        print(simlint.format_json(violations))
    elif args.format == "sarif":
        from .check import sarif

        print(sarif.format_sarif(violations))
    else:
        print(simlint.format_text(violations))
    return 1 if violations else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from the FAST'04 NFS-vs-iSCSI paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared by every artifact subcommand: process-pool fan-out.
    jobs_parent = argparse.ArgumentParser(add_help=False)
    jobs_parent.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run experiment cells on N worker processes "
             "(default: serial in-process; output is identical)")

    # Shared by every workload-running subcommand: runtime sanitizers.
    san_parent = argparse.ArgumentParser(add_help=False)
    san_parent.add_argument(
        "--san", action="store_true",
        help="run under the repro.check.simsan runtime sanitizers "
             "(deadlock/leak/order/conservation checks; observe-only, "
             "output stays byte-identical)")

    # Shared by quick/bench/faults: the streaming telemetry layer.
    telem_parent = argparse.ArgumentParser(add_help=False)
    telem_parent.add_argument(
        "--telemetry", action="store_true",
        help="attach the repro.obs.telemetry streaming collector "
             "(bounded-memory rollups + invariant watchers); summary on "
             "stderr, stdout/JSON output stays byte-identical)")

    # Shared by quick/table2/table3/table4: sharded-calendar placement.
    shards_parent = argparse.ArgumentParser(add_help=False)
    shards_parent.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="build each stack on an N-shard placement; N=1 is the "
             "byte-identity check against the flat kernel (a single "
             "stack is one shard — multi-shard sweeps live under "
             "'repro scale'; default: flat)")

    sub.add_parser("list").set_defaults(func=cmd_list)
    sub.add_parser(
        "quick", parents=[jobs_parent, san_parent, telem_parent,
                          shards_parent],
    ).set_defaults(func=cmd_quick)

    al = sub.add_parser(
        "all", parents=[jobs_parent],
        help="regenerate every table and figure (parallel, cached)",
    )
    al.add_argument("--no-cache", action="store_true",
                    help="recompute every cell, ignoring the result cache")
    al.set_defaults(func=cmd_all)

    t2 = sub.add_parser("table2", parents=[jobs_parent, shards_parent])
    t2.add_argument("--depth", type=int, nargs="+", default=[0, 3])
    t2.set_defaults(func=cmd_table2, warm=False)
    t3 = sub.add_parser("table3", parents=[jobs_parent, shards_parent])
    t3.add_argument("--depth", type=int, nargs="+", default=[0])
    t3.set_defaults(func=cmd_table2, warm=True)

    t4 = sub.add_parser("table4", parents=[jobs_parent, shards_parent])
    t4.add_argument("--mb", type=int, default=16)
    t4.set_defaults(func=cmd_table4)

    t5 = sub.add_parser("table5", parents=[jobs_parent])
    t5.add_argument("--transactions", type=int, default=5000)
    t5.add_argument("--files", type=int, default=1000)
    t5.set_defaults(func=cmd_table5)

    t6 = sub.add_parser("table6", parents=[jobs_parent])
    t6.add_argument("--transactions", type=int, default=1000)
    t6.set_defaults(func=cmd_table6)

    t7 = sub.add_parser("table7", parents=[jobs_parent])
    t7.add_argument("--queries", type=int, default=4)
    t7.add_argument("--mb", type=int, default=128)
    t7.set_defaults(func=cmd_table7)

    t8 = sub.add_parser("table8", parents=[jobs_parent])
    t8.add_argument("--dirs", type=int, default=12)
    t8.set_defaults(func=cmd_table8)

    t9 = sub.add_parser("table9", parents=[jobs_parent])
    t9.add_argument("--transactions", type=int, default=4000)
    t9.set_defaults(func=cmd_tables910)
    t10 = sub.add_parser("table10", parents=[jobs_parent])
    t10.add_argument("--transactions", type=int, default=4000)
    t10.set_defaults(func=cmd_tables910)

    f3 = sub.add_parser("fig3", parents=[jobs_parent])
    f3.add_argument("--op", default="mkdir")
    f3.set_defaults(func=cmd_fig3)

    f4 = sub.add_parser("fig4", parents=[jobs_parent])
    f4.add_argument("--op", default="mkdir")
    f4.set_defaults(func=cmd_fig4)

    sub.add_parser("fig5", parents=[jobs_parent]).set_defaults(func=cmd_fig5)

    f6 = sub.add_parser("fig6", parents=[jobs_parent])
    f6.add_argument("--mb", type=int, default=4)
    f6.set_defaults(func=cmd_fig6)

    sub.add_parser("fig7", parents=[jobs_parent]).set_defaults(func=cmd_fig7)
    sub.add_parser("sec7", parents=[jobs_parent]).set_defaults(func=cmd_sec7)

    from .sim.shard import EXECUTORS

    sc = sub.add_parser(
        "scale",
        help="sweep shard counts on the multi-client storm, or (--farm) "
             "sweep a protocol-aware server farm over nclients x servers "
             "x connections x sharing; write BENCH_scale.json",
        description="Two sweep families share this command. The default "
                    "storm sweeps shard counts over the hub/client "
                    "kernel benchmark and reports wall-clock speedup. "
                    "--farm instead sweeps the protocol-aware farm "
                    "(repro.sim.farm) over four axes: --nclients (farm "
                    "size, to 1k+ clients), --servers (pNFS-style "
                    "striped exports; server 0 is the metadata server), "
                    "--connections (MC/S-style concurrent channels per "
                    "client), and --sharing (fraction of NFS requests "
                    "hitting a shared file pool; ignored by iscsi, whose "
                    "volumes are single-client). Farm output is pure "
                    "simulated outcome, byte-comparable across hosts; "
                    "--compare OLD NEW diffs two farm documents exactly.")
    sc.add_argument("--clients", type=int, default=256,
                    help="total storm clients (default 256)")
    sc.add_argument("--groups", type=int, default=8,
                    help="hub groups to partition over shards (default 8)")
    sc.add_argument("--requests", type=int, default=20,
                    help="requests per client (default 20)")
    sc.add_argument("--shards", type=int, nargs="+", default=[1, 4],
                    metavar="N", help="shard counts to sweep (default: 1 4)")
    sc.add_argument("--executor", choices=EXECUTORS, default=None,
                    help="shard executor (default: fork on POSIX, "
                         "else thread)")
    sc.add_argument("--jobs", type=int, default=None, metavar="N",
                    help="executor workers (default: one per shard, "
                         "capped at the CPU count)")
    sc.add_argument("--repeat", type=int, default=3,
                    help="timed runs per point; best-of wall clock "
                         "(default 3)")
    sc.add_argument("--out", default=None,
                    help="result file (default BENCH_storm.json for the "
                         "kernel storm, BENCH_scale.json for --farm)")
    sc.add_argument("--reference", action="store_true",
                    help="run the flat (unsharded) reference kernel, print "
                         "the invariant metrics, and skip the timed sweep")
    sc.add_argument("--farm", action="store_true",
                    help="sweep the protocol-aware server farm instead of "
                         "the kernel storm (axes: --nclients --servers "
                         "--connections --sharing)")
    sc.add_argument("--protocol", nargs="+", choices=("nfs", "iscsi"),
                    default=["nfs", "iscsi"], metavar="PROTO",
                    help="farm protocols to sweep (default: nfs iscsi)")
    sc.add_argument("--nclients", type=int, nargs="+",
                    default=[64, 256, 1024], metavar="N",
                    help="farm sizes to sweep (default: 64 256 1024)")
    sc.add_argument("--servers", type=int, nargs="+", default=[1, 4],
                    metavar="M",
                    help="server counts; NFS stripes one namespace over "
                         "all M exports pNFS-style (default: 1 4)")
    sc.add_argument("--connections", type=int, nargs="+", default=[1, 4],
                    metavar="K",
                    help="concurrent channels per client, the MC/S axis "
                         "(default: 1 4)")
    sc.add_argument("--sharing", type=float, default=0.25,
                    help="fraction of NFS requests hitting the shared "
                         "file pool, in [0, 1] (default 0.25)")
    sc.add_argument("--cache", action="store_true",
                    help="reuse cached farm cells ($REPRO_CACHE_DIR)")
    sc.add_argument("--compare", nargs=2, metavar=("BASELINE", "CURRENT"),
                    help="exact-diff two farm scale documents and exit "
                         "(1 if they diverge)")
    sc.set_defaults(func=cmd_scale)

    fl = sub.add_parser(
        "faults", parents=[jobs_parent, san_parent, telem_parent],
        help="run a workload under fault plans and tabulate the "
             "degraded-mode cost (completion time, messages, recovery)",
    )
    fl.add_argument("workload", choices=sorted(TRACE_WORKLOADS))
    fl.add_argument("--stack", nargs="+", choices=STACK_KINDS,
                    default=["nfsv3", "iscsi"], metavar="KIND",
                    help="stack kinds to compare (default: nfsv3 iscsi)")
    fl.add_argument("--plan", nargs="+", default=["loss2"], metavar="PLAN",
                    help="fault plans: a preset name (see repro.faults."
                         "PRESETS, e.g. loss2 loss10 dup5 reorder10 flap "
                         "degrade slow-disk disk-fail crash) or a JSON "
                         "plan file; an unfaulted baseline always runs")
    fl.add_argument("--seed", type=int, default=0,
                    help="RNG seed for probabilistic faults (default 0)")
    fl.set_defaults(func=cmd_faults)

    tr = sub.add_parser(
        "trace", parents=[san_parent],
        help="run a workload with tracing on and export/inspect the trace",
    )
    tr.add_argument("workload", choices=sorted(TRACE_WORKLOADS))
    tr.add_argument("--stack", choices=STACK_KINDS, default="nfsv3")
    tr.add_argument("--out", metavar="FILE",
                    help="write a Chrome trace_event JSON file")
    tr.add_argument("--jsonl", metavar="FILE",
                    help="write the Ethereal-style packet trace (JSON lines)")
    tr.add_argument("--diff", metavar="KIND", choices=STACK_KINDS,
                    help="also run KIND and print a side-by-side "
                         "protocol timeline")
    tr.add_argument("--tree", action="store_true",
                    help="print the causal span tree")
    tr.add_argument("--limit", type=int, default=60,
                    help="max rows in --diff output (0 = all)")
    tr.set_defaults(func=cmd_trace)

    be = sub.add_parser(
        "bench", parents=[jobs_parent, san_parent, telem_parent],
        help="run a benchmark suite to BENCH_<suite>.json, or compare "
             "two result files for regressions",
    )
    be.add_argument("--suite", choices=sorted(BENCH_SUITES),
                    default="quick")
    be.add_argument("--out", metavar="FILE",
                    help="output path (default BENCH_<suite>.json)")
    be.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                    help="compare two BENCH_*.json files instead of "
                         "running; exits 1 on regression")
    be.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional completion-time growth "
                         "(default 0.15; message counts must be exact)")
    be.add_argument("--format", choices=["text", "json"], default="text",
                    help="--compare report format (default text; json is "
                         "the machine-readable form CI annotates from)")
    be.add_argument("--cache", action="store_true",
                    help="serve unchanged cases from the result cache "
                         "(off by default: bench is the regression gate)")
    be.set_defaults(func=cmd_bench)

    da = sub.add_parser(
        "dash", parents=[jobs_parent],
        help="run a workload with streaming telemetry and render per-tier "
             "utilization/queue-depth timeline dashboards (ASCII + "
             "optional self-contained HTML export)",
    )
    da.add_argument("workload", choices=sorted(TRACE_WORKLOADS))
    da.add_argument("--stack", nargs="+", choices=STACK_KINDS,
                    default=["nfsv3", "iscsi"], metavar="KIND",
                    help="stack kinds to dash (default: nfsv3 iscsi); "
                         "more than one adds a merged fleet section")
    da.add_argument("--html", metavar="FILE",
                    help="also write a self-contained HTML dashboard")
    da.add_argument("--width", type=int, default=48,
                    help="sparkline width in characters (default 48)")
    da.add_argument("--heartbeat", action="store_true",
                    help="print in-simulation heartbeat lines to stderr "
                         "while cells run")
    da.set_defaults(func=cmd_dash)

    exp = sub.add_parser(
        "explain", parents=[jobs_parent, telem_parent],
        help="differential diagnosis: run one workload on two stacks (or "
             "load one case from two BENCH_*.json files) and explain the "
             "completion-time delta — layer attribution, message drift, "
             "queueing deltas, ranked blame",
    )
    exp.add_argument("workload", choices=sorted(TRACE_WORKLOADS))
    exp.add_argument("--stack-a", choices=STACK_KINDS, default="nfsv3",
                     metavar="KIND",
                     help="side-A stack kind (default nfsv3)")
    exp.add_argument("--stack-b", choices=STACK_KINDS, default="iscsi",
                     metavar="KIND",
                     help="side-B stack kind (default iscsi)")
    exp.add_argument("--bench-a", metavar="FILE",
                     help="read side A from a recorded BENCH_*.json "
                          "instead of running (case <workload>/<stack-a>; "
                          "requires --bench-b)")
    exp.add_argument("--bench-b", metavar="FILE",
                     help="read side B from a recorded BENCH_*.json "
                          "(case <workload>/<stack-b>; requires --bench-a)")
    exp.add_argument("--top", type=int, default=8,
                     help="blame-list length (default 8)")
    exp.add_argument("--format", choices=["text", "json", "html"],
                     default="text",
                     help="report format (default text; json is stable and "
                          "byte-identical across reruns)")
    exp.add_argument("--out", metavar="FILE",
                     help="write the report to FILE instead of stdout")
    exp.set_defaults(func=cmd_explain)

    li = sub.add_parser(
        "lint",
        help="run simlint, the simulator-discipline linter, over source "
             "paths (default: the repro package itself); exits 1 on "
             "violations",
    )
    li.add_argument("paths", nargs="*", metavar="PATH",
                    help="files or directories to lint "
                         "(default: the installed repro package)")
    li.add_argument("--format", choices=["text", "json", "sarif"],
                    default="text",
                    help="report format (default text; sarif is a 2.1.0 "
                         "document for CI code-scanning annotations)")
    li.add_argument("--fix", action="store_true",
                    help="autofix the mechanical rules in place "
                         "(sorted() wraps, Random(0) seeds, hook guards) "
                         "before reporting what remains")
    li.add_argument("--debt", action="store_true",
                    help="report every `# simlint: disable` suppression "
                         "with its reason; exits 1 if any lacks one")
    li.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
