"""Command-line front end: regenerate any of the paper's artifacts.

Usage::

    python -m repro list
    python -m repro table2 [--depth 0 3]
    python -m repro table4 [--mb 16]
    python -m repro table5 [--transactions 8000] [--files 1000]
    python -m repro fig4 --op mkdir
    python -m repro fig6 [--mb 4]
    python -m repro fig7
    python -m repro sec7
    python -m repro quick
    python -m repro trace <workload> [--stack KIND] [--out FILE] [--tree]
    python -m repro bench [--suite quick] [--out FILE]
    python -m repro bench --compare OLD.json NEW.json [--tolerance 0.15]

Each artifact subcommand runs the corresponding experiment at a tractable
scale and prints the same rows the paper reports; ``trace`` records and
exports a run, ``bench`` runs the regression suites (see the README's
"Profiling & benchmarking" section).  ``repro list`` enumerates every
subcommand.  For the asserted paper-vs-measured comparison, run the
pytest benchmarks instead (see README).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.comparison import STACK_KINDS, make_stack
from .obs.bench import SUITES as BENCH_SUITES
from .obs.bench import WORKLOADS as TRACE_WORKLOADS


def _print_table(headers, rows):
    widths = [max(len(str(headers[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(headers))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def iter_subcommands() -> List[str]:
    """Every registered CLI subcommand, sorted (the discoverability
    contract checked by ``tests/test_public_api.py``)."""
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return sorted(action.choices)
    return []


def cmd_list(_args) -> int:
    print("stacks:     %s" % ", ".join(STACK_KINDS))
    print("artifacts:  table2 table3 table4 table5 table6 table7 table8")
    print("            table9 table10 fig3 fig4 fig5 fig6 fig7 sec7 quick")
    print("tools:      trace (record/export a run)  "
          "bench (regression suites)")
    print("commands:   %s" % " ".join(iter_subcommands()))
    return 0


def cmd_quick(_args) -> int:
    for kind in STACK_KINDS:
        stack = make_stack(kind)
        client = stack.client

        def work(client=client):
            yield from client.mkdir("/d")
            fd = yield from client.creat("/d/f")
            yield from client.write(fd, 16_384)
            yield from client.close(fd)
            yield from client.stat("/d/f")

        snap = stack.snapshot()
        stack.run(work())
        stack.quiesce()
        delta = stack.delta(snap)
        print("%-14s msgs=%-5d bytes=%-8d t=%.2fms" % (
            kind, delta.messages, delta.total_bytes, stack.now * 1000))
    return 0


def cmd_table2(args) -> int:
    from .workloads import SYSCALL_OPS, run_syscall_table

    results = run_syscall_table(depths=tuple(args.depth), warm=args.warm)
    for depth in args.depth:
        print("\n%s cache, depth %d" % ("warm" if args.warm else "cold", depth))
        rows = [[op] + [results[depth][op][k]
                        for k in ("nfsv2", "nfsv3", "nfsv4", "iscsi")]
                for op in SYSCALL_OPS]
        _print_table(["syscall", "v2", "v3", "v4", "iscsi"], rows)
    return 0


def cmd_table4(args) -> int:
    from .workloads import SeqRandWorkload

    rows = []
    for kind in ("nfsv3", "iscsi"):
        workload = SeqRandWorkload(kind, file_mb=args.mb)
        for mode, result in (
            ("seq-read", workload.run_read(True)),
            ("rand-read", workload.run_read(False)),
            ("seq-write", workload.run_write(True)),
            ("rand-write", workload.run_write(False)),
        ):
            rows.append([kind, mode, "%.2fs" % result.completion_time,
                         result.messages, "%.1fMB" % (result.bytes / 1e6)])
    print("%d MB streaming I/O" % args.mb)
    _print_table(["stack", "mode", "time", "messages", "bytes"], rows)
    return 0


def cmd_table5(args) -> int:
    from .workloads import PostMark

    rows = []
    for kind in ("nfsv3", "nfs-enhanced", "iscsi"):
        result = PostMark(kind, file_count=args.files,
                          transactions=args.transactions).run()
        rows.append([kind, "%.2fs" % result.completion_time, result.messages,
                     "%.0f%%" % (result.server_cpu * 100),
                     "%.0f%%" % (result.client_cpu * 100)])
    print("PostMark: %d transactions, %d files" % (args.transactions, args.files))
    _print_table(["stack", "time", "messages", "srv CPU", "cli CPU"], rows)
    return 0


def cmd_table6(args) -> int:
    from .workloads import TpccWorkload

    rows = []
    base = None
    for kind in ("nfsv3", "iscsi"):
        result = TpccWorkload(kind, transactions=args.transactions).run()
        base = base or result.throughput
        rows.append([kind, "%.2f" % (result.throughput / base),
                     result.messages,
                     "%.0f%%" % (result.server_cpu * 100)])
    print("TPC-C-like OLTP: %d transactions" % args.transactions)
    _print_table(["stack", "tpmC (norm)", "messages", "srv CPU"], rows)
    return 0


def cmd_table7(args) -> int:
    from .workloads import TpchWorkload

    rows = []
    base = None
    for kind in ("nfsv3", "iscsi"):
        result = TpchWorkload(kind, queries=args.queries,
                              database_mb=args.mb).run()
        base = base or result.throughput
        rows.append([kind, "%.2f" % (result.throughput / base),
                     result.messages,
                     "%.0f%%" % (result.server_cpu * 100)])
    print("TPC-H-like DSS: %d queries over %d MB" % (args.queries, args.mb))
    _print_table(["stack", "QphH (norm)", "messages", "srv CPU"], rows)
    return 0


def cmd_table8(args) -> int:
    from .workloads import KernelTreeOps, TreeSpec

    spec = TreeSpec(top_dirs=args.dirs)
    rows = []
    for kind in ("nfsv3", "iscsi"):
        result = KernelTreeOps(kind, spec).run_all()
        rows.append([kind, "%.2fs" % result.tar_seconds,
                     "%.2fs" % result.ls_seconds,
                     "%.2fs" % result.make_seconds,
                     "%.2fs" % result.rm_seconds])
    print("kernel-tree ops (%d files)" % spec.total_files)
    _print_table(["stack", "tar", "ls -lR", "make", "rm -rf"], rows)
    return 0


def cmd_tables910(args) -> int:
    from .workloads import PostMark, TpccWorkload, TpchWorkload

    rows = []
    for kind in ("nfsv3", "iscsi"):
        pm = PostMark(kind, file_count=500,
                      transactions=args.transactions).run()
        cc = TpccWorkload(kind, transactions=max(200, args.transactions // 8)).run()
        ch = TpchWorkload(kind, queries=3, database_mb=96).run()
        rows.append([kind,
                     "%.0f%%/%.0f%%" % (pm.server_cpu * 100, pm.client_cpu * 100),
                     "%.0f%%/%.0f%%" % (cc.server_cpu * 100, cc.client_cpu * 100),
                     "%.0f%%/%.0f%%" % (ch.server_cpu * 100, ch.client_cpu * 100)])
    print("CPU utilization (server/client)")
    _print_table(["stack", "PostMark", "TPC-C", "TPC-H"], rows)
    return 0


def cmd_fig3(args) -> int:
    from .workloads import run_batching_sweep

    sweep = run_batching_sweep(args.op)
    _print_table(["batch", "msgs/op"],
                 [[n, "%.2f" % v] for n, v in sorted(sweep.items())])
    return 0


def cmd_fig4(args) -> int:
    from .workloads import run_depth_sweep

    rows = []
    depths = tuple(range(0, 17, 4))
    for kind in ("nfsv3", "nfsv4", "iscsi"):
        sweep = run_depth_sweep(args.op, kind, depths)
        rows.append([kind + " cold"] + [sweep[d] for d in depths])
    warm = run_depth_sweep(args.op, "iscsi", depths, warm=True)
    rows.append(["iscsi warm"] + [warm[d] for d in depths])
    print("messages vs depth [%s]" % args.op)
    _print_table(["series"] + ["d=%d" % d for d in depths], rows)
    return 0


def cmd_fig5(_args) -> int:
    from .workloads import run_io_size_sweep

    sizes = tuple(2 ** e for e in range(7, 17))
    for mode in ("cold-read", "warm-read", "cold-write"):
        print("\n%s" % mode)
        rows = []
        for kind in ("nfsv2", "nfsv3", "nfsv4", "iscsi"):
            sweep = run_io_size_sweep(kind, mode, sizes=sizes)
            rows.append([kind] + [sweep[s] for s in sizes])
        _print_table(["stack"] + [str(s) for s in sizes], rows)
    return 0


def cmd_fig6(args) -> int:
    from .workloads import SeqRandWorkload

    rtts = (0.010, 0.030, 0.050, 0.070, 0.090)
    for mode in ("read", "write"):
        print("\nsequential %ss of a %d MB file" % (mode, args.mb))
        rows = []
        for kind in ("nfsv3", "iscsi"):
            row = [kind]
            for rtt in rtts:
                workload = SeqRandWorkload(kind, file_mb=args.mb, rtt=rtt)
                result = (workload.run_read(True) if mode == "read"
                          else workload.run_write(True))
                row.append("%.1fs" % result.completion_time)
            rows.append(row)
        _print_table(["stack"] + ["%dms" % int(r * 1000) for r in rtts], rows)
    return 0


def cmd_fig7(_args) -> int:
    from .traces import (CAMPUS_PROFILE, EECS_PROFILE, TraceGenerator,
                         analyze_sharing)

    for profile in (EECS_PROFILE, CAMPUS_PROFILE):
        events = list(TraceGenerator(profile).events(limit=150_000))
        print("\n%s trace" % profile.name)
        rows = []
        for point in analyze_sharing(events):
            rows.append(["%.0f" % point.interval,
                         "%.3f" % point.read_by_one,
                         "%.3f" % point.read_by_multiple,
                         "%.3f" % point.written_by_one,
                         "%.3f" % point.written_by_multiple,
                         "%.3f" % point.read_write_shared])
        _print_table(["T", "r-by-1", "r-by-N", "w-by-1", "w-by-N", "rw"], rows)
    return 0


def cmd_sec7(_args) -> int:
    from .traces import EECS_PROFILE, TraceGenerator, sweep_cache_sizes

    events = list(TraceGenerator(EECS_PROFILE).events(limit=150_000))
    rows = []
    for size, result in sorted(sweep_cache_sizes(events).items()):
        rows.append([size, result.baseline_messages, result.consistent_messages,
                     "%.1f%%" % (result.reduction * 100),
                     "%.1e" % result.callback_ratio])
    print("strongly-consistent meta-data cache (EECS-like trace)")
    _print_table(["cache", "baseline", "consistent", "reduction", "cb ratio"],
                 rows)
    return 0


# -- trace: the simulated-Ethereal front end ------------------------------------------
# The workload drivers are shared with `repro bench` and live in
# repro.obs.bench (imported above as TRACE_WORKLOADS).


def _run_traced(kind: str, workload: str):
    stack = make_stack(kind, trace=True)
    stack.run(TRACE_WORKLOADS[workload](stack.client))
    stack.quiesce()
    return stack


def cmd_trace(args) -> int:
    from .obs import (format_op_summary, render_span_tree,
                      render_timeline_diff, write_chrome_trace,
                      write_packet_trace)

    stack = _run_traced(args.stack, args.workload)
    tracer = stack.tracer
    if args.diff:
        other = _run_traced(args.diff, args.workload)
        print(render_timeline_diff(tracer, args.stack,
                                   other.tracer, args.diff,
                                   limit=args.limit))
        print()
    if args.out:
        write_chrome_trace(tracer, args.out)
        print("chrome trace: %s (open in chrome://tracing or Perfetto)"
              % args.out)
    if args.jsonl:
        write_packet_trace(tracer, args.jsonl)
        print("packet trace: %s" % args.jsonl)
    if args.tree:
        print(render_span_tree(tracer))
        print()
    print("%s on %s: %d spans, %d messages, %.2f simulated ms" % (
        args.workload, args.stack, len(tracer.spans), len(tracer.messages),
        stack.now * 1000))
    print()
    print(format_op_summary(tracer))
    return 0


# -- bench: the regression harness ----------------------------------------------------


def cmd_bench(args) -> int:
    from .obs import bench

    if args.compare:
        baseline = bench.load_bench(args.compare[0])
        current = bench.load_bench(args.compare[1])
        regressions, notes = bench.compare(
            baseline, current, tolerance=args.tolerance)
        print(bench.format_compare(regressions, notes))
        return 1 if regressions else 0
    result = bench.run_suite(args.suite)
    rows = []
    for case in sorted(result["cases"]):
        record = result["cases"][case]
        rows.append([case, "%.3fs" % record["completion_time_s"],
                     record["messages"],
                     "%.1fMB" % (record["bytes"] / 1e6)])
    print("suite %r (schema %d)" % (args.suite, result["schema"]))
    _print_table(["case", "time", "messages", "bytes"], rows)
    out = args.out or ("BENCH_%s.json" % args.suite)
    bench.write_bench(result, out)
    print("\nwrote %s" % out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from the FAST'04 NFS-vs-iSCSI paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list").set_defaults(func=cmd_list)
    sub.add_parser("quick").set_defaults(func=cmd_quick)

    t2 = sub.add_parser("table2")
    t2.add_argument("--depth", type=int, nargs="+", default=[0, 3])
    t2.set_defaults(func=cmd_table2, warm=False)
    t3 = sub.add_parser("table3")
    t3.add_argument("--depth", type=int, nargs="+", default=[0])
    t3.set_defaults(func=cmd_table2, warm=True)

    t4 = sub.add_parser("table4")
    t4.add_argument("--mb", type=int, default=16)
    t4.set_defaults(func=cmd_table4)

    t5 = sub.add_parser("table5")
    t5.add_argument("--transactions", type=int, default=5000)
    t5.add_argument("--files", type=int, default=1000)
    t5.set_defaults(func=cmd_table5)

    t6 = sub.add_parser("table6")
    t6.add_argument("--transactions", type=int, default=1000)
    t6.set_defaults(func=cmd_table6)

    t7 = sub.add_parser("table7")
    t7.add_argument("--queries", type=int, default=4)
    t7.add_argument("--mb", type=int, default=128)
    t7.set_defaults(func=cmd_table7)

    t8 = sub.add_parser("table8")
    t8.add_argument("--dirs", type=int, default=12)
    t8.set_defaults(func=cmd_table8)

    t9 = sub.add_parser("table9")
    t9.add_argument("--transactions", type=int, default=4000)
    t9.set_defaults(func=cmd_tables910)
    t10 = sub.add_parser("table10")
    t10.add_argument("--transactions", type=int, default=4000)
    t10.set_defaults(func=cmd_tables910)

    f3 = sub.add_parser("fig3")
    f3.add_argument("--op", default="mkdir")
    f3.set_defaults(func=cmd_fig3)

    f4 = sub.add_parser("fig4")
    f4.add_argument("--op", default="mkdir")
    f4.set_defaults(func=cmd_fig4)

    sub.add_parser("fig5").set_defaults(func=cmd_fig5)

    f6 = sub.add_parser("fig6")
    f6.add_argument("--mb", type=int, default=4)
    f6.set_defaults(func=cmd_fig6)

    sub.add_parser("fig7").set_defaults(func=cmd_fig7)
    sub.add_parser("sec7").set_defaults(func=cmd_sec7)

    tr = sub.add_parser(
        "trace",
        help="run a workload with tracing on and export/inspect the trace",
    )
    tr.add_argument("workload", choices=sorted(TRACE_WORKLOADS))
    tr.add_argument("--stack", choices=STACK_KINDS, default="nfsv3")
    tr.add_argument("--out", metavar="FILE",
                    help="write a Chrome trace_event JSON file")
    tr.add_argument("--jsonl", metavar="FILE",
                    help="write the Ethereal-style packet trace (JSON lines)")
    tr.add_argument("--diff", metavar="KIND", choices=STACK_KINDS,
                    help="also run KIND and print a side-by-side "
                         "protocol timeline")
    tr.add_argument("--tree", action="store_true",
                    help="print the causal span tree")
    tr.add_argument("--limit", type=int, default=60,
                    help="max rows in --diff output (0 = all)")
    tr.set_defaults(func=cmd_trace)

    be = sub.add_parser(
        "bench",
        help="run a benchmark suite to BENCH_<suite>.json, or compare "
             "two result files for regressions",
    )
    be.add_argument("--suite", choices=sorted(BENCH_SUITES),
                    default="quick")
    be.add_argument("--out", metavar="FILE",
                    help="output path (default BENCH_<suite>.json)")
    be.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                    help="compare two BENCH_*.json files instead of "
                         "running; exits 1 on regression")
    be.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional completion-time growth "
                         "(default 0.15; message counts must be exact)")
    be.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
