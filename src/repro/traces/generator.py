"""Synthetic multi-client NFS traces (the Harvard-trace stand-in).

The paper analyzed one day of the Harvard EECS trace (research/software-
development workload, ~40 K objects) and the Campus home02 trace (email
and web workload, ~100 K objects) to measure how much *directory* meta-data
is shared across client machines (Figure 7) and to drive the Section-7
meta-data-cache simulation.

Those traces are not redistributable, so this generator produces streams
with the same relevant statistics, controlled per profile:

* a directory population with Zipf popularity;
* per-directory home clients (most accesses come from one machine);
* tunable probabilities of foreign-client reads and writes, which set the
  read-sharing and write-sharing levels the figure plots;
* EECS-like: many reads, high single-client locality, modest read sharing,
  very little write sharing;
* Campus-like (mail/web spools): more writes, read sharing that loses to
  read-write sharing at large time scales.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["TraceEvent", "TraceProfile", "EECS_PROFILE", "CAMPUS_PROFILE",
           "TraceGenerator"]

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class TraceEvent:
    """One meta-data access: a client touches a directory."""

    time: float
    client: int
    directory: int
    op: str          # READ or WRITE

    @property
    def is_write(self) -> bool:
        return self.op == WRITE


@dataclass
class TraceProfile:
    """Statistical knobs for one workload class.

    Directories come in two populations, as in real file systems:

    * **shared** (project trees, spools): read by a small collaborator
      group, written rarely;
    * **private** (home directories): effectively single-client, and
      that is where most meta-data *updates* land.

    This structure is what produces the paper's observation that only a
    few percent of directories are read-write shared at any time scale —
    and hence that invalidation callbacks would be rare.
    """

    name: str
    directories: int
    clients: int
    duration: float               # seconds of trace
    ops_per_second: float
    shared_fraction: float        # fraction of directories that are shared
    collaborators: int            # readers per shared directory
    shared_write_fraction: float  # P(update | access to a shared dir)
    private_write_fraction: float  # P(update | access to a private dir)
    foreign_noise: float          # P(random other client touches a dir)
    zipf_s: float = 1.1           # directory popularity skew


#: Research / software-development workload (one EECS day, ~40 K objects):
#: heavy read sharing of project trees, almost no write sharing.
EECS_PROFILE = TraceProfile(
    name="eecs",
    directories=4000,
    clients=32,
    duration=86_400.0,
    ops_per_second=12.0,
    shared_fraction=0.25,
    collaborators=4,
    shared_write_fraction=0.005,
    private_write_fraction=0.20,
    foreign_noise=0.002,
)

#: Email/web campus workload (home02, ~100 K objects): writier, with
#: read-write sharing (shared spools that get appended) that overtakes
#: pure read sharing at larger time scales.
CAMPUS_PROFILE = TraceProfile(
    name="campus",
    directories=10_000,
    clients=48,
    duration=86_400.0,
    ops_per_second=25.0,
    shared_fraction=0.15,
    collaborators=3,
    shared_write_fraction=0.06,
    private_write_fraction=0.35,
    foreign_noise=0.003,
)


class TraceGenerator:
    """Deterministic event-stream generator for a profile."""

    def __init__(self, profile: TraceProfile, seed: int = 23):
        self.profile = profile
        self.seed = seed
        self._weights = self._zipf_weights(profile.directories, profile.zipf_s)

    @staticmethod
    def _zipf_weights(n: int, s: float) -> List[float]:
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        return [w / total for w in weights]

    def events(self, limit: int = 0) -> Iterator[TraceEvent]:
        """Yield events in time order (optionally capped at ``limit``)."""
        p = self.profile
        rng = random.Random(self.seed)
        # Precompute a cumulative table for fast weighted choice.
        cumulative = []
        acc = 0.0
        for w in self._weights:
            acc += w
            cumulative.append(acc)
        import bisect

        home = [rng.randrange(p.clients) for _ in range(p.directories)]
        shared_stride = max(1, int(1.0 / max(p.shared_fraction, 1e-9)))
        groups = {}
        time = 0.0
        count = 0
        mean_gap = 1.0 / p.ops_per_second
        while time < p.duration and (not limit or count < limit):
            time += rng.expovariate(1.0 / mean_gap)
            directory = bisect.bisect_left(cumulative, rng.random())
            directory = min(directory, p.directories - 1)
            is_shared = directory % shared_stride == 0
            if is_shared:
                group = groups.get(directory)
                if group is None:
                    group = [rng.randrange(p.clients) for _ in range(p.collaborators)]
                    groups[directory] = group
                client = group[rng.randrange(len(group))]
                is_write = rng.random() < p.shared_write_fraction
            else:
                client = home[directory]
                is_write = rng.random() < p.private_write_fraction
            if rng.random() < p.foreign_noise:
                client = rng.randrange(p.clients)
            count += 1
            yield TraceEvent(
                time=time,
                client=client,
                directory=directory,
                op=WRITE if is_write else READ,
            )
