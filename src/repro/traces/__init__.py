"""Multi-client trace substrate: generation, sharing analysis, cache sim."""

from .generator import (
    CAMPUS_PROFILE,
    EECS_PROFILE,
    TraceEvent,
    TraceGenerator,
    TraceProfile,
)
from .metacache_sim import MetaCacheResult, simulate_metadata_cache, sweep_cache_sizes
from .sharing import SharingPoint, analyze_sharing

__all__ = [
    "CAMPUS_PROFILE",
    "EECS_PROFILE",
    "MetaCacheResult",
    "SharingPoint",
    "TraceEvent",
    "TraceGenerator",
    "TraceProfile",
    "analyze_sharing",
    "simulate_metadata_cache",
    "sweep_cache_sizes",
]
