"""Section-7 simulation: the strongly-consistent read-only meta-data cache.

Replays a multi-client trace against two client-side caching disciplines:

* **baseline (NFS v2/v3)** — a per-client directory-attribute cache with a
  3-second validity window: a hit inside the window is free; anything else
  costs a meta-data message (LOOKUP/GETATTR); every update is a message;
* **strongly consistent (the proposal)** — entries never expire; the
  server invalidates other clients' caches on update (callback messages).
  Reads are free after first fetch; updates still cost one message.

Reported, per the paper's Section 7:

* the reduction in meta-data messages (> ~70% at a directory-cache size
  around 2**10), and
* the *callback ratio* — invalidation messages / meta-data messages —
  (< ~1e-3..1e-4 for the two traces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set, Tuple

from ..cache.policies import LruDict
from .generator import TraceEvent

__all__ = ["MetaCacheResult", "simulate_metadata_cache"]


@dataclass
class MetaCacheResult:
    """Message accounting for one discipline over one trace."""

    events: int
    baseline_messages: int
    consistent_messages: int
    callbacks: int

    @property
    def reduction(self) -> float:
        """Fraction of baseline meta-data messages eliminated."""
        if self.baseline_messages == 0:
            return 0.0
        return 1.0 - self.consistent_messages / self.baseline_messages

    @property
    def callback_ratio(self) -> float:
        """Invalidations per meta-data message (the paper's metric)."""
        if self.consistent_messages == 0:
            return 0.0
        return self.callbacks / self.consistent_messages


def simulate_metadata_cache(
    events: Iterable[TraceEvent],
    cache_size: int = 1024,
    validity: float = 3.0,
) -> MetaCacheResult:
    """Replay ``events`` under both disciplines (see module docstring)."""
    baseline: Dict[int, LruDict] = {}
    consistent: Dict[int, LruDict] = {}
    # directory -> clients holding it in their consistent cache
    holders: Dict[int, Set[int]] = {}

    baseline_messages = 0
    consistent_messages = 0
    callbacks = 0
    count = 0

    def client_cache(table: Dict[int, LruDict], client: int) -> LruDict:
        cache = table.get(client)
        if cache is None:
            cache = LruDict(cache_size)
            table[client] = cache
        return cache

    for event in events:
        count += 1
        directory = event.directory
        client = event.client

        # ---- baseline: 3 s validity, every update is a message --------
        cache = client_cache(baseline, client)
        if event.is_write:
            baseline_messages += 1
            cache.put(directory, event.time)
        else:
            cached_at = cache.get(directory)
            if cached_at is None or event.time - cached_at > validity:
                baseline_messages += 1
                cache.put(directory, event.time)
            # else: free hit

        # ---- strongly consistent: callbacks instead of expiry ----------
        cache = client_cache(consistent, client)
        if event.is_write:
            consistent_messages += 1
            for holder in holders.get(directory, set()):
                if holder != client:
                    callbacks += 1
                    other = consistent.get(holder)
                    if other is not None:
                        other.pop(directory)
            holders[directory] = {client}
            cache.put(directory, event.time)
        else:
            if cache.get(directory) is None:
                consistent_messages += 1
                evicted = cache.put(directory, event.time)
                holders.setdefault(directory, set()).add(client)
                if evicted is not None:
                    holders.get(evicted[0], set()).discard(client)
            # else: free hit, guaranteed fresh

    return MetaCacheResult(
        events=count,
        baseline_messages=baseline_messages,
        consistent_messages=consistent_messages,
        callbacks=callbacks,
    )


def sweep_cache_sizes(
    events: Iterable[TraceEvent],
    sizes: Tuple[int, ...] = (16, 64, 256, 1024, 4096),
) -> Dict[int, MetaCacheResult]:
    """Reduction/callback-ratio as a function of the directory-cache size."""
    events = list(events)
    return {size: simulate_metadata_cache(events, cache_size=size) for size in sizes}
