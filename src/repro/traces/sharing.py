"""Directory-sharing analysis (Figure 7).

For each time-scale ``T`` the trace is cut into intervals of length ``T``;
within each interval every accessed directory is classified:

* read by exactly one client / read by multiple clients,
* written by exactly one client / written by multiple clients,
* and (for the Section-7 argument) read-write shared: touched by more
  than one client with at least one writer.

The figure plots, per ``T``, the *normalized* count (averaged over
intervals, divided by directories accessed in the interval).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from .generator import TraceEvent

__all__ = ["SharingPoint", "analyze_sharing"]


@dataclass
class SharingPoint:
    """Normalized sharing statistics at one interval length."""

    interval: float
    read_by_one: float
    read_by_multiple: float
    written_by_one: float
    written_by_multiple: float
    read_write_shared: float     # >1 client involved, at least one writer


def analyze_sharing(
    events: Iterable[TraceEvent],
    intervals: Sequence[float] = (60, 200, 400, 600, 800, 1000, 1200),
) -> List[SharingPoint]:
    """Compute Figure 7's curves for the given trace."""
    events = list(events)
    if not events:
        raise ValueError("empty trace")
    points = []
    for interval in intervals:
        # directory -> (readers, writers) per time bucket
        buckets: Dict[int, Dict[int, tuple]] = defaultdict(dict)
        for event in events:
            bucket = int(event.time // interval)
            readers, writers = buckets[bucket].get(event.directory, (set(), set()))
            if not readers and not writers:
                readers, writers = set(), set()
            if event.is_write:
                writers.add(event.client)
            else:
                readers.add(event.client)
            buckets[bucket][event.directory] = (readers, writers)

        totals = dict.fromkeys(
            ("accessed", "r1", "rm", "w1", "wm", "rw"), 0
        )
        for per_dir in buckets.values():
            for readers, writers in per_dir.values():
                totals["accessed"] += 1
                if len(readers) == 1:
                    totals["r1"] += 1
                elif len(readers) > 1:
                    totals["rm"] += 1
                if len(writers) == 1:
                    totals["w1"] += 1
                elif len(writers) > 1:
                    totals["wm"] += 1
                everyone = readers | writers
                if len(everyone) > 1 and writers:
                    totals["rw"] += 1

        accessed = max(1, totals["accessed"])
        points.append(SharingPoint(
            interval=interval,
            read_by_one=totals["r1"] / accessed,
            read_by_multiple=totals["rm"] / accessed,
            written_by_one=totals["w1"] / accessed,
            written_by_multiple=totals["wm"] / accessed,
            read_write_shared=totals["rw"] / accessed,
        ))
    return points
