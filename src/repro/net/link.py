"""Point-to-point network link model.

The testbed in the paper is an isolated Gigabit Ethernet segment between one
client and one server, optionally with NISTNet-injected delay.  We model a
full-duplex link: each direction is a serial channel with a propagation
latency and a transmission rate.  A transfer of ``size`` bytes injected at
time ``t`` begins when the channel frees (FIFO serialization), occupies the
channel for ``size / bandwidth`` and arrives one propagation latency after
its last byte is sent.

``one_way_latency`` defaults to half the configured RTT, matching how the
paper reports NISTNet settings (round-trip values from 10 to 90 ms).
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator

__all__ = ["Link", "GIGABIT_BPS"]

GIGABIT_BPS = 125_000_000  # 1 Gb/s expressed in bytes per second


class _Channel:
    """One direction of the link: a FIFO serial transmission line."""

    __slots__ = ("sim", "latency", "bandwidth", "_busy_until",
                 "bytes_carried")

    def __init__(self, sim: Simulator, latency: float, bandwidth: float):
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self._busy_until = 0.0
        self.bytes_carried = 0

    def delivery_delay(self, size: int) -> float:
        """Reserve the channel for ``size`` bytes; return delay until arrival."""
        now = self.sim.now
        start = max(now, self._busy_until)
        tx_time = size / self.bandwidth if self.bandwidth else 0.0
        self._busy_until = start + tx_time
        self.bytes_carried += size
        return (start - now) + tx_time + self.latency


class Link:
    """A full-duplex client<->server link."""

    __slots__ = ("sim", "rtt", "forward", "backward", "_nominal")

    def __init__(
        self,
        sim: Simulator,
        rtt: float = 0.0002,
        bandwidth: float = GIGABIT_BPS,
        one_way_latency: Optional[float] = None,
    ):
        if rtt < 0:
            raise ValueError("rtt must be non-negative")
        self.sim = sim
        self.rtt = rtt
        latency = one_way_latency if one_way_latency is not None else rtt / 2.0
        self.forward = _Channel(sim, latency, bandwidth)   # client -> server
        self.backward = _Channel(sim, latency, bandwidth)  # server -> client
        self._nominal = None  # healthy (bandwidth, fwd/bwd latency) under degrade

    @property
    def bandwidth(self) -> float:
        return self.forward.bandwidth

    def set_rtt(self, rtt: float) -> None:
        """Reconfigure the propagation delay (the NISTNet knob of Fig. 6)."""
        if rtt < 0:
            raise ValueError("rtt must be non-negative")
        self.rtt = rtt
        self.forward.latency = rtt / 2.0
        self.backward.latency = rtt / 2.0

    # -- fault injection -------------------------------------------------------

    def degrade(self, bandwidth_factor: float = 1.0,
                extra_latency: float = 0.0) -> None:
        """Enter a degraded window: scaled bandwidth, added latency.

        Used by :class:`~repro.faults.injector.FaultInjector` for
        :class:`~repro.faults.plan.LinkDegrade` events.  The healthy
        configuration is saved on first call and reinstated by
        :meth:`restore`; nested degrades compound against the *healthy*
        values, not against each other.
        """
        if bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be positive")
        if extra_latency < 0:
            raise ValueError("extra_latency must be non-negative")
        if self._nominal is None:
            self._nominal = (self.forward.bandwidth, self.forward.latency,
                             self.backward.latency)
        bandwidth, fwd_latency, bwd_latency = self._nominal
        self.forward.bandwidth = bandwidth * bandwidth_factor
        self.backward.bandwidth = bandwidth * bandwidth_factor
        self.forward.latency = fwd_latency + extra_latency
        self.backward.latency = bwd_latency + extra_latency

    def restore(self) -> None:
        """Leave the degraded window; no-op on a healthy link."""
        if self._nominal is None:
            return
        bandwidth, fwd_latency, bwd_latency = self._nominal
        self.forward.bandwidth = bandwidth
        self.backward.bandwidth = bandwidth
        self.forward.latency = fwd_latency
        self.backward.latency = bwd_latency
        self._nominal = None

    @property
    def total_bytes(self) -> int:
        return self.forward.bytes_carried + self.backward.bytes_carried
