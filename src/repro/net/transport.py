"""Transport endpoints over a :class:`~repro.net.link.Link`.

A :class:`DuplexTransport` binds a client endpoint and a server endpoint to
the two directions of a link and owns the traffic accounting: every message
that crosses it is tallied in a :class:`~repro.core.counters.MessageCounters`
(requests, replies, retransmissions, bytes).

The TCP-like mode delivers reliably and in order.  The UDP-like mode (NFS v2)
can drop messages with a configured probability; recovery is then the RPC
layer's retransmission timer, exactly as in Sun RPC over UDP.

:class:`ShardedTransport` is the same link model split at a shard boundary
for sharded runs (:mod:`repro.sim.shard`): the client endpoint and the
forward channel live on the client's shard, the server endpoint and the
backward channel on the server's shard, and every send crosses via
``Shard.post`` — which is where a message gets tagged with its destination
shard.  The transport layer *is* the shard boundary: everything above it
(RPC, NFS, the filesystem) runs unmodified on whichever shard it was placed
on.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.counters import CountersSnapshot, MessageCounters
from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Simulator, Store
from .link import GIGABIT_BPS, Link, _Channel
from .message import Message, REPLY, REQUEST

__all__ = ["Endpoint", "DuplexTransport", "ShardedTransport"]


def _tally(counters: MessageCounters, message: Message) -> None:
    """Count one outgoing message (shared by both transport flavours)."""
    if message.kind == REQUEST:
        if message.is_retransmission:
            counters.count_retransmission(message.op, message.size)
        else:
            counters.count_request(message.op, message.size)
    elif message.kind == REPLY:
        counters.count_reply(message.op, message.size)
    else:
        raise ValueError("unknown message kind: %r" % (message.kind,))


class Endpoint:
    """One side of a transport: an inbox of delivered messages."""

    __slots__ = ("sim", "name", "inbox")

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.inbox = Store(sim, name=name + ".inbox")


class DuplexTransport:
    """A reliable (or lossy) bidirectional message channel with accounting."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        counters: Optional[MessageCounters] = None,
        reliable: bool = True,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "transport",
        tracer: Optional[NullTracer] = None,
    ):
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(
                "loss_rate must be within [0, 1], got %r" % (loss_rate,))
        if loss_rate and reliable:
            raise ValueError("a reliable transport cannot drop messages")
        self.sim = sim
        # Optional FaultInjector (repro.faults); None costs one load per
        # delivery and keeps the unfaulted event sequence unchanged.
        self.fault = None
        # Optional TransportSan (repro.check.simsan): same pattern — the
        # hooks are bare counter increments, so a sanitized run's event
        # sequence is identical to an unsanitized one.
        self.san = None
        # Optional Telemetry (repro.obs.telemetry): push-counter hooks
        # only record into rollups (no events), guarded with
        # `if telem is not None:` (simlint O302).
        self.telem = None
        # Optional FlightRecorder (repro.obs.explain): the send hooks
        # append into its bounded message ring, guarded with
        # `if recorder is not None:` (simlint O303).
        self.recorder = None
        self.link = link
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.counters = counters if counters is not None else MessageCounters()
        self.reliable = reliable
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else random.Random(0)
        self.client = Endpoint(sim, name + ".client")
        self.server = Endpoint(sim, name + ".server")

    # -- sending --------------------------------------------------------------

    def send_from_client(self, message: Message) -> None:
        """Inject ``message`` on the client->server direction."""
        self._count(message)
        if self.tracer.enabled:
            self.tracer.message("c2s", message)
        recorder = self.recorder
        if recorder is not None:
            recorder.note_message("c2s", message)
        self._deliver(message, self.link.forward, self.server)

    def send_from_server(self, message: Message) -> None:
        """Inject ``message`` on the server->client direction."""
        self._count(message)
        if self.tracer.enabled:
            self.tracer.message("s2c", message)
        recorder = self.recorder
        if recorder is not None:
            recorder.note_message("s2c", message)
        self._deliver(message, self.link.backward, self.client)

    # -- internals ------------------------------------------------------------

    def _count(self, message: Message) -> None:
        _tally(self.counters, message)

    def _deliver(self, message: Message, channel, destination: Endpoint) -> None:
        delay = channel.delivery_delay(message.size)
        san = self.san
        if san is not None:
            san.note_send(message)
        if not self.reliable and self.rng.random() < self.loss_rate:
            if san is not None:
                san.note_loss(message)
            return  # the bytes were spent; the message never arrives
        fault = self.fault
        if fault is not None:
            verdict, extra = fault.filter_message(
                message, channel is self.link.forward)
            if verdict is not None:
                if verdict == "drop":
                    if san is not None:
                        san.note_fault_drop(message)
                    return  # lost in flight; bytes were spent
                if verdict == "delay":
                    delay += extra
                else:  # "duplicate": a second copy trails the first
                    if san is not None:
                        san.note_fault_duplicate(message)
                    self.sim._schedule_call1(
                        destination.inbox.put, message, delay + extra)
        if san is not None:
            san.note_scheduled(message)
        telem = self.telem
        if telem is not None:
            # Progress signal for the zero-progress-stall watcher (T503).
            telem.count("net.delivered", 1.0)
        # Flat calendar record: no per-message closure allocation.
        self.sim._schedule_call1(destination.inbox.put, message, delay)


class _TransportHalf:
    """One side of a :class:`ShardedTransport`, living on its own shard.

    The half owns the endpoint traffic *arrives at the peer through* —
    i.e. the client half owns the forward (client->server) channel and
    sends toward the server's inbox port.  Each half tallies only the
    messages it sends, so the two halves' counters merge to what a
    single :class:`DuplexTransport` counters object would hold.
    """

    __slots__ = ("shard", "peer_shard", "peer_port", "channel", "counters",
                 "endpoint", "telem")

    def __init__(self, shard, peer_shard: int, peer_port: str,
                 channel: _Channel, endpoint_name: str):
        self.shard = shard
        self.peer_shard = peer_shard
        self.peer_port = peer_port
        self.channel = channel
        self.counters = MessageCounters()
        self.endpoint = Endpoint(shard.sim, endpoint_name)
        self.telem = None

    def send(self, message: Message) -> None:
        """Reserve the channel and post toward the peer's shard."""
        _tally(self.counters, message)
        delay = self.channel.delivery_delay(message.size)
        telem = self.telem
        if telem is not None:
            telem.count("net.delivered", 1.0)
        self.shard.post(self.peer_shard, self.peer_port, message, delay)


class ShardedTransport:
    """A :class:`DuplexTransport` split at a shard boundary.

    Layout: the client endpoint plus the forward channel live on
    ``client_shard``; the server endpoint plus the backward channel on
    ``server_shard``.  Sends go through :meth:`Shard.post
    <repro.sim.shard.Shard.post>`, tagging each message with its
    destination shard — the transport is exactly the cut the
    conservative window protocol synchronizes across.  Both shards may
    be the same object, in which case every post takes the co-located
    fast path and the transport behaves like a reliable
    :class:`DuplexTransport` on that shard's calendar.

    Only the reliable TCP-like mode exists here: the lossy UDP mode
    (and fault injection) mutate deliveries in flight, which the
    windowed protocol deliberately does not model.  Use the sequential
    kernel for loss/fault studies.

    The one-way latency must be at least the shards' lookahead —
    queueing and transmission only ever *add* delay, so enforcing it on
    the propagation floor guarantees no post can violate the
    conservative horizon.
    """

    __slots__ = ("name", "rtt", "client_half", "server_half")

    def __init__(self, client_shard, server_shard, rtt: float = 0.0002,
                 bandwidth: float = GIGABIT_BPS, name: str = "transport"):
        latency = rtt / 2.0
        for shard in (client_shard, server_shard):
            if latency < shard.lookahead:
                raise ValueError(
                    "one-way latency %g of %r is below shard %d's lookahead "
                    "%g; a sharded transport's propagation delay must cover "
                    "the window horizon" % (latency, name, shard.id,
                                            shard.lookahead))
        self.name = name
        self.rtt = rtt
        # Inbox ports: each half's endpoint is reachable from the peer
        # shard under a stable, transport-scoped port name.
        client_port = name + ".client.inbox"
        server_port = name + ".server.inbox"
        self.client_half = _TransportHalf(
            client_shard, server_shard.id, server_port,
            _Channel(client_shard.sim, latency, bandwidth), name + ".client")
        self.server_half = _TransportHalf(
            server_shard, client_shard.id, client_port,
            _Channel(server_shard.sim, latency, bandwidth), name + ".server")
        client_shard.bind(client_port, self.client_half.endpoint.inbox.put)
        server_shard.bind(server_port, self.server_half.endpoint.inbox.put)

    # -- DuplexTransport-compatible surface -----------------------------------

    @property
    def client(self) -> Endpoint:
        return self.client_half.endpoint

    @property
    def server(self) -> Endpoint:
        return self.server_half.endpoint

    def send_from_client(self, message: Message) -> None:
        """Inject ``message`` on the client->server direction."""
        self.client_half.send(message)

    def send_from_server(self, message: Message) -> None:
        """Inject ``message`` on the server->client direction."""
        self.server_half.send(message)

    def merged_counters(self) -> CountersSnapshot:
        """Both directions' accounting, as one DuplexTransport would see it."""
        return (self.client_half.counters.snapshot()
                + self.server_half.counters.snapshot())
