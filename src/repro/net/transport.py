"""Transport endpoints over a :class:`~repro.net.link.Link`.

A :class:`DuplexTransport` binds a client endpoint and a server endpoint to
the two directions of a link and owns the traffic accounting: every message
that crosses it is tallied in a :class:`~repro.core.counters.MessageCounters`
(requests, replies, retransmissions, bytes).

The TCP-like mode delivers reliably and in order.  The UDP-like mode (NFS v2)
can drop messages with a configured probability; recovery is then the RPC
layer's retransmission timer, exactly as in Sun RPC over UDP.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.counters import MessageCounters
from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Simulator, Store
from .link import Link
from .message import Message, REPLY, REQUEST

__all__ = ["Endpoint", "DuplexTransport"]


class Endpoint:
    """One side of a transport: an inbox of delivered messages."""

    __slots__ = ("sim", "name", "inbox")

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.inbox = Store(sim, name=name + ".inbox")


class DuplexTransport:
    """A reliable (or lossy) bidirectional message channel with accounting."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        counters: Optional[MessageCounters] = None,
        reliable: bool = True,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "transport",
        tracer: Optional[NullTracer] = None,
    ):
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(
                "loss_rate must be within [0, 1], got %r" % (loss_rate,))
        if loss_rate and reliable:
            raise ValueError("a reliable transport cannot drop messages")
        self.sim = sim
        # Optional FaultInjector (repro.faults); None costs one load per
        # delivery and keeps the unfaulted event sequence unchanged.
        self.fault = None
        # Optional TransportSan (repro.check.simsan): same pattern — the
        # hooks are bare counter increments, so a sanitized run's event
        # sequence is identical to an unsanitized one.
        self.san = None
        # Optional Telemetry (repro.obs.telemetry): push-counter hooks
        # only record into rollups (no events), guarded with
        # `if telem is not None:` (simlint O302).
        self.telem = None
        # Optional FlightRecorder (repro.obs.explain): the send hooks
        # append into its bounded message ring, guarded with
        # `if recorder is not None:` (simlint O303).
        self.recorder = None
        self.link = link
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.counters = counters if counters is not None else MessageCounters()
        self.reliable = reliable
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else random.Random(0)
        self.client = Endpoint(sim, name + ".client")
        self.server = Endpoint(sim, name + ".server")

    # -- sending --------------------------------------------------------------

    def send_from_client(self, message: Message) -> None:
        """Inject ``message`` on the client->server direction."""
        self._count(message)
        if self.tracer.enabled:
            self.tracer.message("c2s", message)
        recorder = self.recorder
        if recorder is not None:
            recorder.note_message("c2s", message)
        self._deliver(message, self.link.forward, self.server)

    def send_from_server(self, message: Message) -> None:
        """Inject ``message`` on the server->client direction."""
        self._count(message)
        if self.tracer.enabled:
            self.tracer.message("s2c", message)
        recorder = self.recorder
        if recorder is not None:
            recorder.note_message("s2c", message)
        self._deliver(message, self.link.backward, self.client)

    # -- internals ------------------------------------------------------------

    def _count(self, message: Message) -> None:
        if message.kind == REQUEST:
            if message.is_retransmission:
                self.counters.count_retransmission(message.op, message.size)
            else:
                self.counters.count_request(message.op, message.size)
        elif message.kind == REPLY:
            self.counters.count_reply(message.op, message.size)
        else:
            raise ValueError("unknown message kind: %r" % (message.kind,))

    def _deliver(self, message: Message, channel, destination: Endpoint) -> None:
        delay = channel.delivery_delay(message.size)
        san = self.san
        if san is not None:
            san.note_send(message)
        if not self.reliable and self.rng.random() < self.loss_rate:
            if san is not None:
                san.note_loss(message)
            return  # the bytes were spent; the message never arrives
        fault = self.fault
        if fault is not None:
            verdict, extra = fault.filter_message(
                message, channel is self.link.forward)
            if verdict is not None:
                if verdict == "drop":
                    if san is not None:
                        san.note_fault_drop(message)
                    return  # lost in flight; bytes were spent
                if verdict == "delay":
                    delay += extra
                else:  # "duplicate": a second copy trails the first
                    if san is not None:
                        san.note_fault_duplicate(message)
                    self.sim._schedule_call1(
                        destination.inbox.put, message, delay + extra)
        if san is not None:
            san.note_scheduled(message)
        telem = self.telem
        if telem is not None:
            # Progress signal for the zero-progress-stall watcher (T503).
            telem.count("net.delivered", 1.0)
        # Flat calendar record: no per-message closure allocation.
        self.sim._schedule_call1(destination.inbox.put, message, delay)
