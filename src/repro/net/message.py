"""Protocol messages.

A :class:`Message` is the unit the paper's Ethereal traces counted: one
protocol-level request or reply (an RPC call/reply for NFS, a command or
response PDU for iSCSI).  Size accounting separates protocol header bytes
from payload bytes so byte totals track the paper's "Bytes" columns.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Message", "REQUEST", "REPLY"]

REQUEST = "request"
REPLY = "reply"

_xid_counter = itertools.count(1)


@dataclass
class Message:
    """One protocol message on the wire."""

    op: str
    kind: str = REQUEST
    xid: int = field(default_factory=lambda: next(_xid_counter))
    header_bytes: int = 128
    payload_bytes: int = 0
    body: Dict[str, Any] = field(default_factory=dict)
    is_retransmission: bool = False
    # Observability: id of the tracing span that sent this message (0 when
    # untraced).  Lets the server parent its work to the client's span.
    span_id: int = 0

    @property
    def size(self) -> int:
        return self.header_bytes + self.payload_bytes

    def make_reply(self, payload_bytes: int = 0, **body: Any) -> "Message":
        """Build the reply paired with this request (same xid)."""
        return Message(
            op=self.op,
            kind=REPLY,
            xid=self.xid,
            header_bytes=self.header_bytes,
            payload_bytes=payload_bytes,
            body=body,
            span_id=self.span_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Message %s %s xid=%d %dB>" % (self.kind, self.op, self.xid, self.size)
