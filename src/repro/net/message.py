"""Protocol messages.

A :class:`Message` is the unit the paper's Ethereal traces counted: one
protocol-level request or reply (an RPC call/reply for NFS, a command or
response PDU for iSCSI).  Size accounting separates protocol header bytes
from payload bytes so byte totals track the paper's "Bytes" columns.

``Message`` is a plain ``__slots__`` class (not a dataclass): one instance
is allocated per protocol message, which makes it one of the hottest
allocation sites in a simulation run.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

__all__ = ["Message", "REQUEST", "REPLY"]

REQUEST = "request"
REPLY = "reply"

_xid_counter = itertools.count(1)


class Message:
    """One protocol message on the wire."""

    __slots__ = ("op", "kind", "xid", "header_bytes", "payload_bytes",
                 "body", "is_retransmission", "span_id", "cancelled")

    def __init__(
        self,
        op: str,
        kind: str = REQUEST,
        xid: Optional[int] = None,
        header_bytes: int = 128,
        payload_bytes: int = 0,
        body: Optional[Dict[str, Any]] = None,
        is_retransmission: bool = False,
        # Observability: id of the tracing span that sent this message (0
        # when untraced).  Lets the server parent its work to the client's
        # span.
        span_id: int = 0,
    ):
        self.op = op
        self.kind = kind
        self.xid = next(_xid_counter) if xid is None else xid
        self.header_bytes = header_bytes
        self.payload_bytes = payload_bytes
        self.body = {} if body is None else body
        self.is_retransmission = is_retransmission
        self.span_id = span_id
        # Set when the connection carrying an in-flight message is torn
        # down (RPC reset): the receiver discards it on arrival, exactly
        # as a TCP teardown loses undelivered bytes.
        self.cancelled = False

    @property
    def size(self) -> int:
        return self.header_bytes + self.payload_bytes

    def make_reply(self, payload_bytes: int = 0, **body: Any) -> "Message":
        """Build the reply paired with this request (same xid)."""
        return Message(
            op=self.op,
            kind=REPLY,
            xid=self.xid,
            header_bytes=self.header_bytes,
            payload_bytes=payload_bytes,
            body=body,
            span_id=self.span_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Message %s %s xid=%d %dB>" % (self.kind, self.op, self.xid, self.size)
