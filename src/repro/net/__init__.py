"""Network substrate: links, messages, transports, and RPC."""

from .link import GIGABIT_BPS, Link
from .message import Message, REPLY, REQUEST
from .rpc import RetransmitPolicy, RpcError, RpcPeer, RpcTimeoutError
from .transport import DuplexTransport, Endpoint

__all__ = [
    "DuplexTransport",
    "Endpoint",
    "GIGABIT_BPS",
    "Link",
    "Message",
    "REPLY",
    "REQUEST",
    "RetransmitPolicy",
    "RpcError",
    "RpcPeer",
    "RpcTimeoutError",
]
