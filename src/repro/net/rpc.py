"""A Sun-RPC-like request/reply layer.

Both NFS ends are :class:`RpcPeer` objects.  A peer can

* issue calls (:meth:`RpcPeer.call`) — it assigns transaction ids, waits for
  the matching reply, and (when a retransmission policy is configured)
  re-sends on timeout with exponential backoff.  This models the Linux NFS
  client behavior the paper observed in Section 4.6: the client's RPC timer
  fires at high RTT even though the reply is already in transit, producing
  spurious retransmissions;
* serve calls — incoming requests are dispatched to a registered handler
  coroutine; a duplicate-request cache replays replies for retransmitted
  xids instead of re-executing them (standard NFS server behavior).

Server→client calls use the same machinery, which is how the Section-7
enhancements implement cache-invalidation callbacks and delegation recalls.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Generator, Optional

from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Event, Resource, Simulator
from .message import Message, REPLY, REQUEST
from .transport import Endpoint

__all__ = ["RetransmitPolicy", "RpcError", "RpcTimeoutError", "RpcPeer"]

Handler = Callable[[Message], Generator]


class RpcError(RuntimeError):
    """An RPC-level failure surfaced to the caller."""


class RpcTimeoutError(RpcError):
    """All retransmission attempts exhausted without a reply."""


class RetransmitPolicy:
    """Timeout/backoff schedule for a calling peer.

    The wait before attempt *n+1* is ``timeout * backoff**n`` (classic
    exponential backoff; ``backoff=1`` gives a fixed timer), optionally
    clamped to ``max_timeout`` — the Linux RPC major-timeout cap, which
    matters under the long fault windows of :mod:`repro.faults`.
    """

    def __init__(
        self,
        timeout: float,
        backoff: float = 2.0,
        max_retries: int = 5,
        reset_connection: bool = False,
        max_timeout: Optional[float] = None,
    ):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if max_timeout is not None and max_timeout < timeout:
            raise ValueError("max_timeout must be >= timeout")
        self.timeout = timeout
        self.backoff = backoff
        self.max_retries = max_retries
        self.max_timeout = max_timeout
        # TCP-mount semantics: a timeout tears the connection down, so the
        # in-flight reply is lost and the retransmission starts a fresh
        # exchange (the Linux behavior behind Fig. 6a's divergence).
        self.reset_connection = reset_connection

    def schedule(self):
        """Yield successive wait intervals, one per transmission attempt."""
        wait = self.timeout
        cap = self.max_timeout
        for _attempt in range(self.max_retries + 1):
            yield wait
            wait *= self.backoff
            if cap is not None and wait > cap:
                wait = cap


class RpcPeer:
    """One end of an RPC association (see module docstring)."""

    DUPLICATE_CACHE_SIZE = 1024

    def __init__(
        self,
        sim: Simulator,
        endpoint: Endpoint,
        send: Callable[[Message], None],
        cpu: Optional[Resource] = None,
        per_message_cpu: float = 0.0,
        per_byte_cpu: float = 0.0,
        retransmit: Optional[RetransmitPolicy] = None,
        name: str = "rpc",
        tracer: Optional[NullTracer] = None,
        track: str = "client",
    ):
        self.sim = sim
        self.endpoint = endpoint
        self._send = send
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.track = track
        self.cpu = cpu
        self.per_message_cpu = per_message_cpu
        self.per_byte_cpu = per_byte_cpu
        self.retransmit = retransmit
        self.name = name
        # Optional RpcSan (repro.check.simsan): observation-only hooks,
        # same None-guarded pattern as the transport's fault hook.
        self.san = None
        self.handler: Optional[Handler] = None
        self._pending: Dict[int, Event] = {}
        self._duplicate_cache: "OrderedDict[int, Message]" = OrderedDict()
        self._in_progress: set = set()
        self.calls_issued = 0
        self.calls_served = 0
        self.retransmissions_seen = 0
        self._dispatcher = sim.spawn(self._dispatch_loop(), name=name + ".dispatch")

    def set_handler(self, handler: Handler) -> None:
        """Register the serving coroutine: ``handler(msg) -> (payload, body)``."""
        self.handler = handler

    # -- calling ----------------------------------------------------------------

    def call(
        self,
        op: str,
        payload_bytes: int = 0,
        header_bytes: int = 128,
        **body: Any,
    ) -> Generator[Event, Any, Message]:
        """Coroutine: send a request and return the matching reply message."""
        request = Message(
            op=op,
            kind=REQUEST,
            header_bytes=header_bytes,
            payload_bytes=payload_bytes,
            body=body,
        )
        self.calls_issued += 1
        if self.san is not None:
            self.san.note_issued(request.xid)
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin_span(
                "rpc:" + op, cat="rpc", track=self.track,
                xid=request.xid, bytes=request.size,
            )
            request.span_id = span.id
        try:
            yield from self._charge(request.size)
            reply_event = self.sim.event()
            self._pending[request.xid] = reply_event
            try:
                self._send(request)
                if self.retransmit is None:
                    reply = yield reply_event
                else:
                    reply = yield from self._call_with_retries(request, reply_event)
            finally:
                self._pending.pop(request.xid, None)
        finally:
            if span is not None:
                self.tracer.end_span(span)
        return reply

    def _call_with_retries(
        self, request: Message, reply_event: Event
    ) -> Generator[Event, Any, Message]:
        current = request
        try:
            for wait in self.retransmit.schedule():
                timer = self.sim.timeout(wait)
                winner, value = yield self.sim.any_of([reply_event, timer])
                if winner is reply_event:
                    if current is not request:
                        # The exchange was retransmitted: a non-idempotent
                        # op may have already executed once before its
                        # reply was lost, so callers must apply replay
                        # (retry) semantics to error statuses.
                        value.is_retransmission = True
                    return value
                # Timer fired first: retransmit.
                if self.retransmit.reset_connection:
                    # The connection reset loses the in-flight reply:
                    # abandon the old xid and start a fresh exchange.
                    # Undelivered bytes of the old connection vanish with
                    # it, so an in-flight copy of the request must never
                    # reach (and re-execute on) the server.
                    current.cancelled = True
                    self._pending.pop(current.xid, None)
                    clone = Message(
                        op=request.op,
                        kind=REQUEST,
                        header_bytes=request.header_bytes,
                        payload_bytes=request.payload_bytes,
                        body=request.body,
                        is_retransmission=True,
                        span_id=request.span_id,
                    )
                    reply_event = self.sim.event()
                    self._pending[clone.xid] = reply_event
                    if self.san is not None:
                        self.san.note_issued(clone.xid)
                else:
                    clone = Message(
                        op=request.op,
                        kind=REQUEST,
                        xid=request.xid,
                        header_bytes=request.header_bytes,
                        payload_bytes=request.payload_bytes,
                        body=request.body,
                        is_retransmission=True,
                        span_id=request.span_id,
                    )
                current = clone
                yield from self._charge(clone.size)
                self._send(clone)
        finally:
            self._pending.pop(current.xid, None)
        raise RpcTimeoutError(
            "%s: no reply to %s xid=%d after %d attempts"
            % (self.name, request.op, request.xid, self.retransmit.max_retries + 1)
        )

    # -- serving ----------------------------------------------------------------

    def _dispatch_loop(self) -> Generator:
        while True:
            message = yield from self.endpoint.inbox.get()
            if message.kind == REPLY:
                self._complete_call(message)
            else:
                self.sim.spawn(
                    self._serve(message), name=self.name + ".serve." + message.op
                )

    def _complete_call(self, message: Message) -> None:
        pending = self._pending.pop(message.xid, None)
        if pending is not None:
            pending.trigger(message)
        # else: a duplicate reply for a retransmitted call — dropped.
        elif self.san is not None:
            self.san.note_orphan_reply(message.xid)

    def _serve(self, message: Message) -> Generator:
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin_span(
                "serve:" + message.op, cat="rpc", track=self.track,
                parent=message.span_id or None, xid=message.xid,
            )
        try:
            yield from self._serve_inner(message)
        finally:
            if span is not None:
                self.tracer.end_span(span)

    def _serve_inner(self, message: Message) -> Generator:
        san = self.san
        if san is not None:
            san.note_request(message)
        if message.cancelled:
            # The connection that carried it was torn down in flight.
            if san is not None:
                san.note_request_cancelled(message)
            return
        yield from self._charge(message.size)
        cached = self._duplicate_cache.get(message.xid)
        if cached is not None:
            # Retransmitted request: replay the reply without re-executing.
            self.retransmissions_seen += 1
            if san is not None:
                san.note_request_replayed(message)
            yield from self._charge(cached.size)
            self._send(cached)
            return
        if message.xid in self._in_progress:
            # Retransmission of a call still executing: drop it — the
            # original execution's reply will satisfy the caller.
            self.retransmissions_seen += 1
            if san is not None:
                san.note_request_dropped_in_progress(message)
            return
        if self.handler is None:
            raise RpcError("%s received a call but has no handler" % (self.name,))
        self._in_progress.add(message.xid)
        try:
            payload_bytes, body = yield from self.handler(message)
        finally:
            self._in_progress.discard(message.xid)
        reply = message.make_reply(payload_bytes=payload_bytes, **body)
        self.calls_served += 1
        if san is not None:
            san.note_request_served(message)
        self._remember_reply(message.xid, reply)
        yield from self._charge(reply.size)
        self._send(reply)

    def _remember_reply(self, xid: int, reply: Message) -> None:
        self._duplicate_cache[xid] = reply
        while len(self._duplicate_cache) > self.DUPLICATE_CACHE_SIZE:
            self._duplicate_cache.popitem(last=False)

    def session_reset(self) -> None:
        """Forget replay state across a transport-session boundary.

        Models what a server reboot (knfsd's duplicate-request cache
        lives in memory) or an iSCSI re-login (a fresh session starts a
        new command sequence) does to the serving side; calls already
        executing keep running.
        """
        self._duplicate_cache.clear()

    # -- CPU accounting -----------------------------------------------------------

    def _charge(self, size: int) -> Generator:
        if self.cpu is not None:
            cost = self.per_message_cpu + self.per_byte_cpu * size
            if cost > 0:
                yield from self.cpu.use(cost)
        return None
