"""Correctness tooling: the simulator-discipline linter and sanitizers.

* :mod:`repro.check.simlint` — an AST linter for determinism hazards
  (D-rules), process discipline (P-rules), and observability discipline
  (O-rules).  CLI: ``repro lint [paths] [--format text|json]``.
* :mod:`repro.check.simsan` — opt-in runtime sanitizers (deadlocks,
  resource leaks, event-order ties, message/reply/task conservation).
  CLI: ``--san`` on the workload-running subcommands.
"""

from .simlint import (
    RULES,
    Rule,
    Violation,
    format_json,
    format_text,
    lint_paths,
    lint_source,
)
from .simsan import (
    CheckedSimulator,
    Finding,
    RpcSan,
    SanitizerError,
    SimSan,
    TransportSan,
)

__all__ = [
    "RULES",
    "Rule",
    "Violation",
    "format_json",
    "format_text",
    "lint_paths",
    "lint_source",
    "CheckedSimulator",
    "Finding",
    "RpcSan",
    "SanitizerError",
    "SimSan",
    "TransportSan",
]
