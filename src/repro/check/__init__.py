"""Correctness tooling: the simulator-discipline linter and sanitizers.

* :mod:`repro.check.simlint` — a whole-program AST linter for
  determinism hazards (D-rules), process discipline (P-rules),
  observability discipline (O-rules), shard safety (S-rules), and
  protocol state-machines (M-rules).  Per-file scans are layered with
  cross-module passes from :mod:`repro.check.graph` /
  :mod:`repro.check.dataflow` / :mod:`repro.check.statemachine`.
  CLI: ``repro lint [paths] [--format text|json|sarif] [--fix]
  [--debt]``.
* :mod:`repro.check.fixer` — autofix for the mechanical rules
  (``--fix``): sorted() wraps, RNG seeding, hook guards.
* :mod:`repro.check.sarif` — SARIF 2.1.0 output and an offline
  structural validator for the CI code-scanning artifact.
* :mod:`repro.check.simsan` — opt-in runtime sanitizers (deadlocks,
  resource leaks, event-order ties, message/reply/task conservation).
  CLI: ``--san`` on the workload-running subcommands.
"""

from .fixer import FIXABLE, fix_paths, fix_source
from .sarif import format_sarif, validate_sarif
from .simlint import (
    RULES,
    Rule,
    Suppression,
    Violation,
    collect_suppressions,
    format_debt,
    format_json,
    format_text,
    lint_paths,
    lint_program,
    lint_source,
)
from .simsan import (
    CheckedSimulator,
    Finding,
    RpcSan,
    SanitizerError,
    SimSan,
    TransportSan,
)

__all__ = [
    "RULES",
    "Rule",
    "Suppression",
    "Violation",
    "FIXABLE",
    "collect_suppressions",
    "fix_paths",
    "fix_source",
    "format_debt",
    "format_json",
    "format_sarif",
    "format_text",
    "lint_paths",
    "lint_program",
    "lint_source",
    "validate_sarif",
    "CheckedSimulator",
    "Finding",
    "RpcSan",
    "SanitizerError",
    "SimSan",
    "TransportSan",
]
