"""Autofix for the mechanical simlint rules (``repro lint --fix``).

Three rewrite classes are safe enough to automate, because each has a
single canonical fix whose effect on a correct program is at most a
reordering into the deterministic order:

* **D103** — wrap the unordered iterable in ``sorted(...)`` at the
  iteration site (``for x in s:`` → ``for x in sorted(s):``), covering
  direct set expressions, laundered locals, and dict views.
* **D102** — give a bare ``random.Random()`` the explicit seed ``0``
  (the caller should thread a real seed through; ``Random(0)`` makes
  the stream reproducible *now* and greppable later).
* **O301/O302/O303** — wrap a bare hook statement in its guard
  (``tracer.instant(...)`` → ``if tracer.enabled: tracer.instant(...)``
  on two lines), preserving indentation.  Only single-line expression
  statements are rewritten; anything structurally involved is left for
  a human.

The engine re-lints between passes (per-file mode, suppressions
respected — a suppressed line is never rewritten) and stops at a
fixpoint, so ``--fix`` twice is a no-op by construction.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from .simlint import Violation, lint_source

__all__ = ["FIXABLE", "fix_source", "fix_paths"]

FIXABLE = frozenset({"D103", "D102", "O301", "O302", "O303"})

_GUARD_TEMPLATES = {
    "O301": "if %s.enabled:",
    "O302": "if %s is not None:",
    "O303": "if %s is not None:",
}

_MAX_PASSES = 10


def _line_offsets(source: str) -> List[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _span(offsets: List[int], node: ast.AST) -> Optional[Tuple[int, int]]:
    end_lineno = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_lineno is None or end_col is None:
        return None
    start = offsets[node.lineno - 1] + node.col_offset
    end = offsets[end_lineno - 1] + end_col
    return start, end


def _node_at(tree: ast.Module, line: int,
             col: int) -> Optional[ast.expr]:
    """The widest expression starting exactly at ``line:col``."""
    best: Optional[ast.expr] = None
    for node in ast.walk(tree):
        if not isinstance(node, ast.expr):
            continue
        if node.lineno != line or node.col_offset != col:
            continue
        if best is None or (
                (getattr(node, "end_lineno", 0),
                 getattr(node, "end_col_offset", 0))
                > (getattr(best, "end_lineno", 0),
                   getattr(best, "end_col_offset", 0))):
            best = node
    return best


def _parents(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _fix_d103(source: str, offsets: List[int], tree: ast.Module,
              violation: Violation) -> Optional[Tuple[int, int, str]]:
    node = _node_at(tree, violation.line, violation.col)
    if node is None:
        return None
    span = _span(offsets, node)
    if span is None:
        return None
    segment = source[span[0]:span[1]]
    return span[0], span[1], "sorted(%s)" % segment


def _fix_d102(source: str, offsets: List[int], tree: ast.Module,
              violation: Violation) -> Optional[Tuple[int, int, str]]:
    node = _node_at(tree, violation.line, violation.col)
    if not isinstance(node, ast.Call) or node.args or node.keywords:
        return None
    span = _span(offsets, node)
    if span is None:
        return None
    segment = source[span[0]:span[1]]
    if not segment.rstrip().endswith(")"):
        return None
    closing = segment.rindex(")")
    opening = segment.rindex("(", 0, closing)
    fixed = segment[:opening + 1] + "0" + segment[closing:]
    return span[0], span[1], fixed


def _fix_o3xx(source: str, offsets: List[int], tree: ast.Module,
              violation: Violation) -> Optional[Tuple[int, int, str]]:
    node = _node_at(tree, violation.line, violation.col)
    if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute):
        return None
    parents = _parents(tree)
    stmt = parents.get(node)
    if not isinstance(stmt, ast.Expr) or stmt.value is not node:
        return None  # only a bare hook statement can be wrapped
    if getattr(stmt, "end_lineno", stmt.lineno) != stmt.lineno:
        return None  # multi-line statements are left for a human
    receiver_span = _span(offsets, node.func.value)
    stmt_span = _span(offsets, stmt)
    if receiver_span is None or stmt_span is None:
        return None
    receiver = source[receiver_span[0]:receiver_span[1]]
    stmt_text = source[stmt_span[0]:stmt_span[1]]
    indent = " " * stmt.col_offset
    guard = _GUARD_TEMPLATES[violation.code] % receiver
    replacement = "%s\n%s    %s" % (guard, indent, stmt_text)
    return stmt_span[0], stmt_span[1], replacement


_FIXERS = {
    "D103": _fix_d103,
    "D102": _fix_d102,
    "O301": _fix_o3xx,
    "O302": _fix_o3xx,
    "O303": _fix_o3xx,
}


def _one_pass(source: str, path: str,
              module: Optional[str]) -> Tuple[str, int]:
    """Apply every non-overlapping fix once; returns (source, count)."""
    violations = [v for v in lint_source(source, path, module)
                  if v.code in FIXABLE]
    if not violations:
        return source, 0
    tree = ast.parse(source, filename=path)
    offsets = _line_offsets(source)
    edits: List[Tuple[int, int, str]] = []
    for violation in violations:
        edit = _FIXERS[violation.code](source, offsets, tree, violation)
        if edit is not None:
            edits.append(edit)
    # Apply right-to-left so earlier offsets stay valid; drop overlaps
    # (e.g. a laundering fix inside a statement another fix rewraps).
    edits.sort(key=lambda e: (e[0], e[1]), reverse=True)
    applied = 0
    last_start = len(source) + 1
    for start, end, replacement in edits:
        if end > last_start:
            continue
        source = source[:start] + replacement + source[end:]
        last_start = start
        applied += 1
    return source, applied


def fix_source(source: str, path: str = "<string>",
               module: Optional[str] = None) -> Tuple[str, int]:
    """Fix one buffer to a fixpoint; returns (new_source, fix_count)."""
    total = 0
    for _ in range(_MAX_PASSES):
        source, applied = _one_pass(source, path, module)
        total += applied
        if not applied:
            break
    return source, total


def fix_paths(paths: Sequence[str]) -> Dict[str, int]:
    """Fix every ``.py`` file under ``paths`` in place.

    Returns ``{path: fixes_applied}`` for the files that changed.
    """
    from .graph import module_name_for
    from .simlint import _iter_py_files

    out: Dict[str, int] = {}
    for filename in _iter_py_files(paths):
        with open(filename, encoding="utf-8") as handle:
            original = handle.read()
        fixed, count = fix_source(original, filename,
                                  module_name_for(filename))
        if count and fixed != original:
            with open(filename, "w", encoding="utf-8") as handle:
                handle.write(fixed)
            out[filename] = count
    return out
