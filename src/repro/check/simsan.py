"""simsan: opt-in runtime sanitizers for the simulation kernel and stacks.

Where :mod:`repro.check.simlint` looks at code shapes, the sanitizers
watch a *run*: they hang pure-arithmetic observation hooks off the kernel
and the protocol layers (the same ``x = self.san; if x is not None:``
pattern the fault injector uses), accumulate counters, and verify
conservation identities when the run ends.  The checks observe — they
never schedule, delay, or reorder anything — so a sanitized run's
outputs are bit-identical to an unsanitized run unless a check fires.

Checks and finding codes
------------------------
* **S401 deadlock** — at end of run, a live process still waiting on an
  untriggered event with an empty calendar.  (Processes parked in a
  :class:`~repro.sim.Store` are idle servers, not deadlocks.)
* **S402 resource leak** — a :class:`~repro.sim.Resource` with held
  slots or queued waiters at end of run.
* **S403 event-order violation** — the ``(when, seq)`` total order tied
  or went backwards, or a record fired in the past.
* **S404 message conservation** — a transport message was sent but
  neither delivered, dropped with a fault verdict, nor lost to the
  configured loss rate; or an inbox held undispatched messages.
* **S405 reply-per-call** — an RPC request was consumed without being
  served, replayed, or accounted as cancelled/duplicate; or a call was
  still outstanding; or a reply arrived for a call never issued.
* **S406 iSCSI task-set conservation** — SCSI commands issued by the
  initiator that never completed.
* **S407 cross-shard causality** — in a sharded run
  (:mod:`repro.sim.shard`), a routed message arrived less than the
  lookahead after it was sent, or below the synchronization window's
  floor.  Checked by :class:`~repro.sim.shard.ShardedSimulator` at
  routing time when built with ``san=True``; per-shard S403 order
  verification rides on one :class:`CheckedSimulator` per shard.

Enable with ``StorageStack(..., san=True)`` / ``make_stack(...,
san=True)`` or ``--san`` on the workload-running CLI subcommands; then
``stack.check()`` (strict) raises :class:`SanitizerError` on findings.
"""

from __future__ import annotations

from heapq import heappop
from typing import Any, List, Optional

from ..sim.kernel import Process, Simulator

__all__ = [
    "Finding",
    "SanitizerError",
    "CheckedSimulator",
    "TransportSan",
    "RpcSan",
    "SimSan",
]

# Stop accumulating order findings past this point: one corrupted
# calendar yields one finding per subsequent pop, and the first few tell
# the whole story.
_MAX_ORDER_FINDINGS = 32


class Finding:
    """One sanitizer finding: a stable code plus a human message."""

    __slots__ = ("code", "message")

    def __init__(self, code: str, message: str):
        self.code = code
        self.message = message

    def __repr__(self) -> str:
        return "Finding(%s: %s)" % (self.code, self.message)

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Finding)
                and (self.code, self.message) == (other.code, other.message))


class SanitizerError(AssertionError):
    """Raised by strict verification when any sanitizer check fired."""

    def __init__(self, findings: List[Finding]):
        self.findings = findings
        lines = ["%d sanitizer finding%s:" % (
            len(findings), "" if len(findings) == 1 else "s")]
        lines.extend("  [%s] %s" % (f.code, f.message) for f in findings)
        super().__init__("\n".join(lines))


class CheckedSimulator(Simulator):
    """A :class:`Simulator` whose run loops verify the firing order.

    The dispatch is a faithful copy of the kernel's (same integer-opcode
    switch, same clock updates), with one added block per pop: the
    ``(when, seq)`` key must strictly increase and never lie in the past.
    It also keeps a registry of spawned processes so the end-of-run
    deadlock check can enumerate survivors.  Checks only read and count —
    the event sequence is identical to the plain kernel's.
    """

    __slots__ = ("san_processes", "order_findings", "_last_when",
                 "_last_seq")

    def __init__(self):
        super().__init__()
        self.san_processes: List[Process] = []
        self.order_findings: List[Finding] = []
        self._last_when = -1.0
        self._last_seq = -1

    def spawn(self, generator, name: str = "") -> Process:
        proc = Process(self, generator, name=name)
        self.san_processes.append(proc)
        return proc

    def _check_order(self, record) -> None:
        when = record[0]
        seq = record[1]
        if len(self.order_findings) < _MAX_ORDER_FINDINGS:
            if when < self.now:
                self.order_findings.append(Finding(
                    "S403",
                    "record (when=%r, seq=%d) fired in the past at t=%r"
                    % (when, seq, self.now)))
            if (when, seq) <= (self._last_when, self._last_seq):
                self.order_findings.append(Finding(
                    "S403",
                    "(when, seq) order tie/regression: (%r, %d) after "
                    "(%r, %d)" % (when, seq, self._last_when,
                                  self._last_seq)))
        self._last_when = when
        self._last_seq = seq

    def run(self, until: Optional[float] = None) -> None:
        calendar = self._calendar
        pop = heappop
        check = self._check_order
        recorder = self.recorder
        if until is None:
            while calendar:
                record = pop(calendar)
                check(record)
                when = record[0]
                if when > self.now:
                    self.now = when
                if recorder is not None:
                    recorder.note_event(record)
                kind = record[2]
                target = record[3]
                if kind == 0:
                    target._process()
                elif kind == 1:
                    target(record[4])
                elif kind == 2:
                    target._resume(record[4], None)
                elif kind == 3:
                    target._resume(None, record[4])
                else:
                    target()
        else:
            while calendar:
                when = calendar[0][0]
                if when > until:
                    self.now = until
                    break
                record = pop(calendar)
                check(record)
                if when > self.now:
                    self.now = when
                if recorder is not None:
                    recorder.note_event(record)
                kind = record[2]
                target = record[3]
                if kind == 0:
                    target._process()
                elif kind == 1:
                    target(record[4])
                elif kind == 2:
                    target._resume(record[4], None)
                elif kind == 3:
                    target._resume(None, record[4])
                else:
                    target()
            else:
                if until > self.now:
                    self.now = until
        self._raise_unhandled()

    def run_window(self, horizon: float) -> int:
        calendar = self._calendar
        pop = heappop
        check = self._check_order
        recorder = self.recorder
        count = 0
        while calendar:
            when = calendar[0][0]
            if when >= horizon:
                break
            record = pop(calendar)
            check(record)
            count += 1
            if when > self.now:
                self.now = when
            if recorder is not None:
                recorder.note_event(record)
            kind = record[2]
            target = record[3]
            if kind == 0:
                target._process()
            elif kind == 1:
                target(record[4])
            elif kind == 2:
                target._resume(record[4], None)
            elif kind == 3:
                target._resume(None, record[4])
            else:
                target()
        self._raise_unhandled()
        return count

    def run_process(self, generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        proc = self.spawn(generator, name=name)
        calendar = self._calendar
        pop = heappop
        check = self._check_order
        recorder = self.recorder
        if until is None:
            while calendar and not proc.triggered:
                record = pop(calendar)
                check(record)
                when = record[0]
                if when > self.now:
                    self.now = when
                if recorder is not None:
                    recorder.note_event(record)
                kind = record[2]
                target = record[3]
                if kind == 0:
                    target._process()
                elif kind == 1:
                    target(record[4])
                elif kind == 2:
                    target._resume(record[4], None)
                elif kind == 3:
                    target._resume(None, record[4])
                else:
                    target()
        else:
            while calendar and not proc.triggered:
                when = calendar[0][0]
                if when > until:
                    self.now = until
                    break
                record = pop(calendar)
                check(record)
                if when > self.now:
                    self.now = when
                if recorder is not None:
                    recorder.note_event(record)
                kind = record[2]
                target = record[3]
                if kind == 0:
                    target._process()
                elif kind == 1:
                    target(record[4])
                elif kind == 2:
                    target._resume(record[4], None)
                elif kind == 3:
                    target._resume(None, record[4])
                else:
                    target()
        self._raise_unhandled()
        if not proc.triggered:
            if until is not None:
                if until > self.now:
                    self.now = until
                return None
            from ..sim.kernel import SimulationError
            raise SimulationError(
                "process %r deadlocked: calendar empty at t=%s"
                % (proc.name, self.now)
            )
        if proc.ok is False:
            proc.defused = True
            raise proc.value
        return proc.value


class TransportSan:
    """Message-conservation counters for one :class:`DuplexTransport`.

    ``DuplexTransport._deliver`` calls the ``note_*`` hooks (guarded by
    ``san is not None``, mirroring the fault hook); every hook is a bare
    counter increment.
    """

    __slots__ = ("sent", "lost", "fault_dropped", "fault_duplicated",
                 "scheduled")

    def __init__(self):
        self.sent = 0
        self.lost = 0
        self.fault_dropped = 0
        self.fault_duplicated = 0
        self.scheduled = 0

    def note_send(self, _message) -> None:
        self.sent += 1

    def note_loss(self, _message) -> None:
        self.lost += 1

    def note_fault_drop(self, _message) -> None:
        self.fault_dropped += 1

    def note_fault_duplicate(self, _message) -> None:
        self.fault_duplicated += 1

    def note_scheduled(self, _message) -> None:
        self.scheduled += 1


class RpcSan:
    """Reply-per-call accounting for one :class:`RpcPeer`."""

    __slots__ = ("name", "xids_issued", "requests", "cancelled",
                 "replayed", "dropped_in_progress", "served",
                 "orphan_replies")

    def __init__(self, name: str = "rpc"):
        self.name = name
        self.xids_issued = set()
        self.requests = 0
        self.cancelled = 0
        self.replayed = 0
        self.dropped_in_progress = 0
        self.served = 0
        self.orphan_replies: List[int] = []

    # calling side
    def note_issued(self, xid: int) -> None:
        self.xids_issued.add(xid)

    def note_orphan_reply(self, xid: int) -> None:
        # A reply with no pending call: legitimate when the call was
        # retransmitted/cancelled (its xid was issued), a protocol bug
        # otherwise.  Classified in verify().
        self.orphan_replies.append(xid)

    # serving side
    def note_request(self, _message) -> None:
        self.requests += 1

    def note_request_cancelled(self, _message) -> None:
        self.cancelled += 1

    def note_request_replayed(self, _message) -> None:
        self.replayed += 1

    def note_request_dropped_in_progress(self, _message) -> None:
        self.dropped_in_progress += 1

    def note_request_served(self, _message) -> None:
        self.served += 1


class SimSan:
    """The per-stack sanitizer bundle: wiring, verification, findings.

    Constructed by :class:`~repro.core.comparison.StorageStack` when
    ``san=True``: attaches a :class:`TransportSan` to the stack's
    transport and an :class:`RpcSan` to each RPC peer, and reads the
    :class:`CheckedSimulator`'s order/process registries at verify time.
    """

    def __init__(self, stack):
        self.stack = stack
        self.transport_san = TransportSan()
        stack.transport.san = self.transport_san
        self.rpc_sans = []
        for peer in stack.rpc_peers():
            san = RpcSan(peer.name)
            peer.san = san
            self.rpc_sans.append((peer, san))

    # -- individual checks ----------------------------------------------------

    def _deadlock_findings(self) -> List[Finding]:
        sim = self.stack.sim
        findings: List[Finding] = []
        processes = getattr(sim, "san_processes", None)
        if processes is None or sim._calendar:
            return findings
        survivors = [proc for proc in processes if not proc.triggered]
        for proc in survivors:
            waiting_on = proc._waiting_on
            if waiting_on is None:
                continue  # parked in a Store: an idle server, by design
            findings.append(Finding(
                "S401",
                "process %r deadlocked waiting on %r with an empty "
                "calendar" % (proc.name, waiting_on)))
        # The registry only matters for survivors; drop finished entries
        # so long sanitized runs don't accumulate dead Process objects.
        processes[:] = survivors
        return findings

    def _leak_findings(self) -> List[Finding]:
        findings: List[Finding] = []
        for resource in self.stack.resources():
            held = resource.capacity - resource.available
            if held:
                findings.append(Finding(
                    "S402",
                    "resource %r ends the run with %d held slot%s"
                    % (resource.name, held, "" if held == 1 else "s")))
            if resource.queue_length:
                findings.append(Finding(
                    "S402",
                    "resource %r ends the run with %d queued waiter%s"
                    % (resource.name, resource.queue_length,
                       "" if resource.queue_length == 1 else "s")))
        return findings

    def _order_findings(self) -> List[Finding]:
        return list(getattr(self.stack.sim, "order_findings", ()))

    def _message_findings(self) -> List[Finding]:
        findings: List[Finding] = []
        t = self.transport_san
        transport = self.stack.transport
        if t.sent != t.lost + t.fault_dropped + t.scheduled:
            findings.append(Finding(
                "S404",
                "transport conservation broken: %d sent != %d lost + %d "
                "fault-dropped + %d scheduled"
                % (t.sent, t.lost, t.fault_dropped, t.scheduled)))
        delivered = (transport.client.inbox.total_put
                     + transport.server.inbox.total_put)
        expected = t.scheduled + t.fault_duplicated
        if delivered != expected:
            findings.append(Finding(
                "S404",
                "%d message deliveries scheduled but %d arrived "
                "(%d still in flight at end of run)"
                % (expected, delivered, expected - delivered)))
        for endpoint in (transport.client, transport.server):
            backlog = len(endpoint.inbox)
            if backlog:
                findings.append(Finding(
                    "S404",
                    "endpoint %r ends the run with %d undispatched "
                    "message%s in its inbox"
                    % (endpoint.name, backlog,
                       "" if backlog == 1 else "s")))
        return findings

    def _rpc_findings(self) -> List[Finding]:
        findings: List[Finding] = []
        for peer, san in self.rpc_sans:
            outstanding = len(peer._pending)
            if outstanding:
                findings.append(Finding(
                    "S405",
                    "%s ends the run with %d outstanding call%s "
                    "(xids %s)" % (
                        san.name, outstanding,
                        "" if outstanding == 1 else "s",
                        sorted(peer._pending))))
            accounted = (san.cancelled + san.replayed
                         + san.dropped_in_progress + san.served)
            if san.requests != accounted:
                findings.append(Finding(
                    "S405",
                    "%s consumed %d requests but accounted for %d "
                    "(served %d, replayed %d, in-progress drops %d, "
                    "cancelled %d)" % (
                        san.name, san.requests, accounted, san.served,
                        san.replayed, san.dropped_in_progress,
                        san.cancelled)))
            for xid in san.orphan_replies:
                if xid not in san.xids_issued:
                    findings.append(Finding(
                        "S405",
                        "%s received a reply for xid %d, which it "
                        "never issued" % (san.name, xid)))
        return findings

    def _iscsi_findings(self) -> List[Finding]:
        initiator = self.stack.initiator
        if initiator is None:
            return []
        issued = initiator.commands_issued
        completed = initiator.commands_completed
        if issued != completed:
            return [Finding(
                "S406",
                "iSCSI task set not conserved: %d commands issued, "
                "%d completed" % (issued, completed))]
        return []

    # -- public API -----------------------------------------------------------

    def findings(self) -> List[Finding]:
        """Collect every check's findings (does not raise)."""
        out: List[Finding] = []
        out.extend(self._order_findings())
        out.extend(self._deadlock_findings())
        out.extend(self._leak_findings())
        out.extend(self._message_findings())
        out.extend(self._rpc_findings())
        out.extend(self._iscsi_findings())
        return out

    def verify(self, strict: bool = True) -> List[Finding]:
        """Run every check; raise :class:`SanitizerError` when strict.

        When the stack carries a flight recorder, every finding dumps
        the recorder's context window first, so S-code findings ship
        with the recent-event evidence attached (recorder.dumps).
        """
        found = self.findings()
        recorder = getattr(self.stack, "recorder", None)
        if recorder is not None:
            for finding in found:
                recorder.dump(finding.code, "simsan", finding.message)
        if found and strict:
            raise SanitizerError(found)
        return found
