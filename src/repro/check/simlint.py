"""simlint: a simulator-discipline linter for this repository.

The paper's headline numbers are exact protocol message counts, so the
repo's core contract is byte-reproducible determinism.  Most regressions
that break that contract come from a handful of code shapes — wall-clock
reads, unseeded randomness, iteration over unordered collections, float
equality on the simulated clock, or simulator processes that mishandle
events and resources.  ``simlint`` is a small AST pass (stdlib :mod:`ast`
only) that flags exactly those shapes.

Rule families
-------------
* **D-rules** — determinism hazards: anything that could make two runs of
  the same seed diverge.
* **P-rules** — simulator process discipline: misuse of the
  generator-coroutine protocol of :mod:`repro.sim`.
* **O-rules** — observability discipline: tracer hooks that bypass the
  zero-cost ``NULL_TRACER`` pattern and would perturb untraced timing.
* **S-rules** — shard safety: the static twin of the S4xx runtime
  sanitizers; cross-shard effects that bypass ``ShardedTransport``,
  delays that can land below a shard pair's conservative lookahead, and
  merge keys that drop the ``(when, src_shard, src_seq)`` tie-breakers.
* **M-rules** — protocol state-machines: declarative op-order specs
  (:mod:`repro.check.statemachine`) checked against the MC/S CmdSN
  scheduler, the pNFS layout router, and the NFS replay-semantics table.

Whole-program mode
------------------
:func:`lint_paths` builds a cross-module symbol graph
(:mod:`repro.check.graph`) over the whole lint run and layers three
interprocedural passes (:mod:`repro.check.dataflow`) on top of the
per-file scan: D101/D102 taint that flows through helper functions into
sim-visible sinks, O301–O303 guard inference across function boundaries
(a helper whose every call site is guarded is clean), and S503 named
sort keys resolved in other modules.  :func:`lint_source` stays the
fast single-buffer entry point.

Suppression
-----------
Append ``# simlint: disable=D101`` (comma-separate several codes, or use
``all``) to the flagged line, or put ``# simlint: disable-file=D101``
anywhere in the file to suppress a code file-wide.  Suppressions should
carry a human reason on the same comment.

Entry points: :func:`lint_source` for one buffer, :func:`lint_paths` for
files/directory trees, and ``repro lint`` on the command line.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Rule",
    "RULES",
    "Violation",
    "Suppression",
    "lint_source",
    "lint_paths",
    "lint_program",
    "collect_suppressions",
    "format_text",
    "format_json",
    "format_debt",
]


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable code, a name, and a one-line fix hint."""

    code: str
    name: str
    hint: str


_RULE_LIST = (
    Rule("D101", "wall-clock-call",
         "use the simulated clock (sim.now) instead of host time"),
    Rule("D102", "unseeded-random",
         "thread an explicitly seeded random.Random(seed) through"),
    Rule("D103", "unordered-iteration",
         "iterate sorted(...) so visit order is deterministic"),
    Rule("D104", "float-time-equality",
         "avoid ==/!= on simulated time; compare events or use tolerances"),
    Rule("P201", "non-generator-process",
         "process functions must yield; use yield/yield from inside"),
    Rule("P202", "unreleased-acquire",
         "follow acquire() with try/finally release(), or call use()"),
    Rule("P203", "dropped-sim-result",
         "yield (from) the call or assign its result; a bare call is a no-op"),
    Rule("O301", "unguarded-tracer-hook",
         "guard tracer calls with `if tracer.enabled:` (NULL_TRACER pattern)"),
    Rule("O302", "unguarded-telemetry-hook",
         "guard telemetry pushes with `if telem is not None:` (opt-in layer)"),
    Rule("O303", "unguarded-recorder-hook",
         "guard flight-recorder hooks with `if recorder is not None:` "
         "(opt-in layer)"),
    Rule("S501", "cross-shard-direct-access",
         "route cross-shard effects through ShardedTransport/Shard.post(); "
         "never touch another shard's calendar or ports directly"),
    Rule("S502", "post-below-lookahead",
         "derive the cross-shard delay from the link latency/lookahead "
         "so it cannot land below the pair's conservative horizon"),
    Rule("S503", "nondeterministic-merge-key",
         "merge shard messages by (when, src_shard, src_seq); a bare "
         ".when key makes equal-time order executor-dependent"),
    Rule("M601", "cmdsn-discipline",
         "keep CmdSN allocation monotonic (issue order, before the first "
         "yield) and completion in-order behind the _next_done gate"),
    Rule("M602", "layout-before-io",
         "resolve the pNFS layout (_home/_at_home/_route_fd) before "
         "touching a self.clients connection"),
    Rule("M603", "replay-table-coverage",
         "keep one try/except handler per replay-semantics table row "
         "(EEXIST on replayed CREATE/MKDIR, ENOENT on REMOVE/RMDIR/RENAME)"),
)

RULES: Dict[str, Rule] = {rule.code: rule for rule in _RULE_LIST}


@dataclass(frozen=True)
class Violation:
    """One finding: where it is, which rule, and what was seen."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def hint(self) -> str:
        return RULES[self.code].hint


# -- rule tables --------------------------------------------------------------

# D101: dotted call targets that read the host clock.
_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
})

# D102: module-level random functions (the implicit global Mersenne
# Twister, seeded from the OS — never reproducible across runs).
_GLOBAL_RNG_FNS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "seed",
})

# P203: zero-argument-effect simulator calls whose *result* is the whole
# point; a bare expression statement silently discards it.
_SIM_RESULT_CALLS = frozenset({
    "timeout", "event", "any_of", "all_of", "acquire", "use",
    "hold", "park",
})

# P201: the entry points that turn a generator into a process.
_PROCESS_ENTRY_POINTS = frozenset({"spawn", "run_process", "run"})

# O301: tracer methods that must stay behind the `.enabled` guard.
# end_span is excluded: `end_span(None)` is the documented safe no-op.
_TRACER_HOOKS = frozenset({"begin_span", "instant", "message", "sample"})

# O302: telemetry push hooks.  Unlike the tracer there is no null object:
# the disabled layer is the attribute being None, so every push must sit
# under an `if telem is not None:` (or truthiness) check.
_TELEM_HOOKS = frozenset({"count", "observe"})

# O303: flight-recorder hooks (repro.obs.explain.FlightRecorder).  Same
# opt-in contract as telemetry: the disabled layer is the attribute being
# None, so every hook must sit under an `if recorder is not None:` check.
_RECORDER_HOOKS = frozenset({"note_event", "note_message", "dump"})

# S501: shard-internal state that only the owning shard may mutate.
# Reaching it through a subscript of a shard collection (`shards[i]`)
# is the static shape of a cross-shard write bypassing ShardedTransport.
_SHARD_INTERNAL = frozenset({
    "sim", "outbox", "ports", "pending", "inbox", "calendar",
})
_SHARD_MUTATORS = frozenset({
    "schedule_at", "schedule", "append", "extend", "add", "insert",
    "push", "update", "setdefault", "pop", "remove", "clear",
})
# The sharded kernel itself owns this state and is exempt from S501.
_SHARD_KERNEL_MODULE = "repro.sim.shard"

# S502: names that tie a cross-shard delay to the link's conservative
# horizon; a delay expression mentioning none of these (or a bare
# literal) can land below the pair's lookahead.
_DELAY_SOURCES = ("delay", "latency", "lookahead", "rtt")

_DISABLE_LINE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9,\s]+)")
_DISABLE_FILE = re.compile(r"#\s*simlint:\s*disable-file=([A-Za-z0-9,\s]+)")
_CODE_TOKEN = re.compile(r"^(?:[A-Z]\d{3}|all)$")


def _codes_in(blob: str) -> Set[str]:
    """The leading rule codes of a disable comment's value.

    The value may be followed by a free-text reason on the same comment
    (``# simlint: disable=D101 -- wall progress meter``); only tokens
    shaped like codes (or ``all``) count.
    """
    codes: Set[str] = set()
    for token in re.split(r"[,\s]+", blob.strip()):
        if not token:
            continue
        if _CODE_TOKEN.match(token):
            codes.add(token)
        else:
            break  # the reason starts here
    return codes


def _parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and file-wide suppressed codes from magic comments."""
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DISABLE_LINE.search(line)
        if match:
            by_line.setdefault(lineno, set()).update(
                _codes_in(match.group(1)))
        match = _DISABLE_FILE.search(line)
        if match:
            file_wide.update(_codes_in(match.group(1)))
    return by_line, file_wide


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_unordered(expr: ast.AST) -> bool:
    """True when iterating ``expr`` visits elements in no defined order."""
    # Unwrap order-preserving wrappers so `list(set(...))` still flags.
    while (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
           and expr.func.id in ("list", "tuple", "enumerate", "reversed")
           and expr.args):
        expr = expr.args[0]
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")):
        return True
    return False


_ORDER_WRAPPERS = ("list", "tuple", "enumerate", "reversed")
_DICT_VIEWS = frozenset({"keys", "values", "items"})

# Consumers whose result does not depend on iteration order: a
# comprehension fed straight into one of these is deterministic even
# when it iterates a set.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "set", "frozenset", "len", "any", "all", "max", "min",
})


def _unwrap_order(expr: ast.AST) -> ast.AST:
    """Strip order-preserving wrappers (list/tuple/enumerate/reversed)."""
    while (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
           and expr.func.id in _ORDER_WRAPPERS and expr.args):
        expr = expr.args[0]
    return expr


def _own_scope_stmts(scope: ast.AST) -> Iterable[ast.stmt]:
    """Statements of one scope in source order, skipping nested defs."""
    for field in ("body", "orelse", "finalbody"):
        for stmt in getattr(scope, field, ()):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield stmt
            yield from _own_scope_stmts(stmt)
    for handler in getattr(scope, "handlers", ()):
        for stmt in handler.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield stmt
            yield from _own_scope_stmts(stmt)


def _own_stmt_exprs(stmt: ast.stmt) -> Iterable[ast.AST]:
    """Expression subtrees attached to this statement itself (nested
    statements are visited separately by :func:`_own_scope_stmts`)."""
    for _field, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield from ast.walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield from ast.walk(item)
                elif isinstance(item, ast.withitem):
                    yield from ast.walk(item.context_expr)


def _laundered_reason(expr: ast.AST, set_names: Set[str],
                      dict_names: Set[str]) -> Optional[str]:
    """Why iterating ``expr`` is unordered, given tracked locals."""
    expr = _unwrap_order(expr)
    if isinstance(expr, ast.Name):
        if expr.id in set_names:
            return ("iterating %r, a set laundered through a local; "
                    "visit order is nondeterministic" % expr.id)
        if expr.id in dict_names:
            return ("iterating dict %r built from a set; key order is "
                    "the set's nondeterministic order" % expr.id)
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _DICT_VIEWS
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id in dict_names):
        return ("iterating .%s() of dict %r built from a set; order is "
                "the set's nondeterministic order"
                % (expr.func.attr, expr.func.value.id))
    return None


def _launder_apply(stmt: ast.stmt, set_names: Set[str],
                   dict_names: Set[str]) -> None:
    """Track which locals hold set-ordered data after ``stmt`` runs."""
    if isinstance(stmt, ast.Assign):
        targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
        value = stmt.value
    elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name):
        targets = [stmt.target]
        value = stmt.value
    else:
        return
    if not targets or value is None:
        return
    unwrapped = _unwrap_order(value)
    is_set = _is_unordered(value) or (
        isinstance(unwrapped, ast.Name) and unwrapped.id in set_names)
    is_dict_from_set = False
    if isinstance(value, ast.DictComp) and value.generators:
        first = _unwrap_order(value.generators[0].iter)
        is_dict_from_set = _is_unordered(value.generators[0].iter) or (
            isinstance(first, ast.Name) and first.id in set_names)
    elif (isinstance(value, ast.Call)
            and _dotted(value.func) == "dict.fromkeys" and value.args):
        arg = _unwrap_order(value.args[0])
        is_dict_from_set = _is_unordered(value.args[0]) or (
            isinstance(arg, ast.Name) and arg.id in set_names)
    elif isinstance(value, ast.Name) and value.id in dict_names:
        is_dict_from_set = True
    for target in targets:
        set_names.discard(target.id)
        dict_names.discard(target.id)
        if is_set:
            set_names.add(target.id)
        elif is_dict_from_set:
            dict_names.add(target.id)


def _check_laundering(tree: ast.Module, path: str) -> List["Violation"]:
    """D103 through locals: ``s = set(...); for x in s`` and friends.

    A linear forward pass per scope tracks which locals hold a set (or a
    list copied from one, or a dict keyed by one) and flags iteration
    over them — the cases the purely syntactic check misses.
    """
    out: List[Violation] = []
    scopes: List[ast.AST] = [tree]
    scopes.extend(node for node in ast.walk(tree)
                  if isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)))
    for scope in scopes:
        set_names: Set[str] = set()
        dict_names: Set[str] = set()
        for stmt in _own_scope_stmts(scope):
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                reason = _laundered_reason(stmt.iter, set_names, dict_names)
                if reason is not None:
                    out.append(Violation(
                        path=path, line=stmt.iter.lineno,
                        col=stmt.iter.col_offset, code="D103",
                        message=reason))
            insensitive: Set[int] = set()
            for node in _own_stmt_exprs(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in _ORDER_INSENSITIVE):
                    insensitive.update(id(arg) for arg in node.args)
            for node in _own_stmt_exprs(stmt):
                if (isinstance(node, (ast.ListComp, ast.SetComp,
                                      ast.DictComp, ast.GeneratorExp))
                        and id(node) not in insensitive):
                    for comp in node.generators:
                        reason = _laundered_reason(
                            comp.iter, set_names, dict_names)
                        if reason is not None:
                            out.append(Violation(
                                path=path, line=comp.iter.lineno,
                                col=comp.iter.col_offset, code="D103",
                                message=reason))
            _launder_apply(stmt, set_names, dict_names)
    return out


def _mentions_now(expr: ast.AST) -> bool:
    """True when the subtree reads something called ``now`` (sim time)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "now":
            return True
        if isinstance(node, ast.Name) and node.id == "now":
            return True
    return False


def _receiver_is_tracer(func: ast.Attribute) -> bool:
    """True for ``<...>tracer.<hook>()`` shaped receivers."""
    value = func.value
    if isinstance(value, ast.Attribute):
        name = value.attr
    elif isinstance(value, ast.Name):
        name = value.id
    else:
        return False
    return "tracer" in name.lower()


def _receiver_is_telem(func: ast.Attribute) -> bool:
    """True for ``<...>telem*.<hook>()`` shaped receivers."""
    value = func.value
    if isinstance(value, ast.Attribute):
        name = value.attr
    elif isinstance(value, ast.Name):
        name = value.id
    else:
        return False
    return "telem" in name.lower()


def _mentions_telem(test: ast.expr) -> bool:
    """True when an ``if`` test inspects a telem-ish name — either a
    ``x is not None`` comparison or a plain truthiness check."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and "telem" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Name) and "telem" in sub.id.lower():
            return True
    return False


def _receiver_is_recorder(func: ast.Attribute) -> bool:
    """True for ``<...>recorder.<hook>()`` shaped receivers."""
    value = func.value
    if isinstance(value, ast.Attribute):
        name = value.attr
    elif isinstance(value, ast.Name):
        name = value.id
    else:
        return False
    return "recorder" in name.lower()


def _mentions_recorder(test: ast.expr) -> bool:
    """True when an ``if`` test inspects a recorder-ish name."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and "recorder" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Name) and "recorder" in sub.id.lower():
            return True
    return False


def _receiver_name(value: ast.AST) -> Optional[str]:
    """The rightmost name of a call receiver (unwrapping a call chain)."""
    if isinstance(value, ast.Call):
        value = value.func
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _shard_internal_access(func: ast.Attribute) -> Optional[Tuple[str, str]]:
    """``(collection, attr)`` when a call reaches shard-internal state.

    Matches the S501 shape: a subscript of a shard-ish collection
    (``shards[i]``/``self.shards[dst]``) followed by one of the
    :data:`_SHARD_INTERNAL` attributes — another shard's calendar,
    ports, or outbox reached without going through the transport.
    """
    attrs: List[str] = []
    node = func.value
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Subscript):
        return None
    name = _receiver_name(node.value)
    if name is None or "shard" not in name.lower():
        return None
    internal = _SHARD_INTERNAL.intersection(attrs)
    if not internal:
        return None
    return name, sorted(internal)[0]


def _mentions_delay_source(expr: ast.AST) -> bool:
    """True when a delay expression ties itself to the link horizon."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute):
            name = node.attr.lower()
        elif isinstance(node, ast.Name):
            name = node.id.lower()
        else:
            continue
        if any(source in name for source in _DELAY_SOURCES):
            return True
    return False


def _lambda_key_fields(lam: ast.Lambda) -> Optional[frozenset]:
    """Attribute names a lambda sort key reads off its parameter."""
    if not lam.args.args:
        return None
    param = lam.args.args[0].arg
    fields = set()
    for node in ast.walk(lam.body):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == param):
            fields.add(node.attr)
    return frozenset(fields)


def _try_releases(try_node: ast.Try) -> bool:
    """True when the try's finalbody calls ``.release()`` on something."""
    for stmt in try_node.finalbody:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "release"):
                return True
    return False


class _Linter(ast.NodeVisitor):
    """Single-pass visitor; collects Violation records in ``found``."""

    def __init__(self, path: str, tree: ast.Module,
                 module: Optional[str] = None):
        self.path = path
        self.module = module
        self.found: List[Violation] = []
        # Parent links for ancestor queries (guards, try/finally shape).
        self.parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        # Name -> "is any def under this name a generator?"  P201 refuses
        # to flag a name if at least one definition yields (methods on
        # different classes may share names).
        self.generator_defs: Dict[str, bool] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                is_gen = self._contains_yield(node)
                previous = self.generator_defs.get(node.name, False)
                self.generator_defs[node.name] = previous or is_gen

    @staticmethod
    def _receiver_runs_processes(func: ast.Attribute) -> bool:
        """Limit ``.run`` to simulator-ish receivers.

        ``spawn``/``run_process`` are unambiguous, but plenty of objects
        have a ``run`` method (ExperimentRunner, subprocess wrappers...);
        only flag it when the receiver is named like a simulator or a
        stack (``sim``, ``self.sim``, ``stack``, ...).
        """
        if func.attr != "run":
            return True
        value = func.value
        if isinstance(value, ast.Attribute):
            name = value.attr
        elif isinstance(value, ast.Name):
            name = value.id
        else:
            return False
        name = name.lower()
        return "sim" in name or "stack" in name

    @staticmethod
    def _contains_yield(func: ast.AST) -> bool:
        for node in ast.walk(func):
            if node is func:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue  # nested scopes don't make the outer a generator
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
        return False

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.found.append(Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        ))

    def _ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    # -- call-shaped rules ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func) if isinstance(
            node.func, (ast.Attribute, ast.Name)) else None

        # D101: wall-clock reads.
        if dotted in _WALLCLOCK_CALLS:
            self._report(node, "D101",
                         "wall-clock call %s() breaks determinism" % dotted)

        # D102: the implicit module-level RNG, or an unseeded instance.
        if dotted is not None:
            parts = dotted.split(".")
            if (len(parts) == 2 and parts[0] == "random"
                    and parts[1] in _GLOBAL_RNG_FNS):
                self._report(node, "D102",
                             "module-level %s() uses the global, "
                             "unseeded RNG" % dotted)
        if (dotted in ("random.Random", "Random") and not node.args
                and not node.keywords):
            self._report(node, "D102",
                         "Random() with no seed is seeded from the OS")

        # P201: spawning a locally defined non-generator as a process.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _PROCESS_ENTRY_POINTS
                and node.args
                and self._receiver_runs_processes(node.func)):
            first = node.args[0]
            if (isinstance(first, ast.Call)
                    and isinstance(first.func, ast.Name)
                    and first.func.id in self.generator_defs
                    and not self.generator_defs[first.func.id]):
                self._report(
                    node, "P201",
                    "%s() given %s(), which never yields and so is "
                    "not a process" % (node.func.attr, first.func.id))

        # S501: another shard's internal state mutated directly.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SHARD_MUTATORS
                and self.module != _SHARD_KERNEL_MODULE):
            access = _shard_internal_access(node.func)
            if access is not None:
                collection, internal = access
                self._report(
                    node, "S501",
                    "%s[...].%s.%s() mutates shard-internal state across "
                    "the shard boundary, bypassing ShardedTransport"
                    % (collection, internal, node.func.attr))

        # S502: cross-shard post whose delay ignores the lookahead.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "post"):
            receiver = _receiver_name(node.func.value)
            delay = None
            if len(node.args) >= 4:
                delay = node.args[3]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "delay":
                        delay = keyword.value
            if (receiver is not None and "shard" in receiver.lower()
                    and delay is not None):
                if (isinstance(delay, ast.Constant)
                        and isinstance(delay.value, (int, float))
                        and not isinstance(delay.value, bool)):
                    self._report(
                        node, "S502",
                        "cross-shard post with literal delay %r can land "
                        "below the shard pair's lookahead" % (delay.value,))
                elif not _mentions_delay_source(delay):
                    self._report(
                        node, "S502",
                        "cross-shard post delay is not derived from the "
                        "link latency/lookahead")

        # S503: a sort key on shard messages that drops the tie-breakers.
        is_sort = (isinstance(node.func, ast.Attribute)
                   and node.func.attr == "sort")
        is_sorted = (isinstance(node.func, ast.Name)
                     and node.func.id == "sorted")
        if is_sort or is_sorted:
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                if not isinstance(keyword.value, ast.Lambda):
                    continue  # named keys: the whole-program pass
                fields = _lambda_key_fields(keyword.value)
                if (fields and "when" in fields
                        and not any("seq" in field for field in fields)):
                    self._report(
                        node, "S503",
                        "sort key orders messages by .when without a "
                        "sequence tie-breaker; equal-time merge order is "
                        "executor-dependent")

        # O301: tracer hooks outside the `.enabled` guard.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _TRACER_HOOKS
                and _receiver_is_tracer(node.func)):
            guarded = False
            for ancestor in self._ancestors(node):
                if isinstance(ancestor, ast.If):
                    for sub in ast.walk(ancestor.test):
                        if (isinstance(sub, ast.Attribute)
                                and sub.attr == "enabled"):
                            guarded = True
                            break
                if guarded:
                    break
            if not guarded:
                self._report(
                    node, "O301",
                    "tracer.%s() outside an `if tracer.enabled:` guard"
                    % node.func.attr)

        # O302: telemetry pushes outside the `is not None` guard.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _TELEM_HOOKS
                and _receiver_is_telem(node.func)):
            guarded = False
            for ancestor in self._ancestors(node):
                if (isinstance(ancestor, ast.If)
                        and _mentions_telem(ancestor.test)):
                    guarded = True
                    break
            if not guarded:
                self._report(
                    node, "O302",
                    "telemetry %s() outside an `if telem is not None:` "
                    "guard" % node.func.attr)

        # O303: flight-recorder hooks outside the `is not None` guard.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _RECORDER_HOOKS
                and _receiver_is_recorder(node.func)):
            guarded = False
            for ancestor in self._ancestors(node):
                if (isinstance(ancestor, ast.If)
                        and _mentions_recorder(ancestor.test)):
                    guarded = True
                    break
            if not guarded:
                self._report(
                    node, "O303",
                    "flight-recorder %s() outside an `if recorder is "
                    "not None:` guard" % node.func.attr)

        self.generic_visit(node)

    # -- iteration-shaped rules ----------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_unordered(node.iter):
            self._report(node.iter, "D103",
                         "iterating an unordered set; visit order is "
                         "nondeterministic")
        self.generic_visit(node)

    def _order_insensitive_context(self, node) -> bool:
        """True when the comprehension feeds sorted()/set()/len()/...

        The consumer's result is independent of visit order, so the
        unordered iteration cannot leak into observable state.
        """
        parent = self.parents.get(node)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_INSENSITIVE
                and node in parent.args)

    def _check_comprehension(self, node) -> None:
        if not self._order_insensitive_context(node):
            for comp in node.generators:
                if _is_unordered(comp.iter):
                    self._report(comp.iter, "D103",
                                 "comprehension iterates an unordered set")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    # -- comparison rules -----------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left] + list(node.comparators)
            if any(_mentions_now(operand) for operand in operands):
                self._report(node, "D104",
                             "exact ==/!= against simulated time (`now`) "
                             "is float-fragile")
        self.generic_visit(node)

    # -- statement-shaped rules ----------------------------------------------

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        # P203: a bare statement call whose simulator result is dropped.
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _SIM_RESULT_CALLS):
            self._report(node, "P203",
                         ".%s() result dropped; the call alone does "
                         "nothing" % value.func.attr)
        # P202: `yield from x.acquire()` without a release path.
        if (isinstance(value, ast.YieldFrom)
                and isinstance(value.value, ast.Call)
                and isinstance(value.value.func, ast.Attribute)
                and value.value.func.attr == "acquire"):
            if not self._acquire_is_released(node):
                self._report(node, "P202",
                             "acquire() without try/finally release() "
                             "leaks a resource slot on error")
        self.generic_visit(node)

    def _acquire_is_released(self, stmt: ast.Expr) -> bool:
        # (a) Inside a try whose finalbody releases.
        for ancestor in self._ancestors(stmt):
            if isinstance(ancestor, ast.Try) and _try_releases(ancestor):
                return True
        # (b) Immediately followed by such a try in the same body.
        parent = self.parents.get(stmt)
        if parent is None:
            return False
        for field in ("body", "orelse", "finalbody"):
            body = getattr(parent, field, None)
            if isinstance(body, list) and stmt in body:
                index = body.index(stmt)
                if index + 1 < len(body):
                    after = body[index + 1]
                    if isinstance(after, ast.Try) and _try_releases(after):
                        return True
        return False


# -- public API ---------------------------------------------------------------


def _collect(tree: ast.Module, path: str,
             module: Optional[str] = None) -> List[Violation]:
    """All unsuppressed per-file findings for one parsed buffer."""
    linter = _Linter(path, tree, module=module)
    linter.visit(tree)
    found = list(linter.found)
    found.extend(_check_laundering(tree, path))
    if module is not None:
        from . import statemachine

        found.extend(statemachine.check_module(tree, path, module))
    return found


def _filter_suppressed(violations: Iterable[Violation],
                       by_line: Dict[int, Set[str]],
                       file_wide: Set[str]) -> List[Violation]:
    out = []
    for violation in violations:
        if violation.code in file_wide or "all" in file_wide:
            continue
        line_codes = by_line.get(violation.line, ())
        if violation.code in line_codes or "all" in line_codes:
            continue
        out.append(violation)
    return out


def lint_source(source: str, path: str = "<string>",
                module: Optional[str] = None) -> List[Violation]:
    """Lint one source buffer; returns suppression-filtered violations.

    ``module`` is the dotted module name, when known: it scopes the
    M6xx protocol state-machine specs (which only fire for their target
    modules) and the S501 kernel exemption.
    """
    tree = ast.parse(source, filename=path)
    by_line, file_wide = _parse_suppressions(source)
    out = _filter_suppressed(_collect(tree, path, module), by_line,
                             file_wide)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return out


def _iter_py_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git"))
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames) if name.endswith(".py"))
        else:
            files.append(path)
    return files


def lint_paths(paths: Sequence[str],
               program: bool = True) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    By default the whole-program passes run on top of the per-file scan
    (``program=False`` restores the v1 per-file-only behaviour, used by
    the autofixer between passes).
    """
    files: List[str] = []
    seen: Set[str] = set()
    for filename in _iter_py_files(paths):
        resolved = os.path.abspath(filename)
        if resolved in seen:
            continue
        seen.add(resolved)
        files.append(filename)
    if program:
        return lint_program(files)
    from .graph import module_name_for

    out: List[Violation] = []
    for filename in files:
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        out.extend(lint_source(source, path=filename,
                               module=module_name_for(filename)))
    out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return out


def lint_program(files: Sequence[str]) -> List[Violation]:
    """Whole-program lint: per-file scan + graph-based passes.

    Pipeline: build the symbol graph once; run the per-file rules (with
    module names, so the M6xx specs fire); drop O3xx findings whose
    enclosing helper is guarded at every call site; add interprocedural
    D101/D102 taint flows and cross-module S503 sort keys; then apply
    each file's suppression comments to the merged result.
    """
    from . import dataflow
    from .graph import build_program

    graph = build_program(files)
    violations: List[Violation] = []
    seen_modules: Set[str] = set()
    for name in graph.order:
        if name in seen_modules:
            continue
        seen_modules.add(name)
        module = graph.modules[name]
        violations.extend(_collect(module.tree, module.path, module.name))
    violations = dataflow.drop_guarded_hook_violations(graph, violations)
    summaries = dataflow.compute_return_taints(graph)
    violations.extend(dataflow.find_taint_flows(graph, summaries))
    violations.extend(dataflow.find_sort_key_hazards(graph))

    suppressions = {
        module.path: _parse_suppressions(module.source)
        for module in graph.modules.values()
    }
    out: List[Violation] = []
    emitted: Set[Violation] = set()
    for violation in violations:
        parsed = suppressions.get(violation.path)
        if parsed is not None:
            kept = _filter_suppressed([violation], parsed[0], parsed[1])
            if not kept:
                continue
        if violation in emitted:
            continue
        emitted.add(violation)
        out.append(violation)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return out


def format_text(violations: Sequence[Violation]) -> str:
    """One ``path:line:col: CODE message (hint: ...)`` line per finding."""
    if not violations:
        return "simlint: clean"
    lines = [
        "%s:%d:%d: %s %s (hint: %s)"
        % (v.path, v.line, v.col, v.code, v.message, v.hint)
        for v in violations
    ]
    lines.append("simlint: %d violation%s"
                 % (len(violations), "" if len(violations) == 1 else "s"))
    return "\n".join(lines)


@dataclass(frozen=True)
class Suppression:
    """One ``# simlint: disable`` comment found in the tree."""

    path: str
    line: int
    scope: str            # "line" or "file"
    codes: Tuple[str, ...]
    reason: str           # "" when the comment carries no justification


def _split_codes_reason(blob: str, tail: str) -> Tuple[Tuple[str, ...], str]:
    """Leading code tokens, then everything else as the human reason."""
    words = [w for w in re.split(r"[,\s]+", blob.strip()) if w]
    codes: List[str] = []
    rest: List[str] = []
    for word in words:
        if not rest and _CODE_TOKEN.match(word):
            codes.append(word)
        else:
            rest.append(word)
    reason = " ".join(rest + ([tail.strip()] if tail.strip() else []))
    return tuple(codes), reason.strip(" \t-:;")


def collect_suppressions(paths: Sequence[str]) -> List[Suppression]:
    """Every real suppression comment under ``paths``.

    Uses :mod:`tokenize` rather than a line regex so magic comments
    inside string literals (lint-test fixtures) are not counted as
    live suppressions.
    """
    import io
    import tokenize

    out: List[Suppression] = []
    for filename in _iter_py_files(paths):
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(source).readline))
        except tokenize.TokenError:
            continue
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            for scope, pattern in (("file", _DISABLE_FILE),
                                   ("line", _DISABLE_LINE)):
                match = pattern.search(token.string)
                if match is None:
                    continue
                codes, reason = _split_codes_reason(
                    match.group(1), token.string[match.end():])
                out.append(Suppression(
                    path=filename, line=token.start[0], scope=scope,
                    codes=codes, reason=reason))
                break  # disable-file also matches nothing in _DISABLE_LINE
    out.sort(key=lambda s: (s.path, s.line))
    return out


def format_debt(suppressions: Sequence[Suppression]) -> str:
    """The ``repro lint --debt`` report: every suppression + reason."""
    if not suppressions:
        return "simlint debt: no suppressions"
    lines = []
    missing = 0
    for sup in suppressions:
        reason = sup.reason or "NO REASON"
        if not sup.reason:
            missing += 1
        lines.append("%s:%d: [%s] %s — %s"
                     % (sup.path, sup.line, sup.scope,
                        ",".join(sup.codes) or "?", reason))
    lines.append("simlint debt: %d suppression%s (%d without a reason)"
                 % (len(suppressions),
                    "" if len(suppressions) == 1 else "s", missing))
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report (the CI artifact format)."""
    document = {
        "tool": "simlint",
        "rules": {code: {"name": rule.name, "hint": rule.hint}
                  for code, rule in sorted(RULES.items())},
        "violations": [
            {"path": v.path, "line": v.line, "col": v.col,
             "code": v.code, "message": v.message}
            for v in violations
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
