"""simlint: a simulator-discipline linter for this repository.

The paper's headline numbers are exact protocol message counts, so the
repo's core contract is byte-reproducible determinism.  Most regressions
that break that contract come from a handful of code shapes — wall-clock
reads, unseeded randomness, iteration over unordered collections, float
equality on the simulated clock, or simulator processes that mishandle
events and resources.  ``simlint`` is a small AST pass (stdlib :mod:`ast`
only) that flags exactly those shapes.

Rule families
-------------
* **D-rules** — determinism hazards: anything that could make two runs of
  the same seed diverge.
* **P-rules** — simulator process discipline: misuse of the
  generator-coroutine protocol of :mod:`repro.sim`.
* **O-rules** — observability discipline: tracer hooks that bypass the
  zero-cost ``NULL_TRACER`` pattern and would perturb untraced timing.

Suppression
-----------
Append ``# simlint: disable=D101`` (comma-separate several codes, or use
``all``) to the flagged line, or put ``# simlint: disable-file=D101``
anywhere in the file to suppress a code file-wide.  Suppressions should
carry a human reason on the same comment.

Entry points: :func:`lint_source` for one buffer, :func:`lint_paths` for
files/directory trees, and ``repro lint`` on the command line.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Rule",
    "RULES",
    "Violation",
    "lint_source",
    "lint_paths",
    "format_text",
    "format_json",
]


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable code, a name, and a one-line fix hint."""

    code: str
    name: str
    hint: str


_RULE_LIST = (
    Rule("D101", "wall-clock-call",
         "use the simulated clock (sim.now) instead of host time"),
    Rule("D102", "unseeded-random",
         "thread an explicitly seeded random.Random(seed) through"),
    Rule("D103", "unordered-iteration",
         "iterate sorted(...) so visit order is deterministic"),
    Rule("D104", "float-time-equality",
         "avoid ==/!= on simulated time; compare events or use tolerances"),
    Rule("P201", "non-generator-process",
         "process functions must yield; use yield/yield from inside"),
    Rule("P202", "unreleased-acquire",
         "follow acquire() with try/finally release(), or call use()"),
    Rule("P203", "dropped-sim-result",
         "yield (from) the call or assign its result; a bare call is a no-op"),
    Rule("O301", "unguarded-tracer-hook",
         "guard tracer calls with `if tracer.enabled:` (NULL_TRACER pattern)"),
    Rule("O302", "unguarded-telemetry-hook",
         "guard telemetry pushes with `if telem is not None:` (opt-in layer)"),
    Rule("O303", "unguarded-recorder-hook",
         "guard flight-recorder hooks with `if recorder is not None:` "
         "(opt-in layer)"),
)

RULES: Dict[str, Rule] = {rule.code: rule for rule in _RULE_LIST}


@dataclass(frozen=True)
class Violation:
    """One finding: where it is, which rule, and what was seen."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def hint(self) -> str:
        return RULES[self.code].hint


# -- rule tables --------------------------------------------------------------

# D101: dotted call targets that read the host clock.
_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
})

# D102: module-level random functions (the implicit global Mersenne
# Twister, seeded from the OS — never reproducible across runs).
_GLOBAL_RNG_FNS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "seed",
})

# P203: zero-argument-effect simulator calls whose *result* is the whole
# point; a bare expression statement silently discards it.
_SIM_RESULT_CALLS = frozenset({
    "timeout", "event", "any_of", "all_of", "acquire", "use",
    "hold", "park",
})

# P201: the entry points that turn a generator into a process.
_PROCESS_ENTRY_POINTS = frozenset({"spawn", "run_process", "run"})

# O301: tracer methods that must stay behind the `.enabled` guard.
# end_span is excluded: `end_span(None)` is the documented safe no-op.
_TRACER_HOOKS = frozenset({"begin_span", "instant", "message", "sample"})

# O302: telemetry push hooks.  Unlike the tracer there is no null object:
# the disabled layer is the attribute being None, so every push must sit
# under an `if telem is not None:` (or truthiness) check.
_TELEM_HOOKS = frozenset({"count", "observe"})

# O303: flight-recorder hooks (repro.obs.explain.FlightRecorder).  Same
# opt-in contract as telemetry: the disabled layer is the attribute being
# None, so every hook must sit under an `if recorder is not None:` check.
_RECORDER_HOOKS = frozenset({"note_event", "note_message", "dump"})

_DISABLE_LINE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9,\s]+)")
_DISABLE_FILE = re.compile(r"#\s*simlint:\s*disable-file=([A-Za-z0-9,\s]+)")


def _parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and file-wide suppressed codes from magic comments."""
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DISABLE_LINE.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            by_line.setdefault(lineno, set()).update(codes)
        match = _DISABLE_FILE.search(line)
        if match:
            file_wide.update(
                c.strip() for c in match.group(1).split(",") if c.strip())
    return by_line, file_wide


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_unordered(expr: ast.AST) -> bool:
    """True when iterating ``expr`` visits elements in no defined order."""
    # Unwrap order-preserving wrappers so `list(set(...))` still flags.
    while (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
           and expr.func.id in ("list", "tuple", "enumerate", "reversed")
           and expr.args):
        expr = expr.args[0]
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")):
        return True
    return False


def _mentions_now(expr: ast.AST) -> bool:
    """True when the subtree reads something called ``now`` (sim time)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "now":
            return True
        if isinstance(node, ast.Name) and node.id == "now":
            return True
    return False


def _receiver_is_tracer(func: ast.Attribute) -> bool:
    """True for ``<...>tracer.<hook>()`` shaped receivers."""
    value = func.value
    if isinstance(value, ast.Attribute):
        name = value.attr
    elif isinstance(value, ast.Name):
        name = value.id
    else:
        return False
    return "tracer" in name.lower()


def _receiver_is_telem(func: ast.Attribute) -> bool:
    """True for ``<...>telem*.<hook>()`` shaped receivers."""
    value = func.value
    if isinstance(value, ast.Attribute):
        name = value.attr
    elif isinstance(value, ast.Name):
        name = value.id
    else:
        return False
    return "telem" in name.lower()


def _mentions_telem(test: ast.expr) -> bool:
    """True when an ``if`` test inspects a telem-ish name — either a
    ``x is not None`` comparison or a plain truthiness check."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and "telem" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Name) and "telem" in sub.id.lower():
            return True
    return False


def _receiver_is_recorder(func: ast.Attribute) -> bool:
    """True for ``<...>recorder.<hook>()`` shaped receivers."""
    value = func.value
    if isinstance(value, ast.Attribute):
        name = value.attr
    elif isinstance(value, ast.Name):
        name = value.id
    else:
        return False
    return "recorder" in name.lower()


def _mentions_recorder(test: ast.expr) -> bool:
    """True when an ``if`` test inspects a recorder-ish name."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and "recorder" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Name) and "recorder" in sub.id.lower():
            return True
    return False


def _try_releases(try_node: ast.Try) -> bool:
    """True when the try's finalbody calls ``.release()`` on something."""
    for stmt in try_node.finalbody:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "release"):
                return True
    return False


class _Linter(ast.NodeVisitor):
    """Single-pass visitor; collects Violation records in ``found``."""

    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.found: List[Violation] = []
        # Parent links for ancestor queries (guards, try/finally shape).
        self.parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        # Name -> "is any def under this name a generator?"  P201 refuses
        # to flag a name if at least one definition yields (methods on
        # different classes may share names).
        self.generator_defs: Dict[str, bool] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                is_gen = self._contains_yield(node)
                previous = self.generator_defs.get(node.name, False)
                self.generator_defs[node.name] = previous or is_gen

    @staticmethod
    def _receiver_runs_processes(func: ast.Attribute) -> bool:
        """Limit ``.run`` to simulator-ish receivers.

        ``spawn``/``run_process`` are unambiguous, but plenty of objects
        have a ``run`` method (ExperimentRunner, subprocess wrappers...);
        only flag it when the receiver is named like a simulator or a
        stack (``sim``, ``self.sim``, ``stack``, ...).
        """
        if func.attr != "run":
            return True
        value = func.value
        if isinstance(value, ast.Attribute):
            name = value.attr
        elif isinstance(value, ast.Name):
            name = value.id
        else:
            return False
        name = name.lower()
        return "sim" in name or "stack" in name

    @staticmethod
    def _contains_yield(func: ast.AST) -> bool:
        for node in ast.walk(func):
            if node is func:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue  # nested scopes don't make the outer a generator
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
        return False

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.found.append(Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        ))

    def _ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    # -- call-shaped rules ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func) if isinstance(
            node.func, (ast.Attribute, ast.Name)) else None

        # D101: wall-clock reads.
        if dotted in _WALLCLOCK_CALLS:
            self._report(node, "D101",
                         "wall-clock call %s() breaks determinism" % dotted)

        # D102: the implicit module-level RNG, or an unseeded instance.
        if dotted is not None:
            parts = dotted.split(".")
            if (len(parts) == 2 and parts[0] == "random"
                    and parts[1] in _GLOBAL_RNG_FNS):
                self._report(node, "D102",
                             "module-level %s() uses the global, "
                             "unseeded RNG" % dotted)
        if (dotted in ("random.Random", "Random") and not node.args
                and not node.keywords):
            self._report(node, "D102",
                         "Random() with no seed is seeded from the OS")

        # P201: spawning a locally defined non-generator as a process.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _PROCESS_ENTRY_POINTS
                and node.args
                and self._receiver_runs_processes(node.func)):
            first = node.args[0]
            if (isinstance(first, ast.Call)
                    and isinstance(first.func, ast.Name)
                    and first.func.id in self.generator_defs
                    and not self.generator_defs[first.func.id]):
                self._report(
                    node, "P201",
                    "%s() given %s(), which never yields and so is "
                    "not a process" % (node.func.attr, first.func.id))

        # O301: tracer hooks outside the `.enabled` guard.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _TRACER_HOOKS
                and _receiver_is_tracer(node.func)):
            guarded = False
            for ancestor in self._ancestors(node):
                if isinstance(ancestor, ast.If):
                    for sub in ast.walk(ancestor.test):
                        if (isinstance(sub, ast.Attribute)
                                and sub.attr == "enabled"):
                            guarded = True
                            break
                if guarded:
                    break
            if not guarded:
                self._report(
                    node, "O301",
                    "tracer.%s() outside an `if tracer.enabled:` guard"
                    % node.func.attr)

        # O302: telemetry pushes outside the `is not None` guard.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _TELEM_HOOKS
                and _receiver_is_telem(node.func)):
            guarded = False
            for ancestor in self._ancestors(node):
                if (isinstance(ancestor, ast.If)
                        and _mentions_telem(ancestor.test)):
                    guarded = True
                    break
            if not guarded:
                self._report(
                    node, "O302",
                    "telemetry %s() outside an `if telem is not None:` "
                    "guard" % node.func.attr)

        # O303: flight-recorder hooks outside the `is not None` guard.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _RECORDER_HOOKS
                and _receiver_is_recorder(node.func)):
            guarded = False
            for ancestor in self._ancestors(node):
                if (isinstance(ancestor, ast.If)
                        and _mentions_recorder(ancestor.test)):
                    guarded = True
                    break
            if not guarded:
                self._report(
                    node, "O303",
                    "flight-recorder %s() outside an `if recorder is "
                    "not None:` guard" % node.func.attr)

        self.generic_visit(node)

    # -- iteration-shaped rules ----------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_unordered(node.iter):
            self._report(node.iter, "D103",
                         "iterating an unordered set; visit order is "
                         "nondeterministic")
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for comp in node.generators:
            if _is_unordered(comp.iter):
                self._report(comp.iter, "D103",
                             "comprehension iterates an unordered set")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    # -- comparison rules -----------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left] + list(node.comparators)
            if any(_mentions_now(operand) for operand in operands):
                self._report(node, "D104",
                             "exact ==/!= against simulated time (`now`) "
                             "is float-fragile")
        self.generic_visit(node)

    # -- statement-shaped rules ----------------------------------------------

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        # P203: a bare statement call whose simulator result is dropped.
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _SIM_RESULT_CALLS):
            self._report(node, "P203",
                         ".%s() result dropped; the call alone does "
                         "nothing" % value.func.attr)
        # P202: `yield from x.acquire()` without a release path.
        if (isinstance(value, ast.YieldFrom)
                and isinstance(value.value, ast.Call)
                and isinstance(value.value.func, ast.Attribute)
                and value.value.func.attr == "acquire"):
            if not self._acquire_is_released(node):
                self._report(node, "P202",
                             "acquire() without try/finally release() "
                             "leaks a resource slot on error")
        self.generic_visit(node)

    def _acquire_is_released(self, stmt: ast.Expr) -> bool:
        # (a) Inside a try whose finalbody releases.
        for ancestor in self._ancestors(stmt):
            if isinstance(ancestor, ast.Try) and _try_releases(ancestor):
                return True
        # (b) Immediately followed by such a try in the same body.
        parent = self.parents.get(stmt)
        if parent is None:
            return False
        for field in ("body", "orelse", "finalbody"):
            body = getattr(parent, field, None)
            if isinstance(body, list) and stmt in body:
                index = body.index(stmt)
                if index + 1 < len(body):
                    after = body[index + 1]
                    if isinstance(after, ast.Try) and _try_releases(after):
                        return True
        return False


# -- public API ---------------------------------------------------------------


def lint_source(source: str, path: str = "<string>") -> List[Violation]:
    """Lint one source buffer; returns suppression-filtered violations."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, tree)
    linter.visit(tree)
    by_line, file_wide = _parse_suppressions(source)
    out = []
    for violation in linter.found:
        if violation.code in file_wide or "all" in file_wide:
            continue
        line_codes = by_line.get(violation.line, ())
        if violation.code in line_codes or "all" in line_codes:
            continue
        out.append(violation)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return out


def _iter_py_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git"))
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames) if name.endswith(".py"))
        else:
            files.append(path)
    return files


def lint_paths(paths: Sequence[str]) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    out: List[Violation] = []
    for filename in _iter_py_files(paths):
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        out.extend(lint_source(source, path=filename))
    out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return out


def format_text(violations: Sequence[Violation]) -> str:
    """One ``path:line:col: CODE message (hint: ...)`` line per finding."""
    if not violations:
        return "simlint: clean"
    lines = [
        "%s:%d:%d: %s %s (hint: %s)"
        % (v.path, v.line, v.col, v.code, v.message, v.hint)
        for v in violations
    ]
    lines.append("simlint: %d violation%s"
                 % (len(violations), "" if len(violations) == 1 else "s"))
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report (the CI artifact format)."""
    document = {
        "tool": "simlint",
        "rules": {code: {"name": rule.name, "hint": rule.hint}
                  for code, rule in sorted(RULES.items())},
        "violations": [
            {"path": v.path, "line": v.line, "col": v.col,
             "code": v.code, "message": v.message}
            for v in violations
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
