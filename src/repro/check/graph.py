"""Cross-module symbol and import graph for whole-program simlint.

The per-file AST pass in :mod:`repro.check.simlint` sees one buffer at a
time, so a wall-clock value laundered through a helper function in
another module is invisible to it.  This module parses every file in a
lint run exactly once and builds the three indexes the whole-program
passes need:

* a **module table** — dotted module name (derived from the package
  layout on disk) to parsed AST plus per-module import bindings;
* a **function table** — ``module:qualname`` (``func`` or
  ``Class.method``) to the defining AST node, so a dotted call target
  can be resolved to the code it runs;
* a **call-site index** — every resolved call in the program, with its
  enclosing class/function and the ``if``-guards it sits under, which
  is what lets O301–O303 guard inference and the D101/D102 taint pass
  (:mod:`repro.check.dataflow`) work across function boundaries.

Resolution is intentionally static and conservative: plain names,
dotted module attributes, ``from x import y`` bindings (including
relative imports), and ``self.method`` within a class body resolve;
anything dynamic (instance attributes of unknown type, getattr,
re-exports) resolves to ``None`` and the analyses fall back to the
per-file answer.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "CallRecord",
    "ProgramGraph",
    "module_name_for",
    "build_program",
]


class FunctionInfo:
    """One function or method definition, addressable program-wide."""

    __slots__ = ("module", "qualname", "cls", "node", "lineno", "end_lineno")

    def __init__(self, module: str, qualname: str, cls: Optional[str],
                 node: ast.AST):
        self.module = module
        self.qualname = qualname
        self.cls = cls
        self.node = node
        self.lineno = node.lineno
        self.end_lineno = getattr(node, "end_lineno", node.lineno)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module, self.qualname)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<FunctionInfo %s:%s>" % (self.module, self.qualname)


class CallRecord:
    """One call expression: where it is and what guards enclose it."""

    __slots__ = ("module", "node", "cls", "func", "guards")

    def __init__(self, module: str, node: ast.Call, cls: Optional[str],
                 func: Optional[str], guards: frozenset):
        self.module = module
        self.node = node
        self.cls = cls
        self.func = func
        self.guards = guards


class ModuleInfo:
    """One parsed file: name, tree, import bindings, definitions."""

    __slots__ = ("name", "path", "source", "tree", "imports", "functions",
                 "parents")

    def __init__(self, name: str, path: str, source: str, tree: ast.Module):
        self.name = name
        self.path = path
        self.source = source
        self.tree = tree
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self._index_imports()
        self._index_functions()

    # -- indexing --------------------------------------------------------------

    def _package(self) -> str:
        """The package this module can resolve relative imports against."""
        parts = self.name.split(".")
        return ".".join(parts[:-1])

    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        first = alias.name.split(".")[0]
                        self.imports[first] = first
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    package_parts = self.name.split(".")[:-1]
                    if node.level > 1:
                        package_parts = package_parts[:-(node.level - 1)]
                    prefix = ".".join(package_parts)
                    base = prefix + "." + base if base else prefix
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = (base + "." + alias.name
                                           if base else alias.name)

    def _index_functions(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(self.name, stmt.name, None, stmt)
                self.functions[stmt.name] = info
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        qual = "%s.%s" % (stmt.name, sub.name)
                        self.functions[qual] = FunctionInfo(
                            self.name, qual, stmt.name, sub)

    def function_at(self, lineno: int) -> Optional[FunctionInfo]:
        """The innermost indexed function containing ``lineno``."""
        best: Optional[FunctionInfo] = None
        for info in self.functions.values():
            if info.lineno <= lineno <= info.end_lineno:
                if best is None or info.lineno > best.lineno:
                    best = info
        return best


def module_name_for(path: str) -> str:
    """The dotted module name of ``path``, from the package layout.

    Walks up while parent directories carry ``__init__.py``; a file in
    no package keeps its bare stem (which is how ad-hoc fixture trees
    resolve their sibling imports).
    """
    path = os.path.abspath(path)
    stem = os.path.splitext(os.path.basename(path))[0]
    parts: List[str] = [] if stem == "__init__" else [stem]
    directory = os.path.dirname(path)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        directory = os.path.dirname(directory)
    if not parts:
        parts = [stem]
    return ".".join(reversed(parts))


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _guard_kinds(test: ast.expr) -> frozenset:
    """Which opt-in layers an ``if`` test is checking for."""
    kinds = set()
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute):
            if sub.attr == "enabled":
                kinds.add("enabled")
            if "telem" in sub.attr.lower():
                kinds.add("telem")
            if "recorder" in sub.attr.lower():
                kinds.add("recorder")
        elif isinstance(sub, ast.Name):
            if "telem" in sub.id.lower():
                kinds.add("telem")
            if "recorder" in sub.id.lower():
                kinds.add("recorder")
            if "tracer" in sub.id.lower():
                kinds.add("enabled")
    return frozenset(kinds)


class ProgramGraph:
    """The whole-program view: modules, symbols, and resolved calls."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: Dict[str, ModuleInfo] = {}
        for module in modules:
            # Last definition wins on a name collision (shadowed fixture
            # trees); real package layouts never collide.
            self.modules[module.name] = module
        self.order = [module.name for module in modules]
        self.calls: List[CallRecord] = []
        self._sites: Dict[Tuple[str, str], List[CallRecord]] = {}
        for module in modules:
            self._index_calls(module)

    # -- resolution ------------------------------------------------------------

    def resolve(self, module: ModuleInfo, func_expr: ast.AST,
                cls: Optional[str] = None) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` a call target names, if static."""
        dotted = _dotted(func_expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and cls is not None and len(parts) == 2:
            return module.functions.get("%s.%s" % (cls, parts[1]))
        if len(parts) == 1:
            local = module.functions.get(parts[0])
            if local is not None:
                return local
            mapped = module.imports.get(parts[0])
            if mapped is None:
                return None
            return self._lookup(mapped)
        mapped = module.imports.get(parts[0])
        full = (mapped + "." + ".".join(parts[1:])) if mapped else dotted
        return self._lookup(full)

    def _lookup(self, full: str) -> Optional[FunctionInfo]:
        """Split ``pkg.mod.[Class.]func`` into a known module + qualname."""
        parts = full.split(".")
        for split in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:split])
            target = self.modules.get(prefix)
            if target is None:
                continue
            qual = ".".join(parts[split:])
            info = target.functions.get(qual)
            if info is not None:
                return info
        # A bare module-less name (fixture trees at the filesystem root).
        if len(parts) == 1:
            for module in self.modules.values():
                info = module.functions.get(parts[0])
                if info is not None:
                    return info
        return None

    def call_sites(self, info: FunctionInfo) -> List[CallRecord]:
        """Every resolved call of ``info`` anywhere in the program."""
        return self._sites.get(info.key, [])

    # -- call indexing ---------------------------------------------------------

    def _index_calls(self, module: ModuleInfo) -> None:
        class_stack: List[str] = []
        func_stack: List[str] = []

        def visit(node: ast.AST, guards: frozenset) -> None:
            if isinstance(node, ast.ClassDef):
                class_stack.append(node.name)
                for child in ast.iter_child_nodes(node):
                    visit(child, guards)
                class_stack.pop()
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func_stack.append(node.name)
                for child in ast.iter_child_nodes(node):
                    visit(child, guards)
                func_stack.pop()
                return
            if isinstance(node, ast.If):
                kinds = _guard_kinds(node.test)
                for child in node.body:
                    visit(child, guards | kinds)
                for child in node.orelse:
                    visit(child, guards)
                visit(node.test, guards)
                return
            if isinstance(node, ast.Call):
                cls = class_stack[-1] if class_stack else None
                func = func_stack[-1] if func_stack else None
                record = CallRecord(module.name, node, cls, func, guards)
                self.calls.append(record)
                target = self.resolve(module, node.func, cls)
                if target is not None:
                    self._sites.setdefault(target.key, []).append(record)
            for child in ast.iter_child_nodes(node):
                visit(child, guards)

        visit(module.tree, frozenset())


def build_program(files: Iterable[str]) -> ProgramGraph:
    """Parse ``files`` once each and index them into a ProgramGraph."""
    modules: List[ModuleInfo] = []
    for path in files:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
        modules.append(ModuleInfo(module_name_for(path), path, source, tree))
    return ProgramGraph(modules)
